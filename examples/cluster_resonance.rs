//! Noise resonance at cluster scale (the paper's §II motivation).
//!
//! Measures per-phase durations of a barrier-synchronised probe on the
//! single-node simulator under the standard and HPL schedulers, then
//! projects both to N nodes with the max-over-nodes model: each global
//! phase takes as long as the slowest node. Also reproduces the classic
//! Petrini trade-off: donating a core to the OS (losing 1/8 capacity but
//! clipping the noise tail) loses on one node and wins at scale.
//!
//! ```text
//! cargo run --release --example cluster_resonance
//! ```

use hpl::cluster::{EmpiricalDist, ResonanceModel};
use hpl::prelude::*;
use hpl::workloads::micro::noise_probe_job;

/// Per-phase durations measured by watching the job barrier generation.
fn measure_phases(hpl_mode: bool, reps: u32, seed: u64) -> Vec<f64> {
    let mut samples = Vec::new();
    for rep in 0..reps {
        let seed = Rng::for_run(seed, rep as u64).next_u64();
        let topo = Topology::power6_js22();
        let noise = NoiseProfile::standard(8);
        let mut node = if hpl_mode {
            hpl_node_builder(topo)
                .with_noise(noise)
                .with_seed(seed)
                .build()
        } else {
            NodeBuilder::new(topo)
                .with_noise(noise)
                .with_seed(seed)
                .build()
        };
        node.run_for(SimDuration::from_millis(400));
        let job = noise_probe_job(8, 30, SimDuration::from_millis(5));
        let barrier = job.barrier_id();
        let mode = if hpl_mode {
            SchedMode::Hpc
        } else {
            SchedMode::Cfs
        };
        let handle = launch(&mut node, &job, mode);
        let mut last_gen = node.sync.barrier_generation(barrier);
        let mut last_t = node.now();
        while node.tasks.get(handle.perf_pid).state != TaskState::Dead {
            assert!(node.step());
            let gen = node.sync.barrier_generation(barrier);
            if gen > last_gen {
                if last_gen > 0 {
                    samples.push(node.now().since(last_t).as_secs_f64());
                }
                last_gen = gen;
                last_t = node.now();
            }
        }
    }
    samples
}

fn main() {
    println!("measuring per-phase distributions on the single-node simulator...");
    let std_phases = measure_phases(false, 12, 0xBEEF);
    let hpl_phases = measure_phases(true, 12, 0xBEEF);

    let phases = 1000;
    let std_model = ResonanceModel::new(EmpiricalDist::new(std_phases), phases);
    let hpl_model = ResonanceModel::new(EmpiricalDist::new(hpl_phases), phases);
    // The Petrini configuration: clip the tail (a dedicated OS core
    // absorbs the daemons) but pay 8/7 in per-phase compute.
    let donated = ResonanceModel::new(
        std_model
            .per_phase
            .clipped_at_quantile(0.95)
            .scaled(8.0 / 7.0),
        phases,
    );

    println!("\nprojected application time, {phases} synchronised phases:\n");
    println!(
        "{:>6} | {:>10} | {:>10} | {:>14} | {:>8}",
        "nodes", "std (s)", "hpl (s)", "OS-core (s)", "std/hpl"
    );
    for n in [1u32, 4, 16, 64, 256, 1024, 4096] {
        let a = std_model.expected_time(n, 25, 1);
        let b = hpl_model.expected_time(n, 25, 2);
        let c = donated.expected_time(n, 25, 3);
        println!(
            "{n:>6} | {a:>10.3} | {b:>10.3} | {c:>14.3} | {:>8.2}",
            a / b
        );
    }
    println!(
        "\nThe std curve climbs with node count (noise resonance); HPL stays\n\
         flat. The donated-core configuration loses at N=1 and crosses over\n\
         at scale — Petrini et al.'s 1.87x effect, here solved in the\n\
         scheduler instead of by sacrificing a processor."
    );
}
