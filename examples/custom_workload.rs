//! Building your own workload against the public API.
//!
//! Shows the three extension points a downstream user actually touches:
//!
//! 1. a custom MPI job from [`MpiOp`]s (here: a bulk-synchronous stencil
//!    with a load imbalance knob);
//! 2. a custom noise daemon population;
//! 3. the scheduler-selection surface — including static pinning via
//!    `sched_setaffinity`, the alternative §IV of the paper argues
//!    against.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use hpl::kernel::noise::DaemonSpec;
use hpl::prelude::*;

/// A stencil-ish job: compute, exchange halos with ring neighbours,
/// reduce a residual every 4th step.
fn stencil_job(steps: u32, compute: SimDuration) -> JobSpec {
    let mut ops = Vec::new();
    for step in 0..steps {
        ops.push(MpiOp::Compute { mean: compute });
        ops.push(MpiOp::NeighborExchange { bytes: 64 * 1024 });
        if step % 4 == 3 {
            ops.push(MpiOp::Allreduce { bytes: 8 });
        }
    }
    let mut job = JobSpec::new(8, ops);
    // More application-intrinsic imbalance than the NAS defaults.
    job.config.compute_jitter = 0.01;
    job
}

/// A deliberately obnoxious daemon population: a chatty logger plus a
/// heavyweight monitoring collector.
fn my_noise() -> NoiseProfile {
    NoiseProfile {
        daemons: vec![
            DaemonSpec::periodic(
                "chatty-logger",
                SimDuration::from_millis(250),
                SimDuration::from_micros(300),
            ),
            DaemonSpec::periodic(
                "fat-collector",
                SimDuration::from_millis(1500),
                SimDuration::from_millis(15),
            ),
        ],
        ..Default::default()
    }
}

fn run(label: &str, mode: SchedMode, hpl_kernel_mode: bool, seed: u64) {
    let topo = Topology::power6_js22();
    let mut node = if hpl_kernel_mode {
        hpl_node_builder(topo)
            .with_noise(my_noise())
            .with_seed(seed)
            .build()
    } else {
        NodeBuilder::new(topo)
            .with_noise(my_noise())
            .with_seed(seed)
            .build()
    };
    node.run_for(SimDuration::from_millis(300));
    let job = stencil_job(40, SimDuration::from_millis(8));
    let mut perf = PerfSession::open(&node.counters, node.now());
    let handle = launch(&mut node, &job, mode);
    let exec = handle.run_to_completion(&mut node, 40_000_000_000);
    perf.close(&node.counters, node.now());
    let d = perf.delta();
    println!(
        "{label:36} time {exec}  migrations {:>5}  switches {:>6}",
        d.sw(SwEvent::CpuMigrations),
        d.sw(SwEvent::ContextSwitches)
    );
}

fn main() {
    println!("custom stencil, 8 ranks, 40 steps, noisy custom daemons\n");
    for seed in [11, 12, 13] {
        run("standard CFS", SchedMode::Cfs, false, seed);
        run(
            "static pinning (sched_setaffinity)",
            SchedMode::CfsPinned,
            false,
            seed,
        );
        run(
            "RT scheduler (SCHED_FIFO)",
            SchedMode::Rt { prio: 50 },
            false,
            seed,
        );
        run("HPL (SCHED_HPC)", SchedMode::Hpc, true, seed);
        println!();
    }
    println!(
        "Pinning kills load-balancer migrations but cannot stop daemons from\n\
         preempting the pinned ranks (the paper's §IV critique of static\n\
         bindings); the HPL class stops both."
    );
}
