//! Noise injection à la Ferreira/Bridges/Brightwell (SC'08).
//!
//! Injects controlled per-CPU noise (fixed period and duration) under a
//! fixed-work-quantum probe and shows the *resonance* between noise
//! granularity and application granularity: the same 2.5 % noise budget
//! delivered as frequent short events barely hurts a coarse-grained
//! probe but stings a fine-grained one, and rare long events hurt more
//! than frequent short ones — while the HPL class hides CFS noise
//! entirely either way.
//!
//! ```text
//! cargo run --release --example noise_injection
//! ```

use hpl::prelude::*;
use hpl::workloads::micro::{injection_profile, noise_probe_job};

fn probe_time(
    quantum: SimDuration,
    iters: u32,
    noise: NoiseProfile,
    hpl_mode: bool,
    seed: u64,
) -> f64 {
    let topo = Topology::power6_js22();
    let mut node = if hpl_mode {
        hpl_node_builder(topo)
            .with_noise(noise)
            .with_seed(seed)
            .build()
    } else {
        NodeBuilder::new(topo)
            .with_noise(noise)
            .with_seed(seed)
            .build()
    };
    node.run_for(SimDuration::from_millis(200));
    let job = noise_probe_job(8, iters, quantum);
    let mode = if hpl_mode {
        SchedMode::Hpc
    } else {
        SchedMode::Cfs
    };
    let handle = launch(&mut node, &job, mode);
    handle
        .run_to_completion(&mut node, 40_000_000_000)
        .as_secs_f64()
}

fn main() {
    // Two probes with the same total work but different granularity.
    let configs = [
        (
            "fine-grained  (1 ms quanta)",
            SimDuration::from_millis(1),
            400u32,
        ),
        (
            "coarse-grained (100 ms quanta)",
            SimDuration::from_millis(100),
            4u32,
        ),
    ];
    // Equal noise budgets (2.5% of one CPU), different granularity.
    let injections = [
        (
            "2.5% as  25 us every 1 ms",
            SimDuration::from_millis(1),
            SimDuration::from_micros(25),
        ),
        (
            "2.5% as 250 us every 10 ms",
            SimDuration::from_millis(10),
            SimDuration::from_micros(250),
        ),
        (
            "2.5% as 2.5 ms every 100 ms",
            SimDuration::from_millis(100),
            SimDuration::from_micros(2500),
        ),
    ];
    for (probe_name, quantum, iters) in configs {
        println!("== probe: {probe_name} ==");
        let clean = probe_time(quantum, iters, NoiseProfile::quiet(), false, 1);
        println!("  noise-free baseline: {clean:.4} s");
        for (noise_name, period, duration) in injections {
            let profile = injection_profile(8, period, duration);
            let std = probe_time(quantum, iters, profile.clone(), false, 1);
            let hpl = probe_time(quantum, iters, profile, true, 1);
            println!(
                "  {noise_name}: std {:+6.2}%   hpl {:+6.2}%",
                (std / clean - 1.0) * 100.0,
                (hpl / clean - 1.0) * 100.0
            );
        }
        println!();
    }
    println!(
        "The same noise budget hurts more when delivered as rare long events\n\
         (each one stalls a rank past the barrier) than as frequent tiny ones\n\
         that amortise into every quantum — and it hurts the fine-grained\n\
         probe most, whose barriers give each hit a fresh chance to delay\n\
         everyone (Ferreira et al.'s resonance result). Under HPL the probe\n\
         never yields the CPU to the injector at all."
    );
}
