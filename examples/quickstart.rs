//! Quickstart: the paper's headline comparison in ~60 lines.
//!
//! Runs NAS `ep.A.8` once on a standard-Linux node and once on an HPL
//! node (same machine, same daemons, same seed) and prints the execution
//! time and the `perf stat` window for each — the Table Ib / Table II
//! story in miniature.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hpl::prelude::*;

fn measure(label: &str, hpl_mode: bool, seed: u64) {
    let topo = Topology::power6_js22();
    let noise = NoiseProfile::standard(topo.total_cpus());
    let mut node = if hpl_mode {
        hpl_node_builder(topo)
            .with_noise(noise)
            .with_seed(seed)
            .build()
    } else {
        NodeBuilder::new(topo)
            .with_noise(noise)
            .with_seed(seed)
            .build()
    };

    // Let the daemon population settle, then measure like the paper:
    // perf stat -a around the launcher.
    node.run_for(SimDuration::from_millis(400));
    let job = nas_job(NasBenchmark::Ep, NasClass::A, 8);
    let mode = if hpl_mode {
        SchedMode::Hpc
    } else {
        SchedMode::Cfs
    };

    let mut perf = PerfSession::open(&node.counters, node.now());
    let handle = launch(&mut node, &job, mode);
    let exec = handle.run_to_completion(&mut node, 40_000_000_000);
    perf.close(&node.counters, node.now());

    let delta = perf.delta();
    println!("== {label} ==");
    println!("  execution time:    {exec}");
    println!("  cpu-migrations:    {}", delta.sw(SwEvent::CpuMigrations));
    println!(
        "  context-switches:  {}",
        delta.sw(SwEvent::ContextSwitches)
    );
    println!(
        "  involuntary preemptions: {}",
        delta.sw(SwEvent::InvoluntaryPreemptions)
    );
    println!();
}

fn main() {
    println!("NAS ep.A.8 on a dual-socket POWER6 js22 (2 chips x 2 cores x 2 SMT)\n");
    measure("standard Linux (CFS)", false, 7);
    measure("HPL (SCHED_HPC class, no balancing)", true, 7);
    println!(
        "HPL pins the count of migrations near the structural floor (~10:\n\
         8 rank forks + mpiexec + chrt/perf) and prevents daemons from ever\n\
         preempting a rank — the paper's Tables Ib and II."
    );
}
