//! NAS showdown: a miniature Table II.
//!
//! Runs every NAS class-A configuration a few times under the standard
//! scheduler and under HPL and prints the min/avg/max execution times
//! plus the paper's variation metric. Class B is skipped by default for
//! speed; pass `--full` to include it.
//!
//! ```text
//! cargo run --release --example nas_showdown [-- --full --reps N]
//! ```

use hpl::prelude::*;

fn run_side(job: &JobSpec, hpl_mode: bool, reps: u32, base_seed: u64) -> Vec<f64> {
    (0..reps)
        .map(|rep| {
            let seed = Rng::for_run(base_seed, rep as u64).next_u64();
            let topo = Topology::power6_js22();
            let noise = NoiseProfile::standard(topo.total_cpus());
            let mut node = if hpl_mode {
                hpl_node_builder(topo)
                    .with_noise(noise)
                    .with_seed(seed)
                    .build()
            } else {
                NodeBuilder::new(topo)
                    .with_noise(noise)
                    .with_seed(seed)
                    .build()
            };
            node.run_for(SimDuration::from_millis(400));
            let mode = if hpl_mode {
                SchedMode::Hpc
            } else {
                SchedMode::Cfs
            };
            let handle = launch(&mut node, job, mode);
            handle
                .run_to_completion(&mut node, 40_000_000_000)
                .as_secs_f64()
        })
        .collect()
}

fn stats(xs: &[f64]) -> (f64, f64, f64, f64) {
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let avg = xs.iter().sum::<f64>() / xs.len() as f64;
    (min, avg, max, (max - min) / min * 100.0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let reps: u32 = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    println!(
        "| bench  | {:^33} | {:^33} |",
        "std Linux (min/avg/max, var%)", "HPL (min/avg/max, var%)"
    );
    println!("|--------|{:-^35}|{:-^35}|", "", "");
    for bench in NasBenchmark::ALL {
        for class in NasClass::ALL {
            if class == NasClass::B && !full {
                continue;
            }
            let job = nas_job(bench, class, 8);
            let std = stats(&run_side(&job, false, reps, 0xA));
            let hpl = stats(&run_side(&job, true, reps, 0xA));
            println!(
                "| {:6} | {:7.2} {:7.2} {:7.2} {:7.1}% | {:7.2} {:7.2} {:7.2} {:7.1}% |",
                format!("{}.{}", bench.name(), class.name()),
                std.0,
                std.1,
                std.2,
                std.3,
                hpl.0,
                hpl.1,
                hpl.2,
                hpl.3,
            );
        }
    }
    println!("\n({reps} repetitions per cell; the paper uses 1000 — see `repro table2`)");
}
