//! X-ray a scheduling decision: trace, per-task reports, metrics, energy —
//! and a Chrome-trace file you can open in `chrome://tracing` or Perfetto.
//!
//! Runs a short synchronised job under standard Linux and under HPL with
//! the full observability stack attached (ring trace, Chrome-trace
//! exporter, metrics registry), then prints for each:
//!
//! * a per-CPU Gantt chart of the launch window (ranks as digits,
//!   daemons/launchers as 'x'),
//! * `/proc/<pid>/sched`-style per-rank reports,
//! * the scheduler-metrics registry (decision counters + latency
//!   histograms),
//! * the window's energy accounting,
//!
//! and writes `target/xray_<label>.trace.json` — load it in
//! `chrome://tracing` (or <https://ui.perfetto.dev>) to scrub through
//! every context switch, migration and wakeup interactively.
//!
//! ```text
//! cargo run --release --example scheduler_xray
//! ```

use hpl::kernel::power::{energy_of_window, PowerModel};
use hpl::prelude::*;
use std::collections::HashMap;

fn xray(label: &str, file_tag: &str, hpl_mode: bool) {
    let topo = Topology::power6_js22();
    let noise = NoiseProfile::standard(8).scaled(3.0); // extra-noisy for visible effect
    let mut node = if hpl_mode {
        hpl_node_builder(topo)
            .with_noise(noise)
            .with_seed(33)
            .build()
    } else {
        NodeBuilder::new(topo)
            .with_noise(noise)
            .with_seed(33)
            .build()
    };
    // The full observability stack: bounded ring (Gantt + analysis),
    // Chrome-trace exporter, and the metrics registry.
    node.enable_trace(500_000);
    let chrome = node.attach_observer(Box::new(ChromeTraceSink::new(500_000)));
    let metrics_id = node.attach_observer(Box::new(MetricsSink::new()));
    node.run_for(SimDuration::from_millis(200));

    let job = JobSpec::new(
        8,
        JobSpec::repeat(
            8,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(10),
                },
                MpiOp::Allreduce { bytes: 64 },
            ],
        ),
    );
    let mode = if hpl_mode {
        SchedMode::Hpc
    } else {
        SchedMode::Cfs
    };
    let mut perf = PerfSession::open(&node.counters, node.now());
    let start = node.now();
    let handle = launch(&mut node, &job, mode);
    let exec = handle.run_to_completion(&mut node, 10_000_000_000);
    perf.close(&node.counters, node.now());

    println!("==== {label}: {exec} ====\n");
    let glyphs: HashMap<Pid, char> = node
        .tasks
        .iter()
        .filter(|t| t.name.starts_with("rank"))
        .map(|t| (t.pid, t.name.as_bytes()[4] as char))
        .collect();
    if let Some(trace) = node.trace() {
        print!(
            "{}",
            trace.gantt(8, start, node.now(), 70, |p| {
                glyphs.get(&p).copied().unwrap_or('x')
            })
        );
    }
    println!();
    let mut rank_pids: Vec<Pid> = glyphs.keys().copied().collect();
    rank_pids.sort();
    for pid in rank_pids {
        println!("  {}", node.task_report(pid));
    }

    // Export the Chrome trace and prove it is well-formed and consistent
    // with the metrics registry before telling the user to load it.
    let json = node
        .export_chrome_trace(chrome)
        .expect("chrome sink attached");
    let stats = validate_chrome_trace(&json).expect("exported trace must parse");
    let sink = node
        .observer::<ChromeTraceSink>(chrome)
        .expect("chrome sink attached");
    let m = node
        .observer::<MetricsSink>(metrics_id)
        .expect("metrics sink attached")
        .metrics();
    assert_eq!(
        sink.switch_count(),
        m.switches,
        "chrome sink and metrics registry disagree on switches"
    );
    assert_eq!(sink.migration_count(), m.migrations);
    assert_eq!(sink.wakeup_count(), m.wakeups);
    let path = format!("target/xray_{file_tag}.trace.json");
    std::fs::write(&path, &json).expect("write trace file");
    println!(
        "\n  chrome trace: {path} ({} slices, {} instants; open in chrome://tracing)",
        stats.complete_events, stats.instant_events
    );

    println!("\n{}", m.report());

    let busy = perf.delta().hw(hpl::perf::HwEvent::BusyNs);
    let wall = SimDuration::from_secs_f64(perf.elapsed_secs());
    let energy = energy_of_window(&PowerModel::default(), &node.topo, busy, wall);
    println!(
        "\n  energy {:.1} J, mean power {:.1} W, utilisation {:.1}%\n",
        energy.total_joules,
        energy.mean_watts,
        energy.utilisation * 100.0
    );
}

fn main() {
    std::fs::create_dir_all("target").ok();
    xray("standard Linux (CFS), 3x noise", "cfs", false);
    xray("HPL, 3x noise", "hpl", true);
    println!(
        "Under CFS the 'x' marks cut into rank lanes (daemon preemptions)\n\
         and rank digits hop between lanes (migrations). Under HPL each\n\
         rank owns its lane for the whole run. Load the .trace.json files\n\
         in chrome://tracing to scrub through the same story event by\n\
         event."
    );
}
