//! X-ray a scheduling decision: trace, per-task reports, and energy.
//!
//! Runs a short synchronised job under standard Linux and under HPL with
//! event tracing enabled, then prints for each:
//!
//! * a per-CPU Gantt chart of the launch window (ranks as digits,
//!   daemons/launchers as 'x'),
//! * `/proc/<pid>/sched`-style per-rank reports,
//! * the window's energy accounting.
//!
//! ```text
//! cargo run --release --example scheduler_xray
//! ```

use hpl::kernel::power::{energy_of_window, PowerModel};
use hpl::prelude::*;
use std::collections::HashMap;

fn xray(label: &str, hpl_mode: bool) {
    let topo = Topology::power6_js22();
    let noise = NoiseProfile::standard(8).scaled(3.0); // extra-noisy for visible effect
    let mut node = if hpl_mode {
        hpl_node_builder(topo).noise(noise).seed(33).build()
    } else {
        NodeBuilder::new(topo).noise(noise).seed(33).build()
    };
    node.enable_trace(500_000);
    node.run_for(SimDuration::from_millis(200));

    let job = JobSpec::new(
        8,
        JobSpec::repeat(
            8,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(10),
                },
                MpiOp::Allreduce { bytes: 64 },
            ],
        ),
    );
    let mode = if hpl_mode { SchedMode::Hpc } else { SchedMode::Cfs };
    let mut perf = PerfSession::open(&node.counters, node.now());
    let start = node.now();
    let handle = launch(&mut node, &job, mode);
    let exec = handle.run_to_completion(&mut node, 10_000_000_000);
    perf.close(&node.counters, node.now());

    println!("==== {label}: {exec} ====\n");
    let glyphs: HashMap<Pid, char> = node
        .tasks
        .iter()
        .filter(|t| t.name.starts_with("rank"))
        .map(|t| (t.pid, t.name.as_bytes()[4] as char))
        .collect();
    if let Some(trace) = node.trace() {
        print!(
            "{}",
            trace.gantt(8, start, node.now(), 70, |p| {
                glyphs.get(&p).copied().unwrap_or('x')
            })
        );
    }
    println!();
    let mut rank_pids: Vec<Pid> = glyphs.keys().copied().collect();
    rank_pids.sort();
    for pid in rank_pids {
        println!("  {}", node.task_report(pid));
    }
    let busy = perf.delta().hw(hpl::perf::HwEvent::BusyNs);
    let wall = SimDuration::from_secs_f64(perf.elapsed_secs());
    let energy = energy_of_window(&PowerModel::default(), &node.topo, busy, wall);
    println!(
        "\n  energy {:.1} J, mean power {:.1} W, utilisation {:.1}%\n",
        energy.total_joules,
        energy.mean_watts,
        energy.utilisation * 100.0
    );
}

fn main() {
    xray("standard Linux (CFS), 3x noise", false);
    xray("HPL, 3x noise", true);
    println!(
        "Under CFS the 'x' marks cut into rank lanes (daemon preemptions)\n\
         and rank digits hop between lanes (migrations). Under HPL each\n\
         rank owns its lane for the whole run."
    );
}
