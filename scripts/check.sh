#!/usr/bin/env bash
# Repo gate: everything a PR must pass, in the order a human wants the
# failures reported. Fully offline (vendored dev-deps, no crates.io).
#
#   scripts/check.sh          # tier-1 build+test, workspace tests, clippy
#   scripts/check.sh --quick  # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root package tests =="
cargo test -q

if [[ "${1:-}" == "--quick" ]]; then
    exit 0
fi

echo "== workspace tests =="
cargo test --workspace -q

echo "== examples build =="
cargo build --release --examples

echo "== event-loop smoke (fast vs reference fingerprints) =="
cargo run --release -q -p hpl-bench --bin eventloop -- --smoke --out target/BENCH_eventloop_smoke.json

echo "== multi-node smoke (lockstep co-simulation completes) =="
cargo run --release -q -p hpl-bench --bin cluster -- --smoke --out target/BENCH_cluster_smoke.json

echo "== parallel co-sim differential (release: serial vs pooled bit-equality) =="
cargo test -q --release --test parallel_cosim

echo "== scheduler torture smoke (fuzzed scenarios + invariant oracle) =="
cargo run --release -q -p hpl-torture --bin torture -- --smoke

echo "== fault torture smoke (forced fault plans: loss, degrade, crash/restart churn) =="
cargo run --release -q -p hpl-torture --bin torture -- --smoke --faults --skip-analytic --skip-selftest

echo "== batch scheduler smoke (two-level sweep completes) =="
cargo run --release -q -p hpl-bench --bin batch -- --smoke --out target/BENCH_batch_smoke.json

echo "== SWF smoke (parse vendored trace, run the policy zoo, audit invariants) =="
cargo run --release -q -p hpl-bench --bin batch -- --swf-smoke

echo "== DFRS smoke (gang rotation on, fractional shares audited, bit-exact replay) =="
cargo run --release -q -p hpl-bench --bin batch -- --dfrs-smoke

echo "== fault sweep smoke (crash/requeue sweep completes) =="
cargo run --release -q -p hpl-bench --bin faults -- --smoke --out target/BENCH_faults_smoke.json

echo "== coord smoke (weighted slicing + user-space arbiter, bit-exact replay) =="
cargo run --release -q -p hpl-bench --bin coord -- --smoke --out target/BENCH_coord_smoke.json

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "all checks passed"
