#!/usr/bin/env bash
# Offline perf-regression harness.
#
#   scripts/bench.sh          # full sweeps  (~minutes)
#   scripts/bench.sh --quick  # short sweeps
#
# Writes two JSON reports at the repo root:
#
#   BENCH_eventloop.json — per-sweep events/sec and wall seconds for the
#     event-loop fast path vs the reference path, a loop-bound headline
#     speedup, and an identical-results flag (the speedup only counts
#     because the two paths are byte-identical).
#   BENCH_cluster.json — the mechanistic multi-node amplification curve:
#     noise slowdown vs node count under CFS and the HPL scheduler,
#     cross-checked against the analytic resonance model.
#
# No criterion, no network.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p hpl-bench --bin eventloop --bin cluster
./target/release/eventloop "$@"
./target/release/cluster "$@"
