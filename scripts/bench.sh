#!/usr/bin/env bash
# Offline perf-regression harness.
#
#   scripts/bench.sh          # full sweeps  (~minutes)
#   scripts/bench.sh --quick  # short sweeps
#
# Writes four JSON reports at the repo root:
#
#   BENCH_eventloop.json — per-sweep events/sec and wall seconds for the
#     event-loop fast path vs the reference path, a loop-bound headline
#     speedup, and an identical-results flag (the speedup only counts
#     because the two paths are byte-identical).
#   BENCH_cluster.json — the mechanistic multi-node amplification curve:
#     noise slowdown vs node count under CFS and the HPL scheduler,
#     cross-checked against the analytic resonance model.
#   BENCH_batch.json — the two-level scheduling sweep: batch allocation
#     policies (FCFS, EASY backfilling, 2x oversubscription) crossed
#     with CFS and HPL kernels; per-cell mean wait, bounded slowdown,
#     utilization and makespan, with determinism and ordering claims.
#     Plus the SWF policy-zoo sweep over the vendored production trace
#     (FCFS/EASY/conservative/multi-queue/fair-share + a walltime-
#     enforcement cell), gated on bit-exact replay, zero conservative
#     reservation violations, fair-share spread <= FCFS, and
#     serial-vs-pooled bit equality. `batch --trace FILE.swf` replays
#     an external SWF trace instead of the vendored fixture.
#     Gang-rotation cells (oversubscribed and DFRS under the HPL kernel
#     with a gang epoch) gate the formerly ungated oversub x HPL
#     combination: rotation must close the run-to-block serialisation
#     gap to within 1.2x of CFS, DFRS bounded slowdown must beat EASY,
#     and the fractional-share audit must be violation-free and
#     bit-exact on replay.
#   BENCH_faults.json — the crash/churn sweep: the batch stream under a
#     rising crash count with checkpoint/restart requeue; gates on
#     zero lost jobs, zero occupancy violations, bit-identical replay
#     and graceful bounded-slowdown degradation.
#   BENCH_coord.json — the coordination-backend sweep: a 750/250 share
#     split measured differentially against a 500/500 control under
#     both the weighted kernel gang slicer and the user-space lease
#     arbiter; gates on the all-equal-shares identity with the legacy
#     rotation, the differential skew on both backends, a bounded
#     user-vs-kernel coordination tax, and serial-vs-pooled bit
#     equality.
#
# BENCH_batch.json additionally carries the capacity cell (non-smoke):
# the vendored SWF fragment tiled to thousands of jobs on a 128-node
# (64 under --quick) cluster, gated on bit-exact replay, clean
# occupancy and a sane host wall-clock.
#
# No criterion, no network.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p hpl-bench --bin eventloop --bin cluster --bin batch --bin faults --bin coord
./target/release/eventloop "$@"
./target/release/cluster "$@"
./target/release/batch "$@"
./target/release/faults "$@"
./target/release/coord "$@"
