#!/usr/bin/env bash
# Offline perf-regression harness for the event-loop fast path.
#
#   scripts/bench.sh          # full sweeps  (~1 min)
#   scripts/bench.sh --quick  # short sweeps (~15 s)
#
# Writes BENCH_eventloop.json at the repo root: per-sweep events/sec and
# wall seconds for the fast path vs the reference path, a loop-bound
# headline speedup, and an identical-results flag (the speedup only
# counts because the two paths are byte-identical). No criterion, no
# network.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p hpl-bench --bin eventloop
exec ./target/release/eventloop "$@"
