//! Reproducibility guarantees: every number in the study is a pure
//! function of `(configuration, seed, repetition index)`.

use hpl::prelude::*;

fn job() -> JobSpec {
    JobSpec::new(
        8,
        JobSpec::repeat(
            4,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(4),
                },
                MpiOp::Barrier,
            ],
        ),
    )
}

fn run(mode: SchedMode, hpl_mode: bool, seed: u64) -> (u64, u64, u64) {
    let topo = Topology::power6_js22();
    let noise = NoiseProfile::standard(8);
    let mut node = if hpl_mode {
        hpl::core::hpl_node_builder(topo).noise(noise).seed(seed).build()
    } else {
        NodeBuilder::new(topo).noise(noise).seed(seed).build()
    };
    node.run_for(SimDuration::from_millis(300));
    let mut perf = PerfSession::open(&node.counters, node.now());
    let handle = launch(&mut node, &job(), mode);
    let exec = handle.run_to_completion(&mut node, 2_000_000_000);
    perf.close(&node.counters, node.now());
    let d = perf.delta();
    (
        exec.as_nanos(),
        d.sw(SwEvent::ContextSwitches),
        d.sw(SwEvent::CpuMigrations),
    )
}

#[test]
fn identical_seed_identical_everything() {
    for (mode, hpl_mode) in [
        (SchedMode::Cfs, false),
        (SchedMode::Rt { prio: 50 }, false),
        (SchedMode::Hpc, true),
    ] {
        let a = run(mode, hpl_mode, 1234);
        let b = run(mode, hpl_mode, 1234);
        assert_eq!(a, b, "{mode:?} not reproducible");
    }
}

#[test]
fn different_seeds_differ_under_noise() {
    let a = run(SchedMode::Cfs, false, 1);
    let b = run(SchedMode::Cfs, false, 2);
    assert_ne!(a, b, "noise must vary across seeds");
}

#[test]
fn node_fingerprint_is_stable() {
    let fp = |seed: u64| {
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .noise(NoiseProfile::standard(8))
            .seed(seed)
            .build();
        node.run_for(SimDuration::from_millis(500));
        node.state_fingerprint()
    };
    assert_eq!(fp(5), fp(5));
    assert_ne!(fp(5), fp(6));
}

#[test]
fn rng_run_streams_are_stable_across_calls() {
    // The harness derives per-repetition seeds this way; the mapping must
    // never change silently or archived results become irreproducible.
    let mut r = Rng::for_run(0x5EED, 17);
    let first = r.next_u64();
    let mut r2 = Rng::for_run(0x5EED, 17);
    assert_eq!(first, r2.next_u64());
}
