//! Reproducibility guarantees: every number in the study is a pure
//! function of `(configuration, seed, repetition index)`.

use hpl::prelude::*;

fn job() -> JobSpec {
    JobSpec::new(
        8,
        JobSpec::repeat(
            4,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(4),
                },
                MpiOp::Barrier,
            ],
        ),
    )
}

fn run(mode: SchedMode, hpl_mode: bool, seed: u64) -> (u64, u64, u64) {
    let topo = Topology::power6_js22();
    let noise = NoiseProfile::standard(8);
    let mut node = if hpl_mode {
        hpl::core::hpl_node_builder(topo)
            .with_noise(noise)
            .with_seed(seed)
            .build()
    } else {
        NodeBuilder::new(topo)
            .with_noise(noise)
            .with_seed(seed)
            .build()
    };
    node.run_for(SimDuration::from_millis(300));
    let mut perf = PerfSession::open(&node.counters, node.now());
    let handle = launch(&mut node, &job(), mode);
    let exec = handle.run_to_completion(&mut node, 2_000_000_000);
    perf.close(&node.counters, node.now());
    let d = perf.delta();
    (
        exec.as_nanos(),
        d.sw(SwEvent::ContextSwitches),
        d.sw(SwEvent::CpuMigrations),
    )
}

#[test]
fn identical_seed_identical_everything() {
    for (mode, hpl_mode) in [
        (SchedMode::Cfs, false),
        (SchedMode::Rt { prio: 50 }, false),
        (SchedMode::Hpc, true),
    ] {
        let a = run(mode, hpl_mode, 1234);
        let b = run(mode, hpl_mode, 1234);
        assert_eq!(a, b, "{mode:?} not reproducible");
    }
}

#[test]
fn different_seeds_differ_under_noise() {
    let a = run(SchedMode::Cfs, false, 1);
    let b = run(SchedMode::Cfs, false, 2);
    assert_ne!(a, b, "noise must vary across seeds");
}

#[test]
fn node_fingerprint_is_stable() {
    let fp = |seed: u64| {
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_noise(NoiseProfile::standard(8))
            .with_seed(seed)
            .build();
        node.run_for(SimDuration::from_millis(500));
        node.state_fingerprint()
    };
    assert_eq!(fp(5), fp(5));
    assert_ne!(fp(5), fp(6));
}

/// Run one measured job on a node built with an explicit kernel config,
/// returning everything observable: execution time, the counter deltas
/// the study reports, the tick count (skipped ticks must still be
/// charged), and the full post-run state fingerprint.
fn run_with_config(
    mut kc: KernelConfig,
    hpc_class: bool,
    mode: SchedMode,
    fast: bool,
    seed: u64,
) -> (u64, u64, u64, u64, u64) {
    kc.fast_event_loop = fast;
    let mut builder = NodeBuilder::new(Topology::power6_js22())
        .with_config(kc)
        .with_noise(NoiseProfile::standard(8))
        .with_seed(seed);
    if hpc_class {
        builder = builder.with_hpc_class(Box::new(HplClass::new()));
    }
    let mut node = builder.build();
    node.run_for(SimDuration::from_millis(300));
    let mut perf = PerfSession::open(&node.counters, node.now());
    let handle = launch(&mut node, &job(), mode);
    let exec = handle.run_to_completion(&mut node, 2_000_000_000);
    perf.close(&node.counters, node.now());
    let d = perf.delta();
    (
        exec.as_nanos(),
        d.sw(SwEvent::ContextSwitches),
        d.sw(SwEvent::CpuMigrations),
        d.sw(SwEvent::TimerTicks),
        node.state_fingerprint(),
    )
}

#[test]
fn fast_event_loop_matches_reference_path() {
    // The timer-wheel + quiescence-fast-forward path must be byte-
    // identical to the reference heap-of-everything event loop: same
    // execution time, same counters (including ticks — a *skipped*
    // tick is still a tick), same final task-table fingerprint.
    let tickless = || {
        let mut kc = KernelConfig::hpl();
        kc.tickless_single_hpc = true;
        kc
    };
    let cases: [(&str, KernelConfig, bool, SchedMode); 3] = [
        (
            "standard-linux",
            KernelConfig::default(),
            false,
            SchedMode::Cfs,
        ),
        ("hpl", KernelConfig::hpl(), true, SchedMode::Hpc),
        ("hpl-tickless", tickless(), true, SchedMode::Hpc),
    ];
    for (name, kc, hpc, mode) in cases {
        for seed in [7u64, 1234] {
            let fast = run_with_config(kc.clone(), hpc, mode, true, seed);
            let reference = run_with_config(kc.clone(), hpc, mode, false, seed);
            assert_eq!(
                fast, reference,
                "{name} seed {seed}: fast event loop diverges from reference"
            );
        }
    }
}

#[test]
fn fast_forward_idle_stretch_matches_reference() {
    // An unloaded node (daemons only) is where the quiescence
    // fast-forward batches the most ticks; a long idle stretch must
    // leave the clock and every task exactly where the reference
    // path leaves them.
    for seed in [1u64, 9] {
        let observe = |fast: bool| {
            let kc = KernelConfig {
                fast_event_loop: fast,
                ..Default::default()
            };
            let mut node = NodeBuilder::new(Topology::power6_js22())
                .with_config(kc)
                .with_noise(NoiseProfile::standard(8))
                .with_seed(seed)
                .build();
            node.run_for(SimDuration::from_millis(800));
            (
                node.now(),
                node.counters.total().sw(SwEvent::TimerTicks),
                node.state_fingerprint(),
            )
        };
        assert_eq!(observe(true), observe(false), "seed {seed}");
    }
}

fn cluster_run(fast: bool, seed: u64) -> (u64, u64) {
    let nodes = 2u32;
    let job = JobSpec::new(
        nodes * 8,
        JobSpec::repeat(
            3,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(3),
                },
                MpiOp::Allreduce { bytes: 256 },
            ],
        ),
    )
    .with_nodes(nodes);
    let mut cluster = Cluster::builder()
        .nodes_with(nodes as usize, move |i| {
            let mut kc = KernelConfig::hpl();
            kc.fast_event_loop = fast;
            NodeBuilder::new(Topology::power6_js22())
                .with_config(kc)
                .with_noise(NoiseProfile::standard(8))
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .with_hpc_class(Box::new(HplClass::new()))
                .build()
        })
        .fabric(Interconnect::flat(nodes as usize, NetConfig::default()))
        .build();
    for i in 0..nodes as usize {
        cluster.node_mut(i).run_for(SimDuration::from_millis(300));
    }
    let handle = cluster.launch(&job, SchedMode::Hpc, Placement::All);
    let exec = cluster.run_to_completion(&handle, 500_000_000);
    (exec.as_nanos(), cluster.state_fingerprint())
}

#[test]
fn multi_node_run_is_seed_stable_across_event_loops() {
    // The lockstep co-simulation must inherit both single-node
    // guarantees: bit-identical reruns for a seed, and fast-path /
    // reference-path equivalence — now with cross-node deliveries in
    // the event stream.
    for seed in [7u64, 1234] {
        let fast = cluster_run(true, seed);
        let again = cluster_run(true, seed);
        let reference = cluster_run(false, seed);
        assert_eq!(fast, again, "seed {seed}: cluster run not reproducible");
        assert_eq!(
            fast, reference,
            "seed {seed}: cluster fast event loop diverges from reference"
        );
    }
}

#[test]
fn rng_run_streams_are_stable_across_calls() {
    // The harness derives per-repetition seeds this way; the mapping must
    // never change silently or archived results become irreproducible.
    let mut r = Rng::for_run(0x5EED, 17);
    let first = r.next_u64();
    let mut r2 = Rng::for_run(0x5EED, 17);
    assert_eq!(first, r2.next_u64());
}
