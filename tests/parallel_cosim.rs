//! Differential tests for the parallel lockstep driver: stepping
//! conservative windows on a host thread pool must be **byte-invisible**
//! in every observable output — state fingerprints, execution times,
//! event counts, interconnect traffic counters, per-node metrics, and
//! the merged Chrome trace document — across seeds, fabrics, kernel
//! flavours and pool widths. Host threads are forced to at least two so
//! the pool genuinely crosses threads even on a single-core CI box.

use hpl::prelude::*;

const RANKS_PER_NODE: u32 = 2;

/// Everything observable about one cluster run, in directly comparable
/// (and mostly textual) form.
#[derive(Debug, PartialEq)]
struct Observed {
    exec_ns: u64,
    fingerprint: u64,
    events: u64,
    net_messages: u64,
    net_bytes: u64,
    /// `Debug` dump of every node's `MetricsSink` contents.
    metrics: Vec<String>,
    /// The merged Chrome trace JSON document.
    trace: String,
}

struct Case {
    nodes: u32,
    switched: bool,
    tickless: bool,
    seed: u64,
}

fn job(nodes: u32) -> JobSpec {
    JobSpec::new(
        nodes * RANKS_PER_NODE,
        JobSpec::repeat(
            3,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_micros(400),
                },
                MpiOp::Allreduce { bytes: 64 },
                MpiOp::NeighborExchange { bytes: 256 },
            ],
        ),
    )
    .with_nodes(nodes)
}

/// Build the case's cluster under `cosim`, run the job to completion
/// with metrics and trace sinks attached, and collect every observable.
fn observe(case: &Case, cosim: CosimConfig) -> Observed {
    let mut kcfg = KernelConfig::hpl();
    kcfg.tickless_single_hpc = case.tickless;
    let net = if case.switched {
        Interconnect::switched(case.nodes as usize, NetConfig::default())
    } else {
        Interconnect::flat(case.nodes as usize, NetConfig::default())
    };
    let seed = case.seed;
    let nodes = case.nodes;
    let mut cluster = Cluster::builder()
        .nodes_with(nodes as usize, move |i| {
            hpl_node_builder(Topology::smp(RANKS_PER_NODE))
                .with_config(kcfg.clone())
                .with_noise(NoiseProfile::standard(RANKS_PER_NODE).scaled(0.25))
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .build()
        })
        .fabric(net)
        .cosim(cosim)
        .build();
    let mut metric_ids = Vec::new();
    let mut trace_ids = Vec::new();
    for i in 0..case.nodes as usize {
        let node = cluster.node_mut(i);
        metric_ids.push(node.attach_observer(Box::new(MetricsSink::new())));
        trace_ids.push(node.attach_observer(Box::new(ChromeTraceSink::new(100_000))));
        node.run_for(SimDuration::from_millis(50));
    }
    let handle = cluster.launch(&job(case.nodes), SchedMode::Hpc, Placement::All);
    let exec = cluster.run_to_completion(&handle, 80_000_000);
    let metrics = metric_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            format!(
                "{:?}",
                cluster
                    .node(i)
                    .observer::<MetricsSink>(id)
                    .expect("metrics sink resolves")
                    .metrics()
            )
        })
        .collect();
    let trace = cluster
        .export_chrome_trace(&trace_ids)
        .expect("trace sinks resolve");
    validate_chrome_trace(&trace).expect("merged trace is well-formed");
    Observed {
        exec_ns: exec.as_nanos(),
        fingerprint: cluster.state_fingerprint(),
        events: cluster.events_processed(),
        net_messages: cluster.net().messages(),
        net_bytes: cluster.net().bytes(),
        metrics,
        trace,
    }
}

fn forced_parallel(threads: usize) -> CosimConfig {
    CosimConfig::parallel()
        .with_threads(threads)
        .with_min_active(2)
}

#[test]
fn parallel_windows_are_byte_identical_to_serial() {
    let cases = [
        Case {
            nodes: 4,
            switched: false,
            tickless: false,
            seed: 0xC051,
        },
        Case {
            nodes: 4,
            switched: true,
            tickless: true,
            seed: 0xC052,
        },
        Case {
            nodes: 8,
            switched: true,
            tickless: false,
            seed: 0xC053,
        },
    ];
    for case in &cases {
        let serial = observe(case, CosimConfig::serial());
        let parallel = observe(case, forced_parallel(2));
        assert!(serial.exec_ns > 0 && serial.events > 0 && serial.net_messages > 0);
        assert_eq!(
            serial, parallel,
            "nodes={} switched={} tickless={}: pooled stepping leaked into observable state",
            case.nodes, case.switched, case.tickless
        );
    }
}

#[test]
fn pool_width_never_changes_the_answer() {
    // 1 thread (pool bypassed), 2, 3 and 5 threads: all the same bytes.
    let case = Case {
        nodes: 6,
        switched: false,
        tickless: false,
        seed: 0x91DE,
    };
    let baseline = observe(&case, CosimConfig::serial());
    for threads in [1usize, 2, 3, 5] {
        let run = observe(&case, forced_parallel(threads));
        assert_eq!(
            baseline, run,
            "{threads}-thread pool diverged from the serial baseline"
        );
    }
}

/// Like [`observe`], but with a gang epoch configured and **two**
/// whole-cluster jobs co-resident on every node, so the run exercises
/// gang enrollment, epoch rotation and release on both event-loop
/// flavours.
fn observe_gang(seed: u64, cosim: CosimConfig) -> Observed {
    const NODES: u32 = 4;
    let mut kcfg = KernelConfig::hpl();
    kcfg.gang_epoch = Some(SimDuration::from_micros(500));
    let mut cluster = Cluster::builder()
        .nodes_with(NODES as usize, move |i| {
            hpl_node_builder(Topology::smp(RANKS_PER_NODE))
                .with_config(kcfg.clone())
                .with_noise(NoiseProfile::standard(RANKS_PER_NODE).scaled(0.25))
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .build()
        })
        .fabric(Interconnect::flat(NODES as usize, NetConfig::default()))
        .cosim(cosim)
        .build();
    let mut metric_ids = Vec::new();
    let mut trace_ids = Vec::new();
    for i in 0..NODES as usize {
        let node = cluster.node_mut(i);
        metric_ids.push(node.attach_observer(Box::new(MetricsSink::new())));
        trace_ids.push(node.attach_observer(Box::new(ChromeTraceSink::new(100_000))));
        node.run_for(SimDuration::from_millis(50));
    }
    let a = cluster.launch(&job(NODES), SchedMode::Hpc, Placement::All);
    let b = cluster.launch(
        &job(NODES).with_id_base(10_000),
        SchedMode::Hpc,
        Placement::All,
    );
    let exec_a = cluster.run_to_completion(&a, 80_000_000);
    let exec_b = cluster.run_to_completion(&b, 80_000_000);
    let metrics = metric_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            format!(
                "{:?}",
                cluster
                    .node(i)
                    .observer::<MetricsSink>(id)
                    .expect("metrics sink resolves")
                    .metrics()
            )
        })
        .collect();
    let trace = cluster
        .export_chrome_trace(&trace_ids)
        .expect("trace sinks resolve");
    validate_chrome_trace(&trace).expect("merged trace is well-formed");
    Observed {
        exec_ns: exec_a.as_nanos() + exec_b.as_nanos(),
        fingerprint: cluster.state_fingerprint(),
        events: cluster.events_processed(),
        net_messages: cluster.net().messages(),
        net_bytes: cluster.net().bytes(),
        metrics,
        trace,
    }
}

#[test]
fn gang_rotation_is_byte_identical_across_pooled_windows() {
    let serial = observe_gang(0x6A16, CosimConfig::serial());
    let parallel = observe_gang(0x6A16, forced_parallel(2));
    assert!(serial.exec_ns > 0 && serial.events > 0 && serial.net_messages > 0);
    assert!(
        serial
            .metrics
            .iter()
            .all(|m| m.contains("gang_epochs") && !m.contains("gang_epochs: 0")),
        "every node must rotate gangs during the overlapped run: {:?}",
        serial.metrics
    );
    assert_eq!(
        serial, parallel,
        "gang rotation leaked pooled-stepping state into observable output"
    );
}

#[test]
fn dense_window_threshold_only_gates_the_pool_not_the_result() {
    // min_active above the node count: parallel mode configured but the
    // pool never engages — and an engaged pool gives the same bytes.
    let case = Case {
        nodes: 4,
        switched: false,
        tickless: false,
        seed: 0x7E57,
    };
    let never_dense = observe(
        &case,
        CosimConfig::parallel()
            .with_threads(2)
            .with_min_active(1_000),
    );
    let always_dense = observe(&case, forced_parallel(2));
    assert_eq!(never_dense, always_dense);
}
