//! The observability contract: attaching observers never changes what
//! the kernel does, and what the observers report agrees with itself.
//!
//! Two halves:
//!
//! 1. **Differential**: a run with the full sink stack attached produces
//!    the *same* execution time, counters, and post-run state
//!    fingerprint as a run with no observers, on both the fast and the
//!    reference event loop. Observers are pure sinks — this is the
//!    "zero perturbation" half of the zero-cost claim.
//! 2. **Consistency**: the Chrome-trace export parses as valid trace
//!    JSON and its event counts match the metrics registry and the ring
//!    buffer, so the three sinks tell one coherent story.

use hpl::prelude::*;

fn job() -> JobSpec {
    JobSpec::new(
        8,
        JobSpec::repeat(
            4,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(4),
                },
                MpiOp::Barrier,
            ],
        ),
    )
}

/// Everything observable about one measured run: exec time, the counter
/// deltas the study reports, and the full post-run state fingerprint.
type Observation = (u64, u64, u64, u64, u64);

/// Run one measured job, optionally with the full observer stack
/// (ring + Chrome exporter + metrics registry) attached from boot.
fn run(hpc: bool, fast: bool, observed: bool, seed: u64) -> Observation {
    let mut kc = if hpc {
        KernelConfig::hpl()
    } else {
        KernelConfig::default()
    };
    kc.fast_event_loop = fast;
    let mut builder = NodeBuilder::new(Topology::power6_js22())
        .with_config(kc)
        .with_noise(NoiseProfile::standard(8))
        .with_seed(seed);
    if hpc {
        builder = builder.with_hpc_class(Box::new(HplClass::new()));
    }
    let mut node = builder.build();
    if observed {
        node.enable_trace(200_000);
        node.attach_observer(Box::new(ChromeTraceSink::new(200_000)));
        node.attach_observer(Box::new(MetricsSink::new()));
    }
    node.run_for(SimDuration::from_millis(300));
    let mut perf = PerfSession::open(&node.counters, node.now());
    let mode = if hpc { SchedMode::Hpc } else { SchedMode::Cfs };
    let handle = launch(&mut node, &job(), mode);
    let exec = handle.run_to_completion(&mut node, 2_000_000_000);
    perf.close(&node.counters, node.now());
    let d = perf.delta();
    (
        exec.as_nanos(),
        d.sw(SwEvent::ContextSwitches),
        d.sw(SwEvent::CpuMigrations),
        d.sw(SwEvent::TimerTicks),
        node.state_fingerprint(),
    )
}

#[test]
fn observers_do_not_perturb_the_simulation() {
    for hpc in [false, true] {
        for fast in [false, true] {
            for seed in [7u64, 1234] {
                let plain = run(hpc, fast, false, seed);
                let observed = run(hpc, fast, true, seed);
                assert_eq!(
                    plain, observed,
                    "hpc={hpc} fast={fast} seed={seed}: observers perturbed the run"
                );
            }
        }
    }
}

#[test]
fn sinks_agree_with_each_other_and_the_export_is_valid() {
    let mut node = NodeBuilder::new(Topology::power6_js22())
        .with_noise(NoiseProfile::standard(8))
        .with_seed(42)
        .build();
    node.enable_trace(200_000);
    let chrome = node.attach_observer(Box::new(ChromeTraceSink::new(200_000)));
    let metrics_id = node.attach_observer(Box::new(MetricsSink::new()));
    node.run_for(SimDuration::from_millis(200));
    let handle = launch(&mut node, &job(), SchedMode::Cfs);
    assert!(handle
        .try_run_to_completion(&mut node, 2_000_000_000)
        .is_ok());

    let m = node
        .observer::<MetricsSink>(metrics_id)
        .unwrap()
        .metrics()
        .clone();
    let sink = node.observer::<ChromeTraceSink>(chrome).unwrap();
    // The three sinks saw the same event stream.
    assert_eq!(sink.switch_count(), m.switches);
    assert_eq!(sink.migration_count(), m.migrations);
    assert_eq!(sink.wakeup_count(), m.wakeups);
    assert_eq!(sink.dropped(), 0, "capacity was sized for the run");
    let ring = node.trace().unwrap();
    let ring_switches = ring
        .iter()
        .filter(|(_, ev)| matches!(ev, TraceEvent::Switch { .. }))
        .count() as u64;
    let ring_migrations = ring
        .iter()
        .filter(|(_, ev)| matches!(ev, TraceEvent::Migrate { .. }))
        .count() as u64;
    assert_eq!(ring_switches, m.switches);
    assert_eq!(ring_migrations, m.migrations);
    assert_eq!(ring.dropped(), 0);

    // The export parses as Chrome trace JSON, and the instant events
    // (migrations + wakeups) survive the round trip exactly.
    let json = node.export_chrome_trace(chrome).unwrap();
    let stats = validate_chrome_trace(&json).expect("export must be valid trace JSON");
    assert_eq!(
        stats.instant_events as u64,
        m.migrations + m.wakeups,
        "instant events lost in export"
    );
    assert_eq!(stats.complete_events, sink.slice_count());
    assert!(stats.complete_events > 0, "a real run produces slices");

    // The metrics registry is internally consistent too.
    assert_eq!(m.per_cpu_switches.iter().sum::<u64>(), m.switches);
    assert!(m.picks >= m.switches, "every switch came from a pick");
    assert!(m.timeslice_ns.count() > 0);
    assert!(m.timeslice_ns.count() <= m.switches);
}

#[test]
fn metrics_registry_counts_decisions() {
    // A noisy multi-job run exercises every decision point at least once
    // (except RT push, which needs an overloaded RT setup).
    let mut node = NodeBuilder::new(Topology::power6_js22())
        .with_noise(NoiseProfile::standard(8))
        .with_seed(9)
        .build();
    let metrics_id = node.attach_observer(Box::new(MetricsSink::new()));
    node.run_for(SimDuration::from_millis(100));
    let handle = launch(&mut node, &job(), SchedMode::Cfs);
    assert!(node
        .run_until_exit(handle.perf_pid, 2_000_000_000)
        .is_complete());
    let m = node.observer::<MetricsSink>(metrics_id).unwrap().metrics();
    assert!(m.switches > 0);
    assert!(m.wakeups > 0);
    assert!(m.forks > 0);
    assert!(m.preempt_checks > 0);
    assert!(m.ticks > 0);
    assert!(m.noise_arrivals > 0, "standard noise profile has daemons");
    assert!(m.idle_balance_calls + m.periodic_balance_calls > 0);
    assert!(m.timeslice_ns.count() > 0);
}
