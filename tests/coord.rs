//! Cross-crate integration tests for `hpl-coord`: fractional CPU
//! shares realized by two backends — weighted kernel gang slicing and
//! the user-space lease arbiter — over real multi-node co-simulated
//! clusters.
//!
//! The contract under test, end to end:
//! * absent/equal shares are **byte-identical** to the pre-existing
//!   unweighted gang rotation (the weighted path is a pure
//!   generalization, not a fork);
//! * a 750/250 split measurably skews both completion time and the
//!   per-gang busy time integrated by [`MetricsSink`];
//! * the user-space backend produces the same skew with **no** kernel
//!   gang support at all, under both CFS and HPL classes;
//! * coordinated runs stay bit-identical between serial and pooled
//!   window stepping (the per-node shared segment never leaks host
//!   scheduling).

use hpl::prelude::*;

const NODES: u32 = 2;
const RANKS_PER_NODE: u32 = 2;
const EPOCH_US: u64 = 500;
/// Gang ids are the jobs' id bases.
const HEAVY: u64 = 0;
const LIGHT: u64 = 10_000;

fn epoch() -> SimDuration {
    SimDuration::from_micros(EPOCH_US)
}

/// A mixed compute/communication job with enough phase boundaries for
/// the cooperative shim to act on (it yields only between compute
/// bursts).
fn job(base: u64) -> JobSpec {
    JobSpec::new(
        NODES * RANKS_PER_NODE,
        JobSpec::repeat(
            8,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_micros(300),
                },
                MpiOp::Allreduce { bytes: 64 },
            ],
        ),
    )
    .with_nodes(NODES)
    .with_id_base(base)
}

/// A compute-bound job: no cross-node synchronisation between bursts,
/// so a gang's rate of progress is exactly its CPU-share fraction.
/// Two measurement hygiene choices: the spin limit is cut to 5 us so
/// waits block instead of busy-polling (the default 10 ms spin would
/// book barrier waits as gang busy time and completion would be bound
/// by rotation latency, not share), and the compute volume dwarfs the
/// share-independent MPI_Init phase so it cannot dilute the skew.
fn compute_job(base: u64) -> JobSpec {
    let cfg = MpiConfig {
        spin_limit: SimDuration::from_micros(5),
        ..MpiConfig::default()
    };
    JobSpec::new(
        NODES * RANKS_PER_NODE,
        JobSpec::repeat(
            32,
            &[MpiOp::Compute {
                mean: SimDuration::from_micros(600),
            }],
        ),
    )
    .with_nodes(NODES)
    .with_id_base(base)
    .with_config(cfg)
}

/// Quiet two-node cluster with a metrics sink per node, warmed past
/// boot transients. `gang` selects whether the kernel itself has gang
/// scheduling configured (the user-space backend must work without).
fn cluster(seed: u64, gang: bool, cosim: CosimConfig) -> (Cluster, Vec<ObserverId>) {
    let mut kcfg = KernelConfig::hpl();
    if gang {
        kcfg.gang_epoch = Some(epoch());
    }
    let mut cluster = Cluster::builder()
        .nodes_with(NODES as usize, move |i| {
            hpl_node_builder(Topology::smp(RANKS_PER_NODE))
                .with_config(kcfg.clone())
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .build()
        })
        .fabric(Interconnect::flat(NODES as usize, NetConfig::default()))
        .cosim(cosim)
        .build();
    let mut ids = Vec::new();
    for i in 0..NODES as usize {
        let node = cluster.node_mut(i);
        ids.push(node.attach_observer(Box::new(MetricsSink::new())));
        node.run_for(SimDuration::from_millis(50));
    }
    (cluster, ids)
}

/// Sum a gang's attributed busy time across every node's sink.
fn busy(cluster: &Cluster, ids: &[ObserverId], gang: u64) -> u64 {
    ids.iter()
        .enumerate()
        .map(|(i, &id)| {
            cluster
                .node(i)
                .observer::<MetricsSink>(id)
                .expect("metrics sink resolves")
                .metrics()
                .gang_busy_ns(gang)
        })
        .sum()
}

// ---------------------------------------------------------------------
// Kernel backend
// ---------------------------------------------------------------------

#[test]
fn equal_shares_are_byte_identical_to_unweighted_rotation() {
    let run = |explicit_shares: bool| {
        let (mut c, _ids) = cluster(0xC00D, true, CosimConfig::serial());
        let a = c.launch(&job(HEAVY), SchedMode::Hpc, Placement::All);
        let b = c.launch(&job(LIGHT), SchedMode::Hpc, Placement::All);
        if explicit_shares {
            for n in 0..NODES as usize {
                c.set_gang_share(n, HEAVY, 1000);
                c.set_gang_share(n, LIGHT, 1000);
            }
        }
        let ea = c.run_to_completion(&a, 80_000_000).as_nanos();
        let eb = c.run_to_completion(&b, 80_000_000).as_nanos();
        (ea, eb, c.state_fingerprint(), c.events_processed())
    };
    let implicit = run(false);
    let explicit = run(true);
    assert!(implicit.0 > 0 && implicit.1 > 0);
    assert_eq!(
        implicit, explicit,
        "an all-equal share table must degenerate to the legacy \
         rotation exactly (same execution times, state fingerprint \
         and event count)"
    );
}

/// One measured kernel-backend run: `(exec_heavy, exec_light,
/// busy_heavy, busy_light, longest_slice)`, busy times snapshotted at
/// the heavy job's completion so they cover only co-resident time.
fn kernel_run(heavy_share: u32, light_share: u32) -> (u64, u64, u64, u64, Option<u64>) {
    let (mut c, ids) = cluster(0xBEEF, true, CosimConfig::serial());
    let mut rt = CoordRuntime::kernel_weighted(epoch());
    assert_eq!(rt.backend(), CoordBackend::KernelWeighted);
    rt.install(&mut c);
    let a = rt.launch(&mut c, &compute_job(HEAVY), SchedMode::Hpc, Placement::All);
    let b = rt.launch(&mut c, &compute_job(LIGHT), SchedMode::Hpc, Placement::All);
    for n in 0..NODES as usize {
        rt.set_share(&mut c, n, HEAVY, heavy_share);
        rt.set_share(&mut c, n, LIGHT, light_share);
    }
    let ea = c.run_to_completion(&a, 80_000_000).as_nanos();
    let heavy_busy = busy(&c, &ids, HEAVY);
    let light_busy = busy(&c, &ids, LIGHT);
    let eb = c.run_to_completion(&b, 80_000_000).as_nanos();
    let mut slice_max = None;
    for (i, &id) in ids.iter().enumerate() {
        let m = c.node(i).observer::<MetricsSink>(id).unwrap().metrics();
        assert!(m.gang_slices > 0, "node {i} saw no weighted slices");
        assert!(m.gang_epochs > 0, "node {i} saw no gang rotation");
        slice_max = slice_max.max(m.gang_slice_ns.max());
    }
    (ea, eb, heavy_busy, light_busy, slice_max)
}

/// The skew assertion is **differential** — 750/250 against a 500/500
/// control of the very same cluster and jobs — because even the equal
/// rotation realizes asymmetric allocations on this workload (spin
/// phases, SMT co-run stretching, barrier convoys). What the share
/// table must demonstrably move is the *relative* allocation and the
/// completion order, not an absolute 3:1 ledger split.
#[test]
fn weighted_kernel_slicing_skews_completion_and_busy_time() {
    let (ea_eq, eb_eq, bh_eq, bl_eq, slice_eq) = kernel_run(500, 500);
    let (ea_sk, eb_sk, bh_sk, bl_sk, slice_sk) = kernel_run(750, 250);
    // Slice geometry: equal shares halve the 1 ms period; 750/250
    // cuts a 750 us maximum slice.
    assert_eq!(
        slice_eq,
        Some(500_000),
        "equal shares must halve the period"
    );
    assert_eq!(slice_sk, Some(750_000), "750-share slice must be 750 us");
    // Completion moves the right way on both sides of the split.
    assert!(
        ea_sk < ea_eq,
        "750 shares must speed the heavy job up: {ea_sk} vs {ea_eq} ns"
    );
    assert!(
        eb_sk > eb_eq,
        "250 shares must slow the light job down: {eb_sk} vs {eb_eq} ns"
    );
    // Realized co-resident allocation shifts towards the heavy gang by
    // at least 1.5x relative to the equal-share control.
    assert!(
        bh_sk * bl_eq > bh_eq * bl_sk * 3 / 2,
        "busy-time ledger must shift towards the 750-share gang: \
         control {bh_eq}/{bl_eq} ns, skewed {bh_sk}/{bl_sk} ns"
    );
}

// ---------------------------------------------------------------------
// User-space backend
// ---------------------------------------------------------------------

#[test]
fn user_space_arbiter_skews_progress_without_kernel_gang_support() {
    // The nodes are built *without* gang_epoch: the kernel offers no
    // co-scheduling help whatsoever, under either class.
    for mode in [SchedMode::Cfs, SchedMode::Hpc] {
        let (mut c, ids) = cluster(0xD0C5, false, CosimConfig::serial());
        let mut rt = CoordRuntime::user_space(epoch());
        assert_eq!(rt.backend(), CoordBackend::UserSpace);
        rt.install(&mut c);
        let a = rt.launch(&mut c, &job(HEAVY), mode, Placement::All);
        let b = rt.launch(&mut c, &job(LIGHT), mode, Placement::All);
        for n in 0..NODES as usize {
            rt.set_share(&mut c, n, HEAVY, 750);
            rt.set_share(&mut c, n, LIGHT, 250);
        }
        let ea = c.run_to_completion(&a, 120_000_000).as_nanos();
        let eb = c.run_to_completion(&b, 120_000_000).as_nanos();
        assert!(
            eb > ea,
            "{mode:?}: the 250-share job must outlast the 750-share \
             job: heavy {ea} ns vs light {eb} ns"
        );
        let stats = rt.total_stats();
        assert!(stats.leases > 0, "{mode:?}: the arbiter never granted");
        assert!(
            stats.blocks > 0,
            "{mode:?}: no rank ever yielded at a phase boundary"
        );
        assert!(
            stats.grants > 0,
            "{mode:?}: no blocked rank was ever released"
        );
        // The arbiter publishes its grants into the observer stream.
        let leases: u64 = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                c.node(i)
                    .observer::<MetricsSink>(id)
                    .unwrap()
                    .metrics()
                    .leases
            })
            .sum();
        assert!(leases > 0, "{mode:?}: no Lease event reached the sinks");
    }
}

// ---------------------------------------------------------------------
// Determinism across pooled window stepping
// ---------------------------------------------------------------------

fn observe_coordinated(
    seed: u64,
    backend: CoordBackend,
    cosim: CosimConfig,
) -> (u64, u64, u64, u64) {
    let gang = backend == CoordBackend::KernelWeighted;
    let (mut c, _ids) = cluster(seed, gang, cosim);
    let mut rt = match backend {
        CoordBackend::KernelWeighted => CoordRuntime::kernel_weighted(epoch()),
        CoordBackend::UserSpace => CoordRuntime::user_space(epoch()),
    };
    rt.install(&mut c);
    let a = rt.launch(&mut c, &job(HEAVY), SchedMode::Hpc, Placement::All);
    let b = rt.launch(&mut c, &job(LIGHT), SchedMode::Hpc, Placement::All);
    for n in 0..NODES as usize {
        rt.set_share(&mut c, n, HEAVY, 750);
        rt.set_share(&mut c, n, LIGHT, 250);
    }
    let ea = c.run_to_completion(&a, 120_000_000).as_nanos();
    let eb = c.run_to_completion(&b, 120_000_000).as_nanos();
    (ea, eb, c.state_fingerprint(), c.events_processed())
}

#[test]
fn coordinated_runs_are_bit_identical_across_pooling() {
    for backend in [CoordBackend::KernelWeighted, CoordBackend::UserSpace] {
        let serial = observe_coordinated(0xA11D, backend, CosimConfig::serial());
        assert!(serial.0 > 0 && serial.1 > 0);
        for threads in [2usize, 3] {
            let pooled = observe_coordinated(
                0xA11D,
                backend,
                CosimConfig::parallel()
                    .with_threads(threads)
                    .with_min_active(2),
            );
            assert_eq!(
                serial, pooled,
                "{backend:?}: {threads}-thread pooled stepping diverged \
                 from the serial baseline"
            );
        }
    }
}
