//! Differential test: the mechanistic co-simulation must agree with the
//! analytic resonance model where the model's assumptions hold.
//!
//! The analytic [`ResonanceModel`] says: with independent per-node noise
//! and negligible network cost, the expected phase time on N nodes is
//! the expected maximum of N draws from the single-node per-phase
//! distribution. The mechanistic cluster makes no such assumption — it
//! just runs N kernels. At small N with a near-free interconnect (tiny
//! messages, flat fabric, microsecond latency) the two must land on the
//! same numbers; that cross-check is what lets the mechanistic layer be
//! trusted where the analytic one *cannot* go (contention, correlated
//! noise, migration storms).

use hpl::prelude::*;

const RANKS_PER_NODE: u32 = 8;
const ITERS: u32 = 12;
const REPS: u64 = 3;

fn job(nodes: u32) -> JobSpec {
    JobSpec::new(
        nodes * RANKS_PER_NODE,
        JobSpec::repeat(
            ITERS,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(3),
                },
                // 8-byte allreduce over a microsecond fabric: the
                // inter-node rounds cost ~1% of a phase, so the
                // "network is free" assumption of the analytic model
                // holds to within the tolerance below.
                MpiOp::Allreduce { bytes: 8 },
            ],
        ),
    )
    .with_nodes(nodes)
}

fn build_cluster(nodes: u32, seed: u64) -> Cluster {
    // HPL nodes: the HPC class shields ranks from preemption and
    // migration, so per-node phase times really are i.i.d. noise-on-top-
    // of-compute — the analytic model's assumption. (Under CFS the
    // mechanistic run drifts above the model at N = 4 because idle
    // balancing reacts to late ranks across phases — emergent behaviour
    // the analytic layer cannot express, and precisely why the
    // mechanistic layer exists.)
    let cfg = NetConfig {
        alpha: SimDuration::from_micros(1),
        beta_ns_per_byte: 0.1,
    };
    Cluster::builder()
        .nodes_with(nodes as usize, move |i| {
            hpl_node_builder(Topology::power6_js22())
                .with_noise(NoiseProfile::standard(RANKS_PER_NODE))
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .build()
        })
        .fabric(Interconnect::flat(nodes as usize, cfg))
        .build()
}

/// Per-phase durations on an N-node mechanistic run, measured on node
/// 0's per-phase barrier (the global one when N = 1, the node-local one
/// otherwise). The init and finalize synchronisations are dropped — they
/// bracket launch and teardown, not compute phases.
fn mechanistic_phases(nodes: u32, seed: u64, reps: u64) -> Vec<f64> {
    let mut samples = Vec::new();
    for rep in 0..reps {
        let mut cluster = build_cluster(nodes, seed ^ (rep << 24));
        for i in 0..nodes as usize {
            cluster.node_mut(i).run_for(SimDuration::from_millis(300));
        }
        let job = job(nodes);
        let barrier = if nodes == 1 {
            job.barrier_id()
        } else {
            job.local_barrier_id(0)
        };
        let handle = cluster.launch(&job, SchedMode::Hpc, Placement::All);
        let mut rep_samples = Vec::new();
        let mut last_gen = cluster.node(0).sync.barrier_generation(barrier);
        let mut last_t = cluster.node(0).now();
        while !cluster.job_done(&handle) {
            assert!(cluster.step_window(), "cluster run deadlocked");
            let gen = cluster.node(0).sync.barrier_generation(barrier);
            if gen > last_gen {
                if last_gen > 0 {
                    rep_samples.push(cluster.node(0).now().since(last_t).as_secs_f64());
                }
                last_gen = gen;
                last_t = cluster.node(0).now();
            }
        }
        // Two samples are not compute phases and get dropped: the
        // finalize barrier (rides microseconds behind the last
        // iteration's synchronisation — sometimes merged into it by the
        // window granularity), and the *first* iteration, which absorbs
        // the cross-node launch skew: each node's mpiexec forks its
        // ranks on its own schedule, so the init release waits on the
        // slowest node — milliseconds of stagger the analytic model's
        // synchronised-phases assumption does not cover (real codes
        // time after MPI_Init for the same reason).
        assert!(
            rep_samples.len() == ITERS as usize || rep_samples.len() == ITERS as usize + 1,
            "expected one sample per iteration (+ optional finalize), got {}",
            rep_samples.len()
        );
        rep_samples.truncate(ITERS as usize);
        rep_samples.remove(0);
        samples.extend(rep_samples);
    }
    samples
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[test]
fn mechanistic_small_n_matches_analytic_model() {
    // Single-node per-phase distribution feeds the analytic model. The
    // probe gets extra repetitions: the analytic E[max of N] reads the
    // empirical tail, which a small sample truncates.
    let base = mechanistic_phases(1, 0xD1FF, 3 * REPS);
    let model = ResonanceModel::new(
        EmpiricalDist::try_new(base.clone()).expect("probe produced samples"),
        ITERS,
    );

    // ...whose N = 1 prediction is the sample mean, up to the quantile
    // interpolation the analytic integral performs over a finite sample.
    let m1 = mean(&base);
    let a1 = model.expected_time_analytic(1) / ITERS as f64;
    assert!(
        (m1 - a1).abs() / a1 < 0.05,
        "analytic N=1 {a1} vs sample mean {m1}"
    );

    // At N = 2 and 4 the mechanistic cluster must land on the analytic
    // expected-max within 10%: the slack absorbs the (deliberately
    // tiny) network rounds, the finite sample of the empirical
    // distribution, and cross-node noise correlations the analytic
    // model ignores.
    for nodes in [2u32, 4] {
        let mech = mean(&mechanistic_phases(nodes, 0xD1FF, REPS));
        let analytic = model.expected_time_analytic(nodes) / ITERS as f64;
        let rel = (mech - analytic).abs() / analytic;
        eprintln!(
            "differential N={nodes}: mech {mech:.6}s analytic {analytic:.6}s rel {rel:.3} (N=1 mean {m1:.6}s)"
        );
        assert!(
            rel < 0.10,
            "N={nodes}: mechanistic phase {mech:.6}s vs analytic {analytic:.6}s (rel {rel:.3})"
        );
        // And the resonance direction: N-node phases are no faster than
        // the single-node mean (max over nodes can only climb).
        assert!(
            mech > m1 * 0.99,
            "N={nodes}: mean phase {mech:.6}s fell below single-node {m1:.6}s"
        );
    }
}
