//! Calibration validation: simulated HPL minimum execution times must
//! land on the paper's Table II HPL-minimum column, for every
//! configuration. These tests run full NAS configurations (up to ~80
//! simulated seconds each) so they are `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release --test calibration -- --ignored
//! ```

use hpl::prelude::*;
use hpl::workloads::nas::paper_hpl_min_secs;

fn hpl_min_of(bench: NasBenchmark, class: NasClass, reps: u64) -> f64 {
    (0..reps)
        .map(|rep| {
            let seed = Rng::for_run(0xCA11B, rep).next_u64();
            let mut node = hpl_node_builder(Topology::power6_js22())
                .with_noise(NoiseProfile::standard(8))
                .with_seed(seed)
                .build();
            node.run_for(SimDuration::from_millis(400));
            let handle = launch(&mut node, &nas_job(bench, class, 8), SchedMode::Hpc);
            handle
                .run_to_completion(&mut node, 400_000_000_000)
                .as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn assert_calibrated(bench: NasBenchmark, class: NasClass) {
    let target = paper_hpl_min_secs(bench, class);
    let got = hpl_min_of(bench, class, 3);
    let rel = (got - target).abs() / target;
    assert!(
        rel < 0.05,
        "{}.{}: simulated HPL min {got:.3}s vs paper {target:.3}s ({:.1}% off)",
        bench.name(),
        class.name(),
        rel * 100.0
    );
}

macro_rules! calibration_test {
    ($name:ident, $bench:expr, $class:expr) => {
        #[test]
        #[ignore = "full-size NAS run; use cargo test --release -- --ignored"]
        fn $name() {
            assert_calibrated($bench, $class);
        }
    };
}

calibration_test!(cg_a_matches_paper, NasBenchmark::Cg, NasClass::A);
calibration_test!(cg_b_matches_paper, NasBenchmark::Cg, NasClass::B);
calibration_test!(ep_a_matches_paper, NasBenchmark::Ep, NasClass::A);
calibration_test!(ep_b_matches_paper, NasBenchmark::Ep, NasClass::B);
calibration_test!(ft_a_matches_paper, NasBenchmark::Ft, NasClass::A);
calibration_test!(ft_b_matches_paper, NasBenchmark::Ft, NasClass::B);
calibration_test!(is_a_matches_paper, NasBenchmark::Is, NasClass::A);
calibration_test!(is_b_matches_paper, NasBenchmark::Is, NasClass::B);
calibration_test!(lu_a_matches_paper, NasBenchmark::Lu, NasClass::A);
calibration_test!(lu_b_matches_paper, NasBenchmark::Lu, NasClass::B);
calibration_test!(mg_a_matches_paper, NasBenchmark::Mg, NasClass::A);
calibration_test!(mg_b_matches_paper, NasBenchmark::Mg, NasClass::B);

/// The cheap always-on version: the two smallest configurations.
#[test]
fn smallest_configs_match_paper() {
    for (b, c) in [
        (NasBenchmark::Is, NasClass::A),
        (NasBenchmark::Cg, NasClass::A),
    ] {
        let target = paper_hpl_min_secs(b, c);
        let got = hpl_min_of(b, c, 2);
        let rel = (got - target).abs() / target;
        assert!(
            rel < 0.06,
            "{}.{}: {got:.3}s vs paper {target:.3}s",
            b.name(),
            c.name()
        );
    }
}
