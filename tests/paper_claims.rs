//! Integration tests asserting the paper's *qualitative* claims on
//! scaled-down workloads (full-size reproduction lives in `repro`).
//!
//! The mechanisms these claims rest on (HPC-class shielding, wakeup
//! migration, tick/RR behaviour) are additionally fuzzed by the
//! torture harness: 200 seeded scenarios under an invariant oracle
//! across both event loops, zero violations as of the sweep at seed
//! 0x70a7 (DESIGN.md §9; regressions pinned in `tests/torture.rs`).

use hpl::prelude::*;

/// A compact sync-heavy job: enough structure to exercise barriers,
/// exchanges and the launcher stack while staying fast in debug builds.
/// `iters x compute_ms` sizes the run; statistical claims need windows
/// long enough (hundreds of ms) for daemon noise to act.
fn sized_job(iters: u32, compute_ms: u64) -> JobSpec {
    JobSpec::new(
        8,
        JobSpec::repeat(
            iters,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(compute_ms),
                },
                MpiOp::Allreduce { bytes: 64 },
                MpiOp::NeighborExchange { bytes: 16 * 1024 },
            ],
        ),
    )
}

fn small_job() -> JobSpec {
    sized_job(6, 6)
}

struct Outcome {
    time_s: f64,
    migrations: u64,
    switches: u64,
    preemptions: u64,
}

fn run_job(job: &JobSpec, mode: SchedMode, hpl_mode: bool, seed: u64) -> Outcome {
    let topo = Topology::power6_js22();
    let noise = NoiseProfile::standard(8);
    let mut node = if hpl_mode {
        hpl::core::hpl_node_builder(topo)
            .with_noise(noise)
            .with_seed(seed)
            .build()
    } else {
        NodeBuilder::new(topo)
            .with_noise(noise)
            .with_seed(seed)
            .build()
    };
    node.run_for(SimDuration::from_millis(300));
    let mut perf = PerfSession::open(&node.counters, node.now());
    let handle = launch(&mut node, job, mode);
    let exec = handle.run_to_completion(&mut node, 20_000_000_000);
    perf.close(&node.counters, node.now());
    let d = perf.delta();
    Outcome {
        time_s: exec.as_secs_f64(),
        migrations: d.sw(SwEvent::CpuMigrations),
        switches: d.sw(SwEvent::ContextSwitches),
        preemptions: d.sw(SwEvent::InvoluntaryPreemptions),
    }
}

fn run_one(mode: SchedMode, hpl_mode: bool, seed: u64) -> Outcome {
    run_job(&small_job(), mode, hpl_mode, seed)
}

fn run_many_seeds(mode: SchedMode, hpl_mode: bool, n: u64) -> Vec<Outcome> {
    (0..n)
        .map(|i| run_one(mode, hpl_mode, Rng::for_run(99, i).next_u64()))
        .collect()
}

fn variation_pct(outcomes: &[Outcome]) -> f64 {
    let min = outcomes
        .iter()
        .map(|o| o.time_s)
        .fold(f64::INFINITY, f64::min);
    let max = outcomes
        .iter()
        .map(|o| o.time_s)
        .fold(f64::NEG_INFINITY, f64::max);
    (max - min) / min * 100.0
}

fn mean<F: Fn(&Outcome) -> f64>(outcomes: &[Outcome], f: F) -> f64 {
    outcomes.iter().map(f).sum::<f64>() / outcomes.len() as f64
}

#[test]
fn hpl_migration_floor_is_the_papers_accounting() {
    // 8 rank forks + mpiexec + chrt + perf ≈ 10-13, never hundreds.
    for o in run_many_seeds(SchedMode::Hpc, true, 4) {
        assert!(
            (9..=25).contains(&o.migrations),
            "HPL migrations {} outside the structural floor",
            o.migrations
        );
    }
}

#[test]
fn hpl_beats_standard_linux_on_migrations_and_preemptions() {
    let std = run_many_seeds(SchedMode::Cfs, false, 4);
    let hpl = run_many_seeds(SchedMode::Hpc, true, 4);
    assert!(
        mean(&hpl, |o| o.migrations as f64) < mean(&std, |o| o.migrations as f64),
        "hpl migrations must undercut standard Linux"
    );
    assert!(
        mean(&hpl, |o| o.preemptions as f64) * 3.0 < mean(&std, |o| o.preemptions as f64),
        "hpl preemptions {} vs std {}",
        mean(&hpl, |o| o.preemptions as f64),
        mean(&std, |o| o.preemptions as f64)
    );
}

#[test]
fn hpl_is_more_stable_than_standard_linux() {
    // Windows of ~600 ms give the daemon population room to act.
    let job = sized_job(10, 20);
    let std: Vec<Outcome> = (0..6)
        .map(|i| run_job(&job, SchedMode::Cfs, false, Rng::for_run(21, i).next_u64()))
        .collect();
    let hpl: Vec<Outcome> = (0..6)
        .map(|i| run_job(&job, SchedMode::Hpc, true, Rng::for_run(21, i).next_u64()))
        .collect();
    let (vs, vh) = (variation_pct(&std), variation_pct(&hpl));
    assert!(
        vh < vs,
        "HPL variation {vh:.2}% must undercut standard {vs:.2}%"
    );
    assert!(vh < 2.0, "HPL variation should be small: {vh:.2}%");
}

#[test]
fn rt_sits_between_cfs_and_hpl() {
    // Fig. 4's qualitative placement: RT is tighter than CFS; HPL is at
    // least as tight as RT and strictly lower on migrations than RT
    // (RT's push/pull still migrates).
    let std = run_many_seeds(SchedMode::Cfs, false, 6);
    let rt = run_many_seeds(SchedMode::Rt { prio: 50 }, false, 6);
    let hpl = run_many_seeds(SchedMode::Hpc, true, 6);
    assert!(variation_pct(&rt) <= variation_pct(&std));
    assert!(mean(&hpl, |o| o.migrations as f64) < mean(&rt, |o| o.migrations as f64));
    assert!(
        mean(&rt, |o| o.preemptions as f64) < mean(&std, |o| o.preemptions as f64),
        "RT ranks are not preempted by CFS daemons"
    );
}

#[test]
fn hpl_switches_do_not_scale_with_problem_size() {
    // Table Ib's signature: context switches independent of data-set
    // size. Double the per-iteration compute; switches stay put while
    // the standard kernel's grow.
    let big_job = || sized_job(6, 400); // ~2.4 s vs ~40 ms of compute
    let run_with = |job: JobSpec, mode: SchedMode, hpl_mode: bool| -> f64 {
        let outs: Vec<Outcome> = (0..3)
            .map(|i| run_job(&job, mode, hpl_mode, Rng::for_run(7, i).next_u64()))
            .collect();
        mean(&outs, |o| o.switches as f64)
    };
    let hpl_small = run_with(small_job(), SchedMode::Hpc, true);
    let hpl_big = run_with(big_job(), SchedMode::Hpc, true);
    let std_small = run_with(small_job(), SchedMode::Cfs, false);
    let std_big = run_with(big_job(), SchedMode::Cfs, false);
    // HPL: within 25% despite 5x the runtime.
    assert!(
        (hpl_big - hpl_small).abs() / hpl_small < 0.25,
        "HPL switches scale with size: {hpl_small} -> {hpl_big}"
    );
    // Standard Linux: clearly grows.
    assert!(
        std_big > std_small * 1.5,
        "std switches should grow with size: {std_small} -> {std_big}"
    );
}

#[test]
fn time_correlates_with_migrations_under_standard_linux() {
    // Fig. 3's empirical relationship; windows long enough for noise and
    // enough samples that the rank correlation is statistically stable
    // (the full-size version is `repro fig3a`, rho ~ 0.9).
    let job = sized_job(12, 40);
    let outs: Vec<Outcome> = (0..16)
        .map(|i| run_job(&job, SchedMode::Cfs, false, Rng::for_run(31, i).next_u64()))
        .collect();
    let xs: Vec<f64> = outs.iter().map(|o| o.migrations as f64).collect();
    let ys: Vec<f64> = outs.iter().map(|o| o.time_s).collect();
    let rho = hpl::sim::stats::spearman(&xs, &ys);
    assert!(
        rho > 0.25,
        "expected positive rank correlation, got {rho:.3}"
    );
}

#[test]
fn pinning_removes_balancing_but_not_preemption() {
    // §IV: static affinity stops migrations yet daemons still preempt.
    let job = sized_job(8, 50);
    let pinned: Vec<Outcome> = (0..4)
        .map(|i| {
            run_job(
                &job,
                SchedMode::CfsPinned,
                false,
                Rng::for_run(41, i).next_u64(),
            )
        })
        .collect();
    let hpl: Vec<Outcome> = (0..4)
        .map(|i| run_job(&job, SchedMode::Hpc, true, Rng::for_run(41, i).next_u64()))
        .collect();
    assert!(
        mean(&pinned, |o| o.migrations as f64) < 20.0,
        "pinning should stop balancer migrations"
    );
    assert!(
        mean(&pinned, |o| o.preemptions as f64)
            > 3.0 * mean(&hpl, |o| o.preemptions as f64).max(1.0),
        "pinned ranks are still preempted by daemons"
    );
}
