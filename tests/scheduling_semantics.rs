//! Integration tests of the scheduling-class semantics across crates:
//! class priority, starvation of lower classes, chrt, and affinity.
//!
//! Cross-checked by the torture harness (DESIGN.md §9): every semantic
//! asserted here is also enforced online by `hpl_torture::InvariantOracle`
//! (class-order shielding, preempt-verdict consistency, wakeup-migration
//! legality, RR rotation, conservation) over 200 fuzzed scenarios
//! (seed 0x70a7, both event loops, 1–4 nodes) with zero violations.
//! That sweep found — and `tests/torture.rs` now locks the fix for — a
//! stale-`curr` race in `Node::schedule` these hand-written cases
//! never triggered.

use hpl::kernel::program::ScriptProgram;
use hpl::prelude::*;

fn hpc_node(seed: u64) -> Node {
    hpl::core::hpl_node_builder(Topology::power6_js22())
        .with_seed(seed)
        .build()
}

fn burn(name: &str, policy: Policy, ms: u64) -> TaskSpec {
    TaskSpec::new(
        name,
        policy,
        ScriptProgram::boxed(name, vec![Step::Compute(SimDuration::from_millis(ms))]),
    )
}

#[test]
fn cfs_task_starves_while_hpc_runs() {
    let mut node = hpc_node(1);
    // Fill every CPU with HPC tasks.
    let hpc: Vec<Pid> = (0..8)
        .map(|i| node.spawn(burn(&format!("hpc{i}"), Policy::Hpc, 50)))
        .collect();
    node.run_for(SimDuration::from_millis(1));
    let daemon = node.spawn(burn("daemon", Policy::Normal { nice: -20 }, 5));
    node.run_for(SimDuration::from_millis(20));
    // Even at nice -20, the CFS task has not run a nanosecond.
    assert_eq!(node.tasks.get(daemon).total_runtime, SimDuration::ZERO);
    assert_eq!(node.tasks.get(daemon).state, TaskState::Runnable);
    // Once HPC tasks finish, it runs.
    for pid in hpc {
        assert!(node.run_until_exit(pid, 2_000_000_000).is_complete());
    }
    assert!(node.run_until_exit(daemon, 2_000_000_000).is_complete());
    assert!(node.tasks.get(daemon).total_runtime > SimDuration::ZERO);
}

#[test]
fn rt_task_preempts_hpc_task() {
    let mut node = hpc_node(2);
    let hpc = node.spawn(burn("hpc", Policy::Hpc, 50).with_affinity(CpuMask::single(CpuId(0))));
    node.run_for(SimDuration::from_millis(1));
    assert_eq!(node.tasks.get(hpc).state, TaskState::Running);
    let rt =
        node.spawn(burn("migration", Policy::Fifo(99), 2).with_affinity(CpuMask::single(CpuId(0))));
    node.run_for(SimDuration::from_micros(200));
    assert_eq!(
        node.tasks.get(rt).state,
        TaskState::Running,
        "RT preempts HPC"
    );
    assert_eq!(node.tasks.get(hpc).state, TaskState::Runnable);
    assert!(node.run_until_exit(rt, 1_000_000_000).is_complete());
    assert!(node.run_until_exit(hpc, 1_000_000_000).is_complete());
}

#[test]
fn two_hpc_tasks_round_robin_on_one_cpu() {
    let mut node = hpc_node(3);
    let a = node.spawn(burn("a", Policy::Hpc, 250).with_affinity(CpuMask::single(CpuId(0))));
    let b = node.spawn(burn("b", Policy::Hpc, 250).with_affinity(CpuMask::single(CpuId(0))));
    // After 150 ms (one and a half RR slices) both have run.
    node.run_for(SimDuration::from_millis(150));
    assert!(node.tasks.get(a).total_runtime > SimDuration::from_millis(40));
    assert!(node.tasks.get(b).total_runtime > SimDuration::from_millis(40));
    assert!(node.run_until_exit(a, 4_000_000_000).is_complete());
    assert!(node.run_until_exit(b, 4_000_000_000).is_complete());
}

#[test]
fn chrt_wrapped_tree_lands_in_hpc_class() {
    let mut node = hpc_node(4);
    let payload = TaskSpec::new(
        "app",
        Policy::Hpc,
        ScriptProgram::boxed(
            "app",
            vec![
                Step::Fork(burn("child", Policy::Hpc, 5)),
                Step::WaitChildren,
            ],
        ),
    );
    let pid = node.spawn(chrt_spec("chrt", payload));
    assert!(node.run_until_exit(pid, 2_000_000_000).is_complete());
    assert_eq!(node.tasks.get(pid).policy, Policy::Hpc);
    // The forked child was born into the HPC class.
    let child = node
        .tasks
        .iter()
        .find(|t| t.name == "child")
        .expect("child exists");
    assert_eq!(child.policy, Policy::Hpc);
}

#[test]
fn hpl_fork_placement_spreads_one_rank_per_core_first() {
    let mut node = hpc_node(5);
    let pids: Vec<Pid> = (0..4)
        .map(|i| node.spawn(burn(&format!("r{i}"), Policy::Hpc, 30)))
        .collect();
    node.run_for(SimDuration::from_millis(1));
    let mut cores: Vec<u32> = pids
        .iter()
        .map(|&p| node.topo.core_of(node.tasks.get(p).cpu))
        .collect();
    cores.sort_unstable();
    assert_eq!(cores, vec![0, 1, 2, 3], "one rank per physical core");
    for p in pids {
        assert!(node.run_until_exit(p, 2_000_000_000).is_complete());
    }
}

#[test]
fn affinity_confines_and_migrates() {
    let mut node = hpc_node(6);
    let t = node.spawn(burn("pin", Policy::Normal { nice: 0 }, 30));
    node.run_for(SimDuration::from_millis(1));
    let target = CpuId((node.tasks.get(t).cpu.0 + 3) % 8);
    node.set_affinity(t, CpuMask::single(target));
    node.run_for(SimDuration::from_millis(2));
    assert_eq!(node.tasks.get(t).cpu, target);
    assert!(node.run_until_exit(t, 2_000_000_000).is_complete());
    assert_eq!(node.tasks.get(t).cpu, target, "never left the mask");
}

#[test]
fn hpl_performs_no_balancing_even_with_gross_imbalance() {
    let mut node = hpc_node(7);
    // Two CFS tasks crammed on cpu0 by affinity, then widened: with
    // BalanceMode::None nobody ever moves them apart.
    let a = node
        .spawn(burn("a", Policy::Normal { nice: 0 }, 40).with_affinity(CpuMask::single(CpuId(0))));
    let b = node
        .spawn(burn("b", Policy::Normal { nice: 0 }, 40).with_affinity(CpuMask::single(CpuId(0))));
    node.run_for(SimDuration::from_millis(1));
    node.set_affinity(a, CpuMask::first_n(8));
    node.set_affinity(b, CpuMask::first_n(8));
    let migrations_before = node.counters.total().sw(SwEvent::CpuMigrations);
    node.run_for(SimDuration::from_millis(30));
    let migrations_after = node.counters.total().sw(SwEvent::CpuMigrations);
    assert_eq!(
        migrations_before, migrations_after,
        "HPL kernel must not balance: the imbalance persists by design"
    );
    // Both still share cpu0 (serialised), seven CPUs idle.
    assert_eq!(node.tasks.get(a).cpu, CpuId(0));
    assert_eq!(node.tasks.get(b).cpu, CpuId(0));
}

#[test]
fn standard_kernel_does_balance_the_same_imbalance() {
    let mut node = NodeBuilder::new(Topology::power6_js22())
        .with_seed(8)
        .build();
    let a = node
        .spawn(burn("a", Policy::Normal { nice: 0 }, 40).with_affinity(CpuMask::single(CpuId(0))));
    let b = node
        .spawn(burn("b", Policy::Normal { nice: 0 }, 40).with_affinity(CpuMask::single(CpuId(0))));
    node.run_for(SimDuration::from_millis(1));
    node.set_affinity(a, CpuMask::first_n(8));
    node.set_affinity(b, CpuMask::first_n(8));
    node.run_for(SimDuration::from_millis(30));
    assert_ne!(
        node.tasks.get(a).cpu,
        node.tasks.get(b).cpu,
        "the standard balancer spreads them"
    );
}
