//! Regression locks from the torture harness.
//!
//! Each scenario below is a *minimized* failure artifact produced by
//! `torture`'s greedy shrinker from a fuzzing run that caught a real
//! kernel bug, committed here verbatim so the bug can never come back.
//!
//! The bug (fixed in `Node::schedule`): a task that blocked on CPU B,
//! was woken and wakeup-migrated to CPU A, and picked there, remained
//! CPU B's stale `curr`. CPU B's next reschedule saw it `Running`,
//! requeued it locally and re-picked it — one task running on two CPUs
//! at once, exiting twice, and waking its parent's `WaitChildren`
//! early. The invariant oracle flagged it as a conservation violation
//! (`Pick` of a task whose home CPU disagreed with the picking CPU).

use hpl::torture::{check_scenario, Scenario};

fn assert_clean(text: &str) {
    let sc = Scenario::from_text(text).expect("embedded scenario parses");
    let failures = check_scenario(&sc);
    assert!(
        failures.is_empty(),
        "minimized regression scenario violated invariants again:\n{}",
        failures
            .iter()
            .map(|f| format!("  [{}] {}", f.kind, f.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Shrunk from seed 0xf7df6c48df0d645b (200-scenario sweep, base seed
/// 0x70a7): two soup tasks on a 2-CPU box, FIFO + CFS, where a
/// barrier-wakeup migration raced the origin CPU's reschedule.
#[test]
fn regression_double_run_after_wakeup_migration_smp2() {
    assert_clean(
        "torture-scenario v1\n\
         seed 17861113707410318427\n\
         nodes 1\n\
         topo smp2\n\
         switched false\n\
         hpl true\n\
         tickless false\n\
         noise_pct 0\n\
         irq false\n\
         fault none\n\
         workload soup\n\
         task fifo:44 - s:93006 c:82961 n:1 b b b c:69312\n\
         task normal:5 - b b b c:57156 c:76346 sp:batch:5 sw:0:262211\n",
    );
}

/// Shrunk from seed 0xc07140fbda85a46b (same sweep): a larger soup on
/// the POWER6 topology mixing HPC, CFS and batch tasks with channel
/// sends and a `WaitChildren`, tripping the same stale-`curr` race via
/// a channel wakeup.
#[test]
fn regression_double_run_after_wakeup_migration_power6() {
    assert_clean(
        "torture-scenario v1\n\
         seed 13866936178097628267\n\
         nodes 1\n\
         topo power6\n\
         switched false\n\
         hpl true\n\
         tickless false\n\
         noise_pct 0\n\
         irq false\n\
         fault none\n\
         workload soup\n\
         task hpc - n:1 n:6 b b c:76371 f:897424 wc\n\
         task normal:0 5 n:3 n:5 n:6 sw:0:654910\n\
         task hpc 1 c:50142 s:92486 s:53583\n\
         task hpc 6 n:5 n:6 s:76509 s:91546 sw:1:99907\n\
         task hpc - s:55262 n:6 b b\n\
         task batch:0 - s:69330 b b c:68691 s:76554 sw:1:738847 sw:3:678900\n\
         task batch:2 - c:68930 b b c:68849 s:81929 sw:0:705189 sw:1:622982 sw:3:769473 w:4\n",
    );
}

/// A handful of fresh sampled scenarios stay clean under both event
/// loops — a cheap always-on slice of the full torture sweep.
#[test]
fn sampled_scenarios_hold_invariants() {
    for i in 0..4u64 {
        let sc = Scenario::sample(0x7047_0000 + i, i);
        let failures = check_scenario(&sc);
        assert!(
            failures.is_empty(),
            "sampled scenario {i} failed:\n{:?}",
            failures
        );
    }
}
