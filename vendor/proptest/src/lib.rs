//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the subset of the proptest API the workspace tests
//! use: `proptest!` with an optional `proptest_config` attribute,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range / tuple /
//! `Just` / `prop_map` / `prop_oneof!` strategies, `any::<T>()`,
//! `proptest::collection::vec`, and `proptest::option::of`.
//!
//! Differences from real proptest: generation is a plain seeded PRNG
//! (no bias toward edge cases) and failures are reported without
//! shrinking. Test case streams are deterministic per test name, so
//! failures reproduce exactly across runs.

// Shim crate: keep clippy focused on the real workspace code.
#![allow(clippy::all, unused)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Per-block configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test panics with this message.
    Fail(String),
    /// A `prop_assume!` filter rejected the inputs; another case is drawn.
    Reject,
}

/// Deterministic SplitMix64 generator seeding each test from its name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's fully qualified name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325_u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                assert!(span > 0, "empty range strategy");
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// A strategy that always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Types with a canonical full-domain strategy, for `any::<T>()`.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice between alternative strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
}

impl<T> Default for Union<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Union<T> {
    /// An empty union; populate with [`Union::or`].
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Add an alternative.
    pub fn or<S>(mut self, s: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        self.arms.push(Box::new(move |rng| s.gen_value(rng)));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! with no arms");
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        (self.arms[idx])(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OfStrategy<S> {
        inner: S,
    }

    /// `None` roughly a quarter of the time, else `Some` of the inner value.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy { inner }
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: {} == {} ({:?} vs {:?})",
                file!(),
                line!(),
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: {} ({:?} vs {:?})",
                file!(),
                line!(),
                format!($($fmt)+),
                __a,
                __b
            )));
        }
    }};
}

/// Reject the current case (draw another) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among the listed strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new()$(.or($s))+
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __done: u32 = 0;
            let mut __attempts: u32 = 0;
            while __done < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cfg.cases.saturating_mul(20).max(200),
                    "proptest: too many rejected cases in {}",
                    stringify!($name)
                );
                $(
                    let $arg = {
                        let __s = $strat;
                        $crate::Strategy::gen_value(&__s, &mut __rng)
                    };
                )+
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    ::core::result::Result::Ok(()) => __done += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest '{}' failed (case {}): {}",
                            stringify!($name),
                            __done,
                            __msg
                        )
                    }
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Ranges stay in bounds; tuples and maps compose.
        fn ranges_in_bounds(
            a in 3u64..17,
            b in 1u8..=255,
            c in -1e3f64..1e3,
            v in crate::collection::vec((0u32..5, crate::option::of(0u32..2)), 2..6),
            z in any::<u64>()
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b >= 1);
            prop_assert!((-1e3..1e3).contains(&c));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assume!(z != 1);
            prop_assert_eq!(z == 1, false, "assume filtered {}", z);
        }

        fn oneof_and_just(x in prop_oneof![Just(7u32), (10u32..20), (0u32..3).prop_map(|v| v + 100)]) {
            prop_assert!(x == 7 || (10..20).contains(&x) || (100..103).contains(&x));
        }
    }
}
