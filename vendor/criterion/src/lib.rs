//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides just enough of the criterion API for the workspace's
//! benches to compile and run: `black_box`, `Criterion::default()` /
//! `sample_size` / `bench_function`, `Bencher::iter`, and both forms of
//! `criterion_group!` plus `criterion_main!`.
//!
//! Timing is a single wall-clock measurement over `sample_size`
//! iterations — adequate for smoke-running `cargo bench`, not for
//! statistics. The serious perf numbers live in the dedicated
//! `eventloop` bench binary, which does not use this crate.

// Shim crate: keep clippy focused on the real workspace code.
#![allow(clippy::all, unused)]

use std::time::Instant;

/// Prevent the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Crude benchmark driver mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many iterations each routine runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run `f` once with a [`Bencher`] and print a one-line timing.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            nanos: 0,
        };
        f(&mut b);
        let per_iter = b.nanos / u128::from(b.iters.max(1));
        println!(
            "bench: {name:<55} {per_iter:>12} ns/iter ({} iters)",
            b.iters
        );
        self
    }
}

/// Runs the measured routine; handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    nanos: u128,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.nanos = start.elapsed().as_nanos();
    }
}

/// Group benchmark functions; supports the plain and `name =`/`config =`
/// forms of the real macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
