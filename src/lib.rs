//! # hpl — the HPL scheduler study, end to end
//!
//! A discrete-event reproduction of *"Designing OS for HPC Applications:
//! Scheduling"* (Gioiosa, McKee, Valero — IEEE CLUSTER 2010): the **HPL**
//! scheduling class for HPC tasks, the Linux scheduler it competes with,
//! the machine and noise models that make the comparison meaningful, and
//! the experiment harness that regenerates every table and figure of the
//! paper.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! ## Quick start
//!
//! ```
//! use hpl::prelude::*;
//!
//! // A node with the paper's machine, daemons, and the HPL scheduler.
//! let mut node = hpl_node_builder(Topology::power6_js22())
//!     .with_noise(NoiseProfile::standard(8))
//!     .with_seed(42)
//!     .build();
//! node.run_for(SimDuration::from_millis(400));
//!
//! // Launch a small MPI job in the HPC class and measure it.
//! let job = JobSpec::new(8, JobSpec::repeat(3, &[
//!     MpiOp::Compute { mean: SimDuration::from_millis(2) },
//!     MpiOp::Allreduce { bytes: 64 },
//! ]));
//! let mut perf = PerfSession::open(&node.counters, node.now());
//! let handle = launch(&mut node, &job, SchedMode::Hpc);
//! let exec = handle.run_to_completion(&mut node, 100_000_000);
//! perf.close(&node.counters, node.now());
//!
//! assert!(exec.as_secs_f64() > 0.006);
//! println!("{}", perf.report());
//! ```
//!
//! ## Multi-node quick start
//!
//! Clusters are described with [`Cluster::builder`](cluster::Cluster::builder):
//! node factory, fabric, co-sim driver and (optionally) a deterministic
//! [`FaultPlan`](cluster::FaultPlan), then `build()`. Jobs launch with
//! an explicit [`Placement`](cluster::Placement).
//!
//! ```
//! use hpl::prelude::*;
//!
//! let mut cluster = Cluster::builder()
//!     .nodes_with(2, |i| {
//!         hpl_node_builder(Topology::smp(2))
//!             .with_noise(NoiseProfile::standard(2))
//!             .with_seed(Rng::for_run(7, i as u64).next_u64())
//!             .build()
//!     })
//!     .fabric(Interconnect::flat(2, NetConfig::default()))
//!     .cosim(CosimConfig::serial())
//!     .faults(FaultPlan::none()) // or .with_loss(...)/.crash(...)/.restart(...)
//!     .build();
//! for i in 0..2 {
//!     cluster.node_mut(i).run_for(SimDuration::from_millis(50));
//! }
//!
//! let job = JobSpec::new(4, JobSpec::repeat(2, &[
//!     MpiOp::Compute { mean: SimDuration::from_micros(500) },
//!     MpiOp::Allreduce { bytes: 64 },
//! ])).with_nodes(2);
//! let handle = cluster.launch(&job, SchedMode::Hpc, Placement::All);
//! let exec = cluster.run_to_completion(&handle, 50_000_000);
//! assert!(exec.as_nanos() > 0);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] | event queue, deterministic RNG, statistics, ASCII plots |
//! | [`topology`] | sockets/cores/SMT, caches, scheduling domains |
//! | [`perf`] | software/hardware counters, `perf stat` sessions |
//! | [`kernel`] | the simulated node: scheduler core, CFS, RT, balancer, noise |
//! | [`core`] | **the paper's contribution**: the HPL scheduling class |
//! | [`mpi`] | simulated MPI runtime and the perf/chrt/mpiexec launcher |
//! | [`workloads`] | NAS benchmark models, noise microbenchmarks |
//! | [`cluster`] | multi-node layer: analytic noise-resonance projection **and** mechanistic lockstep co-simulation of kernel nodes over a LogGP interconnect, with deterministic fault injection (`FaultPlan`: message loss, link degradation, node crash/drain/restart) |
//! | [`coord`] | realizing fractional CPU shares inside a node: weighted kernel gang slicing and a user-space lease-arbiter runtime (`CoordRuntime`), both driving the same clock-derived slice schedule |
//! | [`batch`] | two-level scheduling: cluster batch queue, the allocation-policy zoo (FCFS, EASY and conservative backfilling, multi-queue with aging, fair share, oversubscribed, weighted DFRS), SWF production-trace ingestion (`SwfTrace`/`SwfMap`/`TraceTransform`), multi-job lifecycle engine (`BatchRun`) with walltime enforcement, checkpoint/restart, crash requeue and coordinated runs (`run_coordinated`) |
//! | [`bench`] | run harness, `RunConfig`/`RunTable` plumbing, the `repro` binary |
//! | [`torture`] | seeded scheduler fuzzing: random scenarios, online invariant oracle, differential event-loop checks, failure shrinking (`torture` binary) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hpl_batch as batch;
pub use hpl_bench as bench;
pub use hpl_cluster as cluster;
pub use hpl_coord as coord;
pub use hpl_core as core;
pub use hpl_kernel as kernel;
pub use hpl_mpi as mpi;
pub use hpl_perf as perf;
pub use hpl_sim as sim;
pub use hpl_topology as topology;
pub use hpl_torture as torture;
pub use hpl_workloads as workloads;

/// The names almost every user of this library needs.
pub mod prelude {
    pub use hpl_batch::{
        AllocPolicy, BatchConfig, BatchJob, BatchReport, BatchRun, BatchTrace, CheckpointSpec,
        ConservativeBackfill, Dfrs, DfrsDecision, EasyBackfill, FairShare, Fcfs, JobOutcome,
        MultiQueue, Oversubscribed, SwfMap, SwfTrace, TraceTransform, UserStats,
    };
    pub use hpl_bench::{run_many, run_once, NoiseKind, RunConfig, Scheduler};
    pub use hpl_cluster::{
        Cluster, ClusterBuilder, ClusterJobHandle, CosimConfig, DegradeWindow, DistError,
        EmpiricalDist, Fabric, FaultPlan, FlatFabric, Interconnect, JobCoordinator, LossSpec,
        NetConfig, NodeEvent, NodeFault, Placement, ResonanceModel, SwitchedFabric, Window,
    };
    pub use hpl_coord::{CoordBackend, CoordRuntime, CoordStats};
    pub use hpl_core::{chrt_spec, hpl_node_builder, HplClass};
    pub use hpl_kernel::noise::{NoiseProfile, NOISE_TAG};
    pub use hpl_kernel::observe::{validate_chrome_trace, ChromeTraceStats};
    pub use hpl_kernel::trace::{TraceBuffer, TraceEvent};
    pub use hpl_kernel::{
        BalanceKind, BalanceMode, ChromeTraceSink, KernelConfig, MetricsSink, MigrateReason, Node,
        NodeBuilder, ObserverId, Pid, Policy, PreemptVerdict, RingSink, RunOutcome, SchedEvent,
        SchedObserver, Step, TaskSpec, TaskState, TickOutcome,
    };
    pub use hpl_mpi::{launch, JobSpec, MpiConfig, MpiOp, SchedMode};
    pub use hpl_perf::{
        CounterSet, HwEvent, Log2Hist, PerCpuCounters, PerfSession, RunRecord, RunTable,
        SchedMetrics, SwEvent,
    };
    pub use hpl_sim::{Rng, SimDuration, SimTime};
    pub use hpl_topology::{CpuId, CpuMask, Topology};
    pub use hpl_torture::{check_scenario, InvariantOracle, Scenario, Violation};
    pub use hpl_workloads::{nas_job, NasBenchmark, NasClass};
}
