//! Incast on the switched fabric: N simultaneous senders to one
//! receiver must serialise on the receiver's downlink, and the queueing
//! they suffer must grow linearly with arrival order.

use hpl_cluster::{Interconnect, NetConfig};
use hpl_perf::Log2Hist;
use hpl_sim::time::{SimDuration, SimTime};

fn cfg() -> NetConfig {
    NetConfig {
        alpha: SimDuration::from_micros(5),
        beta_ns_per_byte: 1.0,
    }
}

/// The k-th of N simultaneous same-size messages into one receiver
/// waits out exactly the k−1 serialisations ahead of it, and deliveries
/// land exactly one serialisation apart.
#[test]
fn incast_serialises_on_the_downlink() {
    const N: usize = 8;
    const BYTES: u64 = 4_096;
    let ser = cfg().serialise(BYTES);
    assert_eq!(ser, SimDuration::from_nanos(BYTES)); // 1 ns/B

    let mut net = Interconnect::switched(N + 1, cfg());
    let at = SimTime::from_nanos(1_000);
    let mut deliveries = Vec::new();
    for k in 0..N {
        // Senders are nodes 1..=N, receiver is node 0: distinct uplinks,
        // one shared downlink.
        let (deliver, queued) = net.transfer(at, k + 1, 0, BYTES);
        assert_eq!(
            queued,
            SimDuration::from_nanos(ser.as_nanos() * k as u64),
            "message {k} must wait out exactly {k} serialisations"
        );
        deliveries.push(deliver);
    }
    for pair in deliveries.windows(2) {
        assert_eq!(
            pair[1].since(pair[0]),
            ser,
            "deliveries must be spaced by one serialisation"
        );
    }
    // End-to-end (store-and-forward): the last message serialises once
    // on its own uplink, then waits out the other N−1 downlink slots
    // before its own — send + (N+1)·ser + alpha in total.
    assert_eq!(
        *deliveries.last().unwrap(),
        at + SimDuration::from_nanos(ser.as_nanos() * (N as u64 + 1)) + cfg().alpha
    );
}

/// The queue-depth histogram of an incast shows the linear build-up:
/// strictly increasing queueing means samples spread across multiple
/// log2 buckets with a max of (N−1)·serialise, while the same traffic
/// on a crossbar (no shared downlink) queues not at all.
#[test]
fn incast_queue_histogram_reflects_buildup() {
    const N: usize = 16;
    const BYTES: u64 = 1_024;
    let ser = cfg().serialise(BYTES);
    let at = SimTime::from_nanos(0);

    let mut switched = Interconnect::switched(N + 1, cfg());
    let mut flat = Interconnect::flat(N + 1, cfg());
    let mut sw_hist = Log2Hist::new();
    let mut flat_hist = Log2Hist::new();
    for k in 0..N {
        let (_, q_sw) = switched.transfer(at, k + 1, 0, BYTES);
        let (_, q_flat) = flat.transfer(at, k + 1, 0, BYTES);
        sw_hist.record(q_sw.as_nanos());
        flat_hist.record(q_flat.as_nanos());
    }

    assert_eq!(sw_hist.count(), N as u64);
    // Queueing peaked at the full line of N-1 predecessors...
    assert_eq!(sw_hist.max(), Some(ser.as_nanos() * (N as u64 - 1)));
    // ...starting from zero (the head-of-line message).
    assert_eq!(sw_hist.min(), Some(0));
    // Linear build-up spreads the samples over several power-of-two
    // buckets: with N=16 and 1 KiB messages the queue delays are
    // 0, 1 Ki, 2 Ki, ..., 15 Ki ns -> buckets {0, 11..=14} populated.
    let populated = sw_hist.buckets().iter().filter(|&&c| c > 0).count();
    assert!(
        populated >= 4,
        "expected the linear ramp to span >= 4 buckets, got {populated}"
    );
    // Mean of 0..N-1 serialisations = (N-1)/2 serialisations.
    let mean = sw_hist.mean().unwrap();
    let expect = ser.as_nanos() as f64 * (N as f64 - 1.0) / 2.0;
    assert!((mean - expect).abs() < 1e-9, "mean {mean} != {expect}");

    // The crossbar control: distinct egress links, zero queueing, all
    // N samples in the zero bucket.
    assert_eq!(flat_hist.count(), N as u64);
    assert_eq!(flat_hist.max(), Some(0));
    assert_eq!(flat_hist.buckets()[0], N as u64);
}

/// Interleaved incast after the line drains: once the downlink goes
/// idle, a late sender pays no queueing — the busy state is per-link
/// time, not a global penalty.
#[test]
fn downlink_drains_between_bursts() {
    const BYTES: u64 = 1_000;
    let ser = cfg().serialise(BYTES);
    let mut net = Interconnect::switched(4, cfg());
    let t0 = SimTime::from_nanos(0);
    let (_, q1) = net.transfer(t0, 1, 0, BYTES);
    let (_, q2) = net.transfer(t0, 2, 0, BYTES);
    assert_eq!(q1, SimDuration::ZERO);
    assert_eq!(q2, ser);
    // After both serialisations have drained, the downlink is idle.
    let t1 = t0 + SimDuration::from_nanos(2 * ser.as_nanos());
    let (_, q3) = net.transfer(t1, 3, 0, BYTES);
    assert_eq!(q3, SimDuration::ZERO);
}
