//! End-to-end co-simulation tests: multi-node jobs complete, stay
//! deterministic, and degrade gracefully.

use hpl_cluster::{Cluster, Interconnect, NetConfig, Placement};
use hpl_core::{hpl_node_builder, HplClass};
use hpl_kernel::{KernelConfig, NodeBuilder};
use hpl_mpi::{JobSpec, MpiOp, SchedMode};
use hpl_sim::time::SimDuration;
use hpl_topology::Topology;

fn job(nodes: u32, ranks_per_node: u32, iters: u32) -> JobSpec {
    JobSpec::new(
        nodes * ranks_per_node,
        JobSpec::repeat(
            iters,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(2),
                },
                MpiOp::Allreduce { bytes: 64 },
            ],
        ),
    )
    .with_nodes(nodes)
}

fn build_cluster(nodes: usize, hpc: bool, fast: bool, seed: u64) -> Cluster {
    Cluster::builder()
        .nodes_with(nodes, move |i| {
            let mut kc = if hpc {
                KernelConfig::hpl()
            } else {
                KernelConfig::default()
            };
            kc.fast_event_loop = fast;
            let mut b = NodeBuilder::new(Topology::power6_js22())
                .with_config(kc)
                .with_seed(seed ^ ((i as u64) << 32));
            if hpc {
                b = b.with_hpc_class(Box::new(HplClass::new()));
            }
            b.build()
        })
        .fabric(Interconnect::flat(nodes, NetConfig::default()))
        .build()
}

fn run_once(nodes: u32, mode: SchedMode, hpc: bool, fast: bool, seed: u64) -> (u64, u64) {
    let mut cluster = build_cluster(nodes as usize, hpc, fast, seed);
    let handle = cluster.launch(&job(nodes, 8, 4), mode, Placement::All);
    let exec = cluster.run_to_completion(&handle, 200_000_000);
    (exec.as_nanos(), cluster.state_fingerprint())
}

#[test]
fn two_node_hpc_allreduce_completes() {
    let (exec, _) = run_once(2, SchedMode::Hpc, true, true, 42);
    // 4 iterations of ~2 ms compute plus launch/teardown overheads.
    assert!(exec > 8_000_000, "exec {exec}ns too short");
    assert!(exec < 200_000_000, "exec {exec}ns absurdly long");
}

#[test]
fn two_node_cfs_allreduce_completes() {
    let (exec, _) = run_once(2, SchedMode::Cfs, false, true, 42);
    assert!(exec > 8_000_000, "exec {exec}ns too short");
}

#[test]
fn four_node_job_completes_on_switched_fabric() {
    let nodes = 4;
    let mut cluster = Cluster::builder()
        .nodes_with(nodes, |i| {
            hpl_node_builder(Topology::power6_js22())
                .with_seed(7 ^ ((i as u64) << 32))
                .build()
        })
        .fabric(Interconnect::switched(nodes, NetConfig::default()))
        .build();
    let handle = cluster.launch(&job(nodes as u32, 4, 3), SchedMode::Hpc, Placement::All);
    let exec = cluster.run_to_completion(&handle, 200_000_000);
    assert!(exec.as_nanos() > 6_000_000);
    assert!(
        cluster.net().messages() > 0,
        "inter-node rounds must use the fabric"
    );
}

#[test]
fn same_seed_same_run_across_event_loops() {
    let fast = run_once(2, SchedMode::Hpc, true, true, 1234);
    let fast2 = run_once(2, SchedMode::Hpc, true, true, 1234);
    let reference = run_once(2, SchedMode::Hpc, true, false, 1234);
    assert_eq!(fast, fast2, "fast loop not reproducible");
    assert_eq!(fast, reference, "fast and reference loops diverge");
}

#[test]
fn single_node_cluster_matches_plain_launch() {
    // nodes=1 keeps the historic shared-memory path: no fabric traffic.
    let (exec, _) = run_once(1, SchedMode::Hpc, true, true, 9);
    assert!(exec > 8_000_000);
    let cluster = build_cluster(1, true, true, 9);
    assert_eq!(cluster.net().messages(), 0);
}

#[test]
fn two_overlapping_jobs_complete_per_handle() {
    // Regression for the single-outstanding-job assumption: a short job
    // on node 0 and a long job on node 1, in flight at the same time.
    // Completion must be per-handle — the short job reporting done must
    // not depend on (or imply) the long one.
    let mut cluster = build_cluster(2, true, true, 77);
    let short = job(1, 4, 2).with_id_base(10_000);
    let long = job(1, 4, 12).with_id_base(20_000);
    let h_short = cluster.launch(&short, SchedMode::Hpc, Placement::on(&[0]));
    let h_long = cluster.launch(&long, SchedMode::Hpc, Placement::on(&[1]));
    assert_eq!(cluster.active_jobs_on(0), 1);
    assert_eq!(cluster.active_jobs_on(1), 1);

    let exec_short = cluster.run_to_completion(&h_short, 200_000_000);
    assert!(cluster.job_done(&h_short));
    assert!(
        !cluster.job_done(&h_long),
        "short-job completion must not falsely mark the long job done"
    );
    assert_eq!(cluster.active_jobs_on(0), 0);
    assert_eq!(cluster.active_jobs_on(1), 1);

    let exec_long = cluster.run_to_completion(&h_long, 200_000_000);
    assert!(cluster.job_done(&h_long));
    assert!(
        exec_long > exec_short,
        "12-iteration job ({exec_long}) should outlast the 2-iteration one ({exec_short})"
    );
    assert_eq!(cluster.active_jobs_on(1), 0);
}

#[test]
fn two_concurrent_multi_node_jobs_share_the_cluster() {
    // Two 2-node jobs co-resident on the same two nodes (disjoint id
    // ranges): cross-node traffic from both must route correctly and
    // each handle must complete independently.
    let mut cluster = build_cluster(2, true, true, 99);
    let a = job(2, 4, 3).with_id_base(10_000);
    let b = job(2, 4, 3).with_id_base(20_000);
    let ha = cluster.launch(&a, SchedMode::Hpc, Placement::on(&[0, 1]));
    let hb = cluster.launch(&b, SchedMode::Hpc, Placement::on(&[0, 1]));
    assert_eq!(cluster.active_jobs_on(0), 2);
    let exec_a = cluster.run_to_completion(&ha, 400_000_000);
    let exec_b = cluster.run_to_completion(&hb, 400_000_000);
    assert!(exec_a.as_nanos() > 6_000_000);
    assert!(exec_b.as_nanos() > 6_000_000);
    assert!(cluster.job_done(&ha) && cluster.job_done(&hb));
    assert!(cluster.net().messages() > 0);
}

#[test]
#[should_panic(expected = "disjoint id ranges")]
fn overlapping_id_ranges_on_shared_node_rejected() {
    let mut cluster = build_cluster(2, true, true, 5);
    let a = job(1, 4, 2).with_id_base(10_000);
    let b = job(1, 4, 2).with_id_base(10_004);
    cluster.launch(&a, SchedMode::Hpc, Placement::on(&[0]));
    cluster.launch(&b, SchedMode::Hpc, Placement::on(&[0]));
}
