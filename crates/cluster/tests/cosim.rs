//! End-to-end co-simulation tests: multi-node jobs complete, stay
//! deterministic, and degrade gracefully.

use hpl_cluster::{Cluster, Interconnect, NetConfig};
use hpl_core::{hpl_node_builder, HplClass};
use hpl_kernel::{KernelConfig, NodeBuilder};
use hpl_mpi::{JobSpec, MpiOp, SchedMode};
use hpl_sim::time::SimDuration;
use hpl_topology::Topology;

fn job(nodes: u32, ranks_per_node: u32, iters: u32) -> JobSpec {
    JobSpec::new(
        nodes * ranks_per_node,
        JobSpec::repeat(
            iters,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(2),
                },
                MpiOp::Allreduce { bytes: 64 },
            ],
        ),
    )
    .with_nodes(nodes)
}

fn build_cluster(nodes: usize, hpc: bool, fast: bool, seed: u64) -> Cluster {
    let built = (0..nodes)
        .map(|i| {
            let mut kc = if hpc {
                KernelConfig::hpl()
            } else {
                KernelConfig::default()
            };
            kc.fast_event_loop = fast;
            let mut b = NodeBuilder::new(Topology::power6_js22())
                .with_config(kc)
                .with_seed(seed ^ ((i as u64) << 32));
            if hpc {
                b = b.with_hpc_class(Box::new(HplClass::new()));
            }
            b.build()
        })
        .collect();
    Cluster::new(built, Interconnect::flat(nodes, NetConfig::default()))
}

fn run_once(nodes: u32, mode: SchedMode, hpc: bool, fast: bool, seed: u64) -> (u64, u64) {
    let mut cluster = build_cluster(nodes as usize, hpc, fast, seed);
    let handle = cluster.launch_job(&job(nodes, 8, 4), mode);
    let exec = cluster.run_to_completion(&handle, 200_000_000);
    (exec.as_nanos(), cluster.state_fingerprint())
}

#[test]
fn two_node_hpc_allreduce_completes() {
    let (exec, _) = run_once(2, SchedMode::Hpc, true, true, 42);
    // 4 iterations of ~2 ms compute plus launch/teardown overheads.
    assert!(exec > 8_000_000, "exec {exec}ns too short");
    assert!(exec < 200_000_000, "exec {exec}ns absurdly long");
}

#[test]
fn two_node_cfs_allreduce_completes() {
    let (exec, _) = run_once(2, SchedMode::Cfs, false, true, 42);
    assert!(exec > 8_000_000, "exec {exec}ns too short");
}

#[test]
fn four_node_job_completes_on_switched_fabric() {
    let nodes = 4;
    let built = (0..nodes)
        .map(|i| {
            hpl_node_builder(Topology::power6_js22())
                .with_seed(7 ^ ((i as u64) << 32))
                .build()
        })
        .collect();
    let mut cluster = Cluster::new(
        built,
        Interconnect::switched(nodes, NetConfig::default()),
    );
    let handle = cluster.launch_job(&job(nodes as u32, 4, 3), SchedMode::Hpc);
    let exec = cluster.run_to_completion(&handle, 200_000_000);
    assert!(exec.as_nanos() > 6_000_000);
    assert!(cluster.net().messages() > 0, "inter-node rounds must use the fabric");
}

#[test]
fn same_seed_same_run_across_event_loops() {
    let fast = run_once(2, SchedMode::Hpc, true, true, 1234);
    let fast2 = run_once(2, SchedMode::Hpc, true, true, 1234);
    let reference = run_once(2, SchedMode::Hpc, true, false, 1234);
    assert_eq!(fast, fast2, "fast loop not reproducible");
    assert_eq!(fast, reference, "fast and reference loops diverge");
}

#[test]
fn single_node_cluster_matches_plain_launch() {
    // nodes=1 keeps the historic shared-memory path: no fabric traffic.
    let (exec, _) = run_once(1, SchedMode::Hpc, true, true, 9);
    assert!(exec > 8_000_000);
    let cluster = build_cluster(1, true, true, 9);
    assert_eq!(cluster.net().messages(), 0);
}
