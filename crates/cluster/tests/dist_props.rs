//! Property tests for [`EmpiricalDist`] construction and invariants.

use hpl_cluster::{DistError, EmpiricalDist};
use proptest::prelude::*;

proptest! {
    /// Any sample vector containing a non-finite value is rejected with
    /// `DistError::NonFinite`, no matter where the poison sits.
    #[test]
    fn try_new_rejects_non_finite(
        xs in proptest::collection::vec(0.001f64..1e6, 0..50),
        pos in 0usize..50,
        kind in 0u8..3
    ) {
        let poison = match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        let mut xs = xs;
        let pos = pos.min(xs.len());
        xs.insert(pos, poison);
        prop_assert_eq!(EmpiricalDist::try_new(xs).unwrap_err(), DistError::NonFinite);
    }

    /// Finite samples always construct, and the resulting distribution
    /// is internally consistent: min <= mean <= max, quantiles are
    /// monotone in q and bounded by the extremes.
    #[test]
    fn try_new_accepts_finite_and_orders(
        xs in proptest::collection::vec(-1e9f64..1e9, 1..80),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0
    ) {
        let d = EmpiricalDist::try_new(xs.clone()).expect("finite samples");
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(d.min(), lo);
        prop_assert_eq!(d.max(), hi);
        prop_assert!(d.mean() >= lo - 1e-9 && d.mean() <= hi + 1e-9);
        let (qa, qb) = (q1.min(q2), q1.max(q2));
        prop_assert!(d.quantile(qa) <= d.quantile(qb) + 1e-12);
        prop_assert!(d.quantile(0.0) == lo && d.quantile(1.0) == hi);
    }
}

/// The error paths are exact: empty input is `Empty` (checked before
/// the finiteness scan), and the `Display` messages are stable.
#[test]
fn try_new_error_paths() {
    assert_eq!(
        EmpiricalDist::try_new(vec![]).unwrap_err(),
        DistError::Empty
    );
    // Empty wins even though there is nothing non-finite to find.
    assert_eq!(
        EmpiricalDist::try_new(Vec::new()).unwrap_err().to_string(),
        "empirical distribution needs samples"
    );
    assert_eq!(
        EmpiricalDist::try_new(vec![f64::NAN])
            .unwrap_err()
            .to_string(),
        "non-finite sample in empirical distribution"
    );
    // A lone zero or negative sample is legal — only NaN/inf are not.
    assert!(EmpiricalDist::try_new(vec![0.0]).is_ok());
    assert!(EmpiricalDist::try_new(vec![-1.0]).is_ok());
}
