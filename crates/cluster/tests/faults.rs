//! Cluster-level fault injection: crashes fail their jobs and release
//! occupancy, drains fence placement, restarts heal the node, and
//! faulty runs stay bit-identical across host execution policies.

use hpl_cluster::{Cluster, CosimConfig, FaultPlan, Interconnect, NetConfig, Placement};
use hpl_core::HplClass;
use hpl_kernel::{KernelConfig, NodeBuilder, RunOutcome, TaskState};
use hpl_mpi::{JobSpec, MpiOp, SchedMode};
use hpl_sim::time::{SimDuration, SimTime};
use hpl_topology::Topology;

fn ms(v: u64) -> SimTime {
    SimTime::from_nanos(v * 1_000_000)
}

fn job(nodes: u32, ranks_per_node: u32, iters: u32) -> JobSpec {
    JobSpec::new(
        nodes * ranks_per_node,
        JobSpec::repeat(
            iters,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(2),
                },
                MpiOp::Allreduce { bytes: 64 },
            ],
        ),
    )
    .with_nodes(nodes)
}

fn build_cluster(nodes: usize, seed: u64, faults: FaultPlan, cosim: CosimConfig) -> Cluster {
    Cluster::builder()
        .nodes_with(nodes, move |i| {
            NodeBuilder::new(Topology::smp(2))
                .with_config(KernelConfig::hpl())
                .with_seed(seed ^ ((i as u64) << 32))
                .with_hpc_class(Box::new(HplClass::new()))
                .build()
        })
        .fabric(Interconnect::flat(nodes, NetConfig::default()))
        .cosim(cosim)
        .faults(faults)
        .build()
}

#[test]
fn crash_fails_the_job_frees_occupancy_and_freezes_the_node() {
    let plan = FaultPlan::default().with_seed(3).crash(1, ms(10));
    let mut cluster = build_cluster(2, 42, plan, CosimConfig::serial());
    let handle = cluster.launch(&job(2, 2, 8), SchedMode::Hpc, Placement::All);

    let outcome = cluster.try_run_to_completion(&handle, 200_000_000);
    assert_eq!(
        outcome,
        Err(RunOutcome::Deadlock),
        "a half-dead job can never finish"
    );
    assert!(cluster.job_failed(&handle));
    assert!(!cluster.job_done(&handle));
    assert_eq!(cluster.crashes(), 1);
    assert!(cluster.node_down(1));
    assert!(!cluster.node_available(1));
    assert!(cluster.node_available(0));
    // Occupancy is released on both nodes the moment the job fails.
    assert_eq!(cluster.active_jobs_on(0), 0);
    assert_eq!(cluster.active_jobs_on(1), 0);
    // Node 0 alone survived the crash.
    assert_eq!(cluster.job_survivors(&handle), vec![0]);
    // The surviving rank tree was reaped, not left spinning.
    assert_eq!(
        cluster.node(0).tasks.get(handle.perf_pids[0]).state,
        TaskState::Dead
    );

    // The down node's clock is frozen: stepping plenty more windows
    // (the survivor's periodic ticks keep its queue alive forever)
    // never advances it past the crash boundary.
    let frozen = cluster.node(1).now();
    for _ in 0..1_000 {
        if !cluster.step_window() {
            break;
        }
    }
    assert_eq!(cluster.node(1).now(), frozen);
    assert!(frozen < ms(25), "crash at 10 ms froze the clock near there");
    assert!(cluster.node(0).now() > frozen, "the survivor kept running");
}

#[test]
fn drain_fences_a_node_and_restart_lifts_it() {
    let plan = FaultPlan::default()
        .with_seed(3)
        .drain(1, ms(1))
        .restart(1, ms(400));
    let mut cluster = build_cluster(2, 42, plan, CosimConfig::serial());

    // A job on node 0 alone runs past the drain boundary, applying it.
    let h0 = cluster.launch(&job(1, 2, 8), SchedMode::Hpc, Placement::on(&[0]));
    cluster.run_to_completion(&h0, 200_000_000);
    assert!(cluster.node_drained(1));
    assert!(!cluster.node_down(1), "drain is not a crash");
    assert!(!cluster.node_available(1), "drained nodes take no new work");

    // Keep stepping: the restart at 400 ms lifts the drain even though
    // the cluster is otherwise idle.
    let mut budget = 1_000_000u32;
    while cluster.node_drained(1) && cluster.step_window() {
        budget -= 1;
        assert!(budget > 0, "restart should lift the drain within budget");
    }
    assert!(!cluster.node_drained(1));
    assert!(cluster.node_available(1));

    // And the healed node runs a fresh job to completion.
    let spec = job(1, 2, 4).with_id_base(20_000);
    let h1 = cluster.launch(&spec, SchedMode::Hpc, Placement::on(&[1]));
    let exec = cluster.run_to_completion(&h1, 200_000_000);
    assert!(exec.as_nanos() > 6_000_000);
}

#[test]
fn restart_heals_a_crashed_node_for_new_work() {
    let plan = FaultPlan::default()
        .with_seed(3)
        .crash(1, ms(10))
        .restart(1, ms(30));
    let mut cluster = build_cluster(2, 42, plan, CosimConfig::serial());
    let doomed = cluster.launch(&job(2, 2, 8), SchedMode::Hpc, Placement::All);
    assert!(cluster.try_run_to_completion(&doomed, 200_000_000).is_err());

    // Step until the restart brings node 1 back.
    let mut budget = 1_000_000u32;
    while cluster.node_down(1) && cluster.step_window() {
        budget -= 1;
        assert!(budget > 0, "restart should revive the node within budget");
    }
    assert!(!cluster.node_down(1));
    assert!(cluster.node_available(1));

    // The reborn node accepts and completes a new job; the old handle
    // stays failed forever (its pids belong to a dead incarnation).
    let spec = job(1, 2, 4).with_id_base(20_000);
    let h = cluster.launch(&spec, SchedMode::Hpc, Placement::on(&[1]));
    let exec = cluster.run_to_completion(&h, 200_000_000);
    assert!(exec.as_nanos() > 6_000_000);
    assert!(cluster.job_failed(&doomed));
    assert!(!cluster.job_done(&doomed));
}

#[test]
fn message_loss_delays_but_does_not_break_a_job() {
    // Heavy loss with retransmission: the job still completes, strictly
    // later than the fault-free run, and reproducibly so.
    let lossy_plan = || {
        FaultPlan::default()
            .with_seed(11)
            .with_loss(200_000, SimDuration::from_micros(500), 10)
    };
    let run = |plan: FaultPlan| {
        let mut cluster = build_cluster(2, 42, plan, CosimConfig::serial());
        let handle = cluster.launch(&job(2, 2, 6), SchedMode::Hpc, Placement::All);
        let exec = cluster.run_to_completion(&handle, 400_000_000);
        (exec.as_nanos(), cluster.state_fingerprint())
    };
    let clean = run(FaultPlan::none());
    let lossy_a = run(lossy_plan());
    let lossy_b = run(lossy_plan());
    assert_eq!(
        lossy_a, lossy_b,
        "loss must be a pure function of the plan seed"
    );
    assert!(
        lossy_a.0 > clean.0,
        "20% loss with 500 us RTO must cost time: {} vs {}",
        lossy_a.0,
        clean.0
    );
}

#[test]
fn faulty_run_is_bit_identical_across_serial_and_pooled_stepping() {
    // The full fault menu at once — loss + retransmit, a degrade
    // window, and a crash/restart of a bystander node — must not open
    // any daylight between the serial and pooled window loops.
    let plan = || {
        FaultPlan::default()
            .with_seed(7)
            .with_loss(100_000, SimDuration::from_micros(500), 10)
            .degrade(ms(5), ms(15), 4)
            .crash(2, ms(8))
            .restart(2, ms(20))
    };
    let run = |cosim: CosimConfig| {
        let mut cluster = build_cluster(3, 42, plan(), cosim);
        let handle = cluster.launch(&job(2, 2, 6), SchedMode::Hpc, Placement::on(&[0, 1]));
        let exec = cluster.run_to_completion(&handle, 400_000_000);
        // Step until the bystander's restart lands, so the fingerprint
        // covers the healed cluster too (queues never fully drain —
        // periodic ticks — so bound the wait).
        let mut budget = 1_000_000u32;
        while cluster.node_down(2) && cluster.step_window() {
            budget -= 1;
            assert!(budget > 0, "bystander restart should land within budget");
        }
        (
            exec.as_nanos(),
            cluster.crashes(),
            cluster.state_fingerprint(),
        )
    };
    let serial = run(CosimConfig::serial());
    let serial2 = run(CosimConfig::serial());
    let pooled = run(CosimConfig::parallel().with_threads(2).with_min_active(2));
    assert_eq!(serial, serial2, "serial faulty run not reproducible");
    assert_eq!(serial, pooled, "pooled faulty run diverges from serial");
    assert_eq!(serial.1, 1, "exactly the planned crash happened");
}
