//! Lockstep co-simulation of kernel nodes over an interconnect.
//!
//! [`Cluster`] owns N independent kernel [`Node`]s plus one
//! [`Interconnect`] and advances them in conservative virtual-time
//! lockstep. Each iteration ("window") it finds the cluster-wide next
//! event time `t`, runs every node up to — but excluding —
//! `t + lookahead` (the interconnect's minimum wire latency), then
//! drains the cross-node messages captured during the window, costs them
//! through the interconnect, and posts the deliveries into the
//! destination nodes' event queues. The lookahead rule makes this safe:
//! a message sent at time `s >= t` cannot be delivered before
//! `s + alpha_min >= t + lookahead`, i.e. never *inside* the window that
//! produced it, so no node ever has to roll back.
//!
//! Determinism: windows are a pure function of node state, messages are
//! routed in (source node, capture order) — a deterministic order — and
//! the interconnect is itself deterministic, so a cluster run is exactly
//! as replayable as a single-node run. The same seed produces the same
//! fingerprint on the fast and reference event loops.
//!
//! The cluster supports **concurrent jobs**: each [`Cluster::launch`]
//! places a job on a subset of nodes ([`Placement`]), jobs sharing a
//! node must reserve disjoint channel-id ranges ([`JobSpec::id_range`]),
//! and completion is tracked per [`ClusterJobHandle`] so a batch driver
//! (see `hpl-batch`) can overlap jobs and harvest them independently.
//!
//! Clusters are constructed through [`ClusterBuilder`]: nodes, fabric,
//! host-side execution policy and the [`FaultPlan`] are all fixed at
//! build time, so a run's configuration is part of its identity. Node
//! crash/drain/restart events from the plan are applied at window
//! boundaries of the lockstep loop (see [`Cluster::step_window`]): a
//! crashed node freezes (its pending deliveries drop and it no longer
//! contributes to the cluster-wide next event time), any job with a live
//! launcher tree on it is marked failed, and a later restart rebuilds
//! the node from the builder's factory at the cluster's current time —
//! new launches then re-register their channels on the fresh kernel.

use crate::fault::{FaultPlan, NodeFault};
use crate::net::{Interconnect, LinkFaults, NetConfig};
use crate::pool::WorkerPool;
use crate::window::Window;
use hpl_kernel::observe::ChromeTraceSink;
use hpl_kernel::{NetMsg, Node, ObserverId, Pid, RunOutcome, TaskState};
use hpl_mpi::{find_mpiexec, spawn_job_tree_with, JobSpec, RankWrap, SchedMode};
use hpl_sim::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// Host-side execution policy of the lockstep driver.
///
/// Within a conservative window node steps are independent, so the
/// driver may fan the active nodes out over a persistent host thread
/// pool; the observable result is **byte-identical** to the serial path
/// (same fingerprints, traces, metrics and reports) because all
/// cross-node effects are merged serially in fixed `(node, capture)`
/// order after the window — see [`Cluster::step_window`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CosimConfig {
    /// Step windows on a worker pool instead of in a serial loop.
    pub parallel: bool,
    /// Stepping threads to use when `parallel` (including the calling
    /// thread). `0` = the host's available parallelism.
    pub threads: usize,
    /// Minimum number of *active* nodes (nodes with an event inside the
    /// window) before a window is worth fanning out; sparser windows run
    /// serially even when `parallel` is set. Windows dense enough to
    /// matter are exactly the ones that amortise the round-trip.
    pub parallel_min_active: usize,
}

impl Default for CosimConfig {
    fn default() -> Self {
        CosimConfig {
            parallel: false,
            threads: 0,
            parallel_min_active: 8,
        }
    }
}

impl CosimConfig {
    /// Serial lockstep (the default).
    pub fn serial() -> Self {
        CosimConfig::default()
    }

    /// Parallel lockstep on the host's available cores.
    pub fn parallel() -> Self {
        CosimConfig {
            parallel: true,
            ..CosimConfig::default()
        }
    }

    /// Override the stepping-thread count (including the caller).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override the dense-window threshold.
    pub fn with_min_active(mut self, min_active: usize) -> Self {
        self.parallel_min_active = min_active;
        self
    }

    /// Stepping threads a cluster of `nodes` would actually use: the
    /// explicit count, else host parallelism, never more than the node
    /// count and at least one.
    pub fn effective_threads(&self, nodes: usize) -> usize {
        let t = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        t.clamp(1, nodes.max(1))
    }
}

/// Handle to a job running across (a subset of) the cluster: one
/// launcher tree per job node.
#[derive(Debug, Clone)]
pub struct ClusterJobHandle {
    /// Index of this job in the cluster's launch order (stable; jobs are
    /// never removed from the routing table).
    pub job_id: usize,
    /// Cluster node hosting each job-relative node: `placement[j]` is
    /// the cluster index of job node `j`.
    pub placement: Vec<usize>,
    /// Root (`perf`) pid on each job node, index = **job-relative**
    /// node (cluster node `placement[j]`).
    pub perf_pids: Vec<Pid>,
    /// Per-job-node launch times (nodes need not share a clock).
    pub launched_at: Vec<SimTime>,
}

/// A coordination runtime interposed between a batch engine and the
/// cluster: it owns how jobs are launched (so it can shim each rank's
/// program on the way in) and how fractional CPU shares handed down by
/// a policy like DFRS are *realized* on the nodes — by weighted kernel
/// slicing, a user-space lease arbiter, or anything else. Batch
/// engines treat the trait as opaque: with no coordinator installed
/// they call [`Cluster::launch`] directly and shares remain the
/// advisory annotations they were. `hpl-coord` provides the reference
/// implementations.
pub trait JobCoordinator {
    /// Launch `job`, standing in for [`Cluster::launch`]. Implementors
    /// typically delegate to [`Cluster::launch_with`] to interpose a
    /// rank shim and/or enroll the job with an initial share.
    fn launch(
        &mut self,
        cluster: &mut Cluster,
        job: &JobSpec,
        mode: SchedMode,
        placement: Placement,
    ) -> ClusterJobHandle;

    /// Realize gang `gang`'s milli-CPU share on cluster node `node`
    /// (called between windows whenever a policy re-divides a node).
    fn set_share(&mut self, cluster: &mut Cluster, node: usize, gang: u64, share_milli: u32);
}

/// A launched job the cluster routes messages for. Jobs stay in the
/// table after completing (their ids keep routing deterministic); the
/// id-range disjointness rule makes dead entries unreachable.
struct ActiveJob {
    job: JobSpec,
    /// Job-relative node -> cluster node.
    placement: Vec<usize>,
    /// Root (`perf`) pid per job-relative node.
    perf_pids: Vec<Pid>,
    /// Node incarnation at launch, per job-relative node: a pid is only
    /// meaningful on the incarnation that spawned it, so every task-table
    /// read is guarded by this (a restarted node has a fresh table).
    incarnations: Vec<u64>,
    /// Set when a node hosting a live launcher tree of this job
    /// crashes. Failed jobs release occupancy, stop routing, and never
    /// complete; a batch driver requeues them.
    failed: bool,
}

/// Where [`Cluster::launch`] places a job's nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Identity placement across the whole cluster: job node `j` on
    /// cluster node `j`. The job's width must equal the cluster's.
    All,
    /// Explicit subset: job node `j` on cluster node `nodes[j]`.
    Nodes(Vec<usize>),
}

impl Placement {
    /// Shorthand for [`Placement::Nodes`] from a slice.
    pub fn on(nodes: &[usize]) -> Self {
        Placement::Nodes(nodes.to_vec())
    }

    fn resolve(self, cluster_len: usize) -> Vec<usize> {
        match self {
            Placement::All => (0..cluster_len).collect(),
            Placement::Nodes(nodes) => nodes,
        }
    }
}

/// Constructs a [`Cluster`]. Everything about a run — the nodes, the
/// fabric, the host-side execution policy, the fault schedule — is
/// fixed here, at build time.
///
/// ```no_run
/// # use hpl_cluster::{Cluster, CosimConfig, FaultPlan, Interconnect, NetConfig};
/// # fn build_node(i: usize) -> hpl_kernel::Node { unimplemented!() }
/// let cluster = Cluster::builder()
///     .nodes_with(4, build_node)
///     .fabric(Interconnect::switched(4, NetConfig::default()))
///     .cosim(CosimConfig::parallel())
///     .faults(FaultPlan::none())
///     .build();
/// ```
pub struct ClusterBuilder {
    nodes: Vec<Node>,
    factory: Option<Box<dyn FnMut(usize) -> Node>>,
    net: Option<Interconnect>,
    cosim: CosimConfig,
    faults: FaultPlan,
}

impl ClusterBuilder {
    /// Provide pre-built nodes. Build them with whatever
    /// topology/seed/event-loop each should have — the cluster does not
    /// care. Restart fault events need [`Self::nodes_with`] instead
    /// (there is nothing to rebuild a crashed node from otherwise).
    pub fn nodes(mut self, nodes: Vec<Node>) -> Self {
        self.nodes = nodes;
        self.factory = None;
        self
    }

    /// Provide nodes via a factory (`factory(i)` builds node `i`). The
    /// factory is kept: a [`NodeFault::Restart`] event rebuilds the
    /// crashed node by calling it again.
    pub fn nodes_with(
        mut self,
        count: usize,
        mut factory: impl FnMut(usize) -> Node + 'static,
    ) -> Self {
        self.nodes = (0..count).map(&mut factory).collect();
        self.factory = Some(Box::new(factory));
        self
    }

    /// The interconnect. Defaults to a flat crossbar with
    /// [`NetConfig::default`] parameters over the node count.
    pub fn fabric(mut self, net: Interconnect) -> Self {
        self.net = Some(net);
        self
    }

    /// Host-side execution policy (serial vs pooled window stepping).
    /// Invisible in every observable output; defaults to serial.
    pub fn cosim(mut self, cfg: CosimConfig) -> Self {
        self.cosim = cfg;
        self
    }

    /// The run's fault schedule. Defaults to [`FaultPlan::none`], which
    /// is zero-cost: no fault state is consulted anywhere.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Build the cluster.
    ///
    /// Panics if no nodes were provided, the fabric size does not match
    /// the node count, a fault event targets a node outside the
    /// cluster, or the plan has restarts without a node factory.
    pub fn build(self) -> Cluster {
        let ClusterBuilder {
            nodes,
            factory,
            net,
            cosim,
            faults,
        } = self;
        assert!(!nodes.is_empty(), "a cluster needs at least one node");
        let mut net = net.unwrap_or_else(|| Interconnect::flat(nodes.len(), NetConfig::default()));
        assert_eq!(
            net.nodes(),
            nodes.len(),
            "interconnect fabric size must match the node count"
        );
        for e in &faults.events {
            assert!(
                e.node < nodes.len(),
                "fault event targets node {} outside the cluster",
                e.node
            );
        }
        assert!(
            !faults.has_restarts() || factory.is_some(),
            "restart fault events need ClusterBuilder::nodes_with (a node factory)"
        );
        if faults.loss.is_some() || !faults.degrade.is_empty() {
            net.install_faults(LinkFaults {
                seed: faults.seed,
                loss: faults.loss,
                degrade: faults.degrade.clone(),
            });
        }
        let n = nodes.len();
        let fault_events = faults.sorted_events();
        Cluster {
            nodes,
            net,
            jobs: Vec::new(),
            cfg: cosim,
            pool: None,
            active: Vec::new(),
            outbox: Vec::new(),
            factory,
            fault_events,
            fault_cursor: 0,
            down: vec![false; n],
            drained: vec![false; n],
            incarnation: vec![0; n],
            crashes: 0,
        }
    }
}

/// N co-simulated kernel nodes joined by an interconnect.
pub struct Cluster {
    nodes: Vec<Node>,
    net: Interconnect,
    /// Every job ever launched, in launch order; routes captured
    /// [`hpl_kernel::NetMsg`]s to their destination nodes.
    jobs: Vec<ActiveJob>,
    /// Host-side execution policy (serial vs pooled window stepping).
    cfg: CosimConfig,
    /// Worker pool, spawned lazily on the first window dense enough to
    /// fan out; `None` until then and in serial mode.
    pool: Option<WorkerPool>,
    /// Scratch: indices of nodes with an event inside the current
    /// window. Reused across windows so steady-state stepping does not
    /// allocate.
    active: Vec<usize>,
    /// Scratch: one window's captured outbound messages, swap-cycled
    /// with each node's capture buffer so neither side reallocates.
    outbox: Vec<NetMsg>,
    /// Node factory from [`ClusterBuilder::nodes_with`]; rebuilds
    /// crashed nodes on restart events.
    factory: Option<Box<dyn FnMut(usize) -> Node>>,
    /// The plan's node events, in application order.
    fault_events: Vec<crate::fault::NodeEvent>,
    /// First not-yet-applied entry of `fault_events`.
    fault_cursor: usize,
    /// `down[n]`: node `n` crashed and has not restarted. A down node
    /// is frozen — excluded from the next-event minimum and the active
    /// list, never stepped, deliveries to it dropped.
    down: Vec<bool>,
    /// `drained[n]`: node `n` accepts no new launches (but keeps
    /// running what it has).
    drained: Vec<bool>,
    /// Restart generation per node; bumped when a node is rebuilt.
    incarnation: Vec<u64>,
    /// Crash events applied so far.
    crashes: u64,
}

impl Cluster {
    /// Start building a cluster: nodes, fabric, execution policy and
    /// fault schedule are all fixed at [`ClusterBuilder::build`].
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder {
            nodes: Vec::new(),
            factory: None,
            net: None,
            cosim: CosimConfig::serial(),
            faults: FaultPlan::none(),
        }
    }

    /// Join pre-built nodes with an interconnect, serial lockstep.
    #[deprecated(note = "use Cluster::builder().nodes(..).fabric(..).build()")]
    pub fn new(nodes: Vec<Node>, net: Interconnect) -> Self {
        Cluster::builder().nodes(nodes).fabric(net).build()
    }

    /// Join pre-built nodes with an explicit host-side execution policy.
    #[deprecated(note = "use Cluster::builder().nodes(..).fabric(..).cosim(..).build()")]
    pub fn with_config(nodes: Vec<Node>, net: Interconnect, cfg: CosimConfig) -> Self {
        Cluster::builder()
            .nodes(nodes)
            .fabric(net)
            .cosim(cfg)
            .build()
    }

    /// The host-side execution policy.
    pub fn config(&self) -> CosimConfig {
        self.cfg
    }

    /// Replace the host-side execution policy mid-run. An existing pool
    /// is dropped so a new thread count takes effect.
    #[deprecated(
        note = "configure via ClusterBuilder::cosim — a run's execution policy is fixed at build"
    )]
    pub fn set_config(&mut self, cfg: CosimConfig) {
        self.cfg = cfg;
        self.pool = None;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the cluster has no nodes (never: `new` asserts).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to node `i`.
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Mutable access to node `i` (observer registration, warmup, …).
    /// Stepping a node directly while a job is in flight breaks
    /// lockstep; do it only before the first launch.
    pub fn node_mut(&mut self, i: usize) -> &mut Node {
        &mut self.nodes[i]
    }

    /// All nodes, in cluster order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The interconnect (traffic counters, lookahead).
    pub fn net(&self) -> &Interconnect {
        &self.net
    }

    /// Total events dispatched across all nodes.
    pub fn events_processed(&self) -> u64 {
        self.nodes.iter().map(Node::events_processed).sum()
    }

    /// Earliest pending event time across the cluster, `None` when every
    /// queue is drained. Down nodes are frozen and contribute nothing —
    /// their pending events can never fire.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.down[*i])
            .filter_map(|(_, n)| n.next_event_time())
            .min()
    }

    /// True iff node `n` has crashed and not restarted.
    pub fn node_down(&self, n: usize) -> bool {
        self.down[n]
    }

    /// True iff node `n` is drained (no new launches).
    pub fn node_drained(&self, n: usize) -> bool {
        self.drained[n]
    }

    /// True iff node `n` can host new launches (neither down nor
    /// drained).
    pub fn node_available(&self, n: usize) -> bool {
        !self.down[n] && !self.drained[n]
    }

    /// Crash events applied so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// True iff this handle's job was failed by a node crash. Failed
    /// jobs release occupancy, never complete, and must be relaunched
    /// (fresh id range) by whoever owns the queue.
    pub fn job_failed(&self, handle: &ClusterJobHandle) -> bool {
        self.jobs[handle.job_id].failed
    }

    /// Job-relative node indices of `handle` whose cluster node still
    /// holds the job's tasks: up, and on the same incarnation that
    /// spawned them. For a failed job this is where checkpoint progress
    /// can still be read.
    pub fn job_survivors(&self, handle: &ClusterJobHandle) -> Vec<usize> {
        let aj = &self.jobs[handle.job_id];
        (0..aj.placement.len())
            .filter(|&j| {
                let n = aj.placement[j];
                !self.down[n] && aj.incarnations[j] == self.incarnation[n]
            })
            .collect()
    }

    /// Forcibly terminate a running job: reap its launcher tree on every
    /// node that still holds one (walltime-limit enforcement, user
    /// cancellation). Call between lockstep windows only, like fault
    /// events, so the decision is identical under every host execution
    /// policy. The job's occupancy releases immediately and
    /// [`Self::job_done`] turns true once every tree is dead, so an
    /// engine harvesting completions observes the kill as an early end
    /// (each node's `perf` task records its node-local kill time in
    /// `exited_at`). No-op on a job already failed by a crash — crash
    /// recovery owns those. Returns the number of trees reaped.
    pub fn cancel_job(&mut self, handle: &ClusterJobHandle) -> usize {
        let aj = &self.jobs[handle.job_id];
        if aj.failed {
            return 0;
        }
        let victims: Vec<(usize, hpl_kernel::Pid)> = aj
            .placement
            .iter()
            .enumerate()
            .filter(|&(j, &n)| !self.down[n] && aj.incarnations[j] == self.incarnation[n])
            .map(|(j, &n)| (n, aj.perf_pids[j]))
            .collect();
        let mut reaped = 0;
        for (n, pid) in victims {
            if self.nodes[n].tasks.get(pid).state != TaskState::Dead {
                self.nodes[n].kill_tree(pid);
                reaped += 1;
            }
        }
        reaped
    }

    /// Combined scheduler-state hash over all nodes, for determinism
    /// tests (same seed + same event loop family ⇒ same fingerprint).
    pub fn state_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for node in &self.nodes {
            h ^= node.state_fingerprint();
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Launch `job` on `placement` (job node `j` runs on cluster node
    /// `placement[j]`; [`Placement::All`] is the identity placement over
    /// the whole cluster): register its cross-node channels on each
    /// source node, then spawn one `perf → (chrt →) mpiexec → ranks`
    /// tree per job node, *without* stepping any node (lockstep starts
    /// with [`Self::step_window`]). Jobs may overlap in time and share
    /// nodes, but jobs that share a node must reserve disjoint id ranges
    /// ([`JobSpec::with_id_base`]) so message routing stays unambiguous
    /// — this is asserted here, as is every target node being up and
    /// undrained.
    pub fn launch(
        &mut self,
        job: &JobSpec,
        mode: SchedMode,
        placement: Placement,
    ) -> ClusterJobHandle {
        self.launch_with(job, mode, placement, &mut |_, p| p)
    }

    /// [`Self::launch`] with a [`RankWrap`] hook interposed on every
    /// rank program as it is forked — `wrap(rank, program)` returns
    /// what the rank actually runs. The identity closure reproduces
    /// [`Self::launch`] byte for byte; `hpl-coord` uses the hook to
    /// install its cooperative lease shim without this crate knowing
    /// coordination exists.
    pub fn launch_with(
        &mut self,
        job: &JobSpec,
        mode: SchedMode,
        placement: Placement,
        wrap: RankWrap<'_>,
    ) -> ClusterJobHandle {
        let placement = placement.resolve(self.nodes.len());
        assert_eq!(
            job.nodes as usize,
            placement.len(),
            "job wants {} nodes but placement has {}",
            job.nodes,
            placement.len()
        );
        for (j, &n) in placement.iter().enumerate() {
            assert!(
                n < self.nodes.len(),
                "placement[{j}] = {n} outside the cluster"
            );
            assert!(
                !placement[..j].contains(&n),
                "placement maps two job nodes onto cluster node {n}"
            );
            assert!(
                !self.down[n] && !self.drained[n],
                "placement[{j}] = {n} is {}",
                if self.down[n] { "down" } else { "drained" }
            );
        }
        for prev in &self.jobs {
            if !prev.placement.iter().any(|n| placement.contains(n)) {
                continue;
            }
            let (a, b) = (prev.job.id_range(), job.id_range());
            assert!(
                a.end() < b.start() || b.end() < a.start(),
                "jobs sharing a node must have disjoint id ranges \
                 ({:?} vs {:?}); use JobSpec::with_id_base",
                a,
                b
            );
        }
        let mut perf_pids = Vec::with_capacity(placement.len());
        let mut launched_at = Vec::with_capacity(placement.len());
        for (j, &n) in placement.iter().enumerate() {
            let node = &mut self.nodes[n];
            for chan in job.cross_node_channels(j as u32) {
                node.register_net_channel(chan);
            }
            launched_at.push(node.now());
            let root = spawn_job_tree_with(node, job, mode, j as u32, wrap);
            if node.cfg.gang_epoch.is_some() {
                // Gang co-scheduling: every rank tree of this job shares
                // one gang id — the job's id base, which the
                // disjoint-id-range assertion above makes unique among
                // co-resident jobs — so each node's gang controller
                // rotates the same job in the same absolute-time epoch
                // window without any cross-node messages.
                node.gang_enroll(root, job.id_base);
            }
            perf_pids.push(root);
        }
        let job_id = self.jobs.len();
        let incarnations = placement.iter().map(|&n| self.incarnation[n]).collect();
        self.jobs.push(ActiveJob {
            job: job.clone(),
            placement: placement.clone(),
            perf_pids: perf_pids.clone(),
            incarnations,
            failed: false,
        });
        ClusterJobHandle {
            job_id,
            placement,
            perf_pids,
            launched_at,
        }
    }

    /// Set gang `gang`'s milli-CPU share on cluster node `node` for
    /// weighted kernel slicing ([`hpl_kernel::Node::gang_set_share`]).
    /// Called between windows, like every other harness mutation; a
    /// coordination runtime calls it on every node a job occupies so
    /// the lockstep nodes keep deriving identical slice schedules from
    /// the shared virtual clock.
    pub fn set_gang_share(&mut self, node: usize, gang: u64, share_milli: u32) {
        assert!(
            !self.down[node] && !self.drained[node],
            "set_gang_share on {} node {node}",
            if self.down[node] { "down" } else { "drained" }
        );
        self.nodes[node].gang_set_share(gang, share_milli);
    }

    /// Advance one lockstep window. Returns `false` when every node's
    /// event queue is drained (nothing can ever happen again), `true`
    /// after processing a window.
    ///
    /// The window `[t_next, t_next + lookahead)` is a half-open
    /// [`Window`]; any message sent inside it is delivered at or after
    /// the window end (see module docs), so per-node stepping is
    /// independent and deliveries posted after all nodes finish cannot
    /// land in a node's past. Only the *active* nodes — those with an
    /// event inside the window — are stepped at all (for an inactive
    /// node `run_until_time` is a pure no-op, so skipping it is exact);
    /// under [`CosimConfig::parallel`] a dense-enough active set is
    /// fanned out over the worker pool, with every cross-node effect
    /// still merged serially in fixed `(node, capture)` order by
    /// `route_outbound`, which is what keeps the result byte-identical
    /// to the serial path.
    /// Fault events from the plan are applied here, at window
    /// boundaries: every event due at or before the upcoming window's
    /// start lands before any node is stepped (so a crash has
    /// window-granular timing — the first boundary at or after its
    /// scheduled time — exactly like a health-check poll would). When
    /// all queues drain but fault events remain (e.g. a restart of the
    /// only node with work), the events are applied and the loop
    /// continues, so a restart can wake an otherwise-idle cluster.
    pub fn step_window(&mut self) -> bool {
        let t_next = loop {
            let t_next = self.next_event_time();
            let due = match (self.fault_events.get(self.fault_cursor), t_next) {
                (Some(e), Some(t)) => e.at <= t,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if due {
                self.apply_next_fault();
                continue;
            }
            match t_next {
                Some(t) => break t,
                None => return false,
            }
        };
        let window = Window::conservative(t_next, self.net.lookahead());
        let deadline = window.deadline();
        self.active.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            if self.down[i] {
                // A down node leaves the active list permanently: it is
                // never re-claimed by the pool, its frozen events never
                // fire. (Restart replaces the node wholesale.)
                continue;
            }
            if node.next_event_time().is_some_and(|t| t <= deadline) {
                self.active.push(i);
            }
        }
        let alive = self.nodes.len() - self.down.iter().filter(|&&d| d).count();
        let workers = self.cfg.effective_threads(alive) - 1;
        if self.cfg.parallel && workers > 0 && self.active.len() >= self.cfg.parallel_min_active {
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(workers));
            pool.step_round(&mut self.nodes, &self.active, deadline);
        } else {
            for &i in &self.active {
                self.nodes[i].run_until_time(deadline);
            }
        }
        self.route_outbound();
        true
    }

    /// Apply the next scheduled node fault. Runs serially between
    /// windows, so the decision is identical under every host execution
    /// policy.
    fn apply_next_fault(&mut self) {
        let ev = self.fault_events[self.fault_cursor];
        self.fault_cursor += 1;
        match ev.kind {
            NodeFault::Drain => {
                self.drained[ev.node] = true;
            }
            NodeFault::Crash => {
                if self.down[ev.node] {
                    return;
                }
                // Fail every job with a live launcher tree on the node
                // (the node's task table is still valid here — it is
                // only replaced on restart). Jobs whose tree already
                // exited on this node are unaffected.
                for aj in &mut self.jobs {
                    if aj.failed {
                        continue;
                    }
                    if let Some(j) = aj.placement.iter().position(|&p| p == ev.node) {
                        if aj.incarnations[j] == self.incarnation[ev.node]
                            && self.nodes[ev.node].tasks.get(aj.perf_pids[j]).state
                                != TaskState::Dead
                        {
                            aj.failed = true;
                        }
                    }
                }
                self.down[ev.node] = true;
                self.crashes += 1;
                // Runtime-level abort on the survivors: reap each failed
                // job's task tree on its other nodes, so orphaned ranks
                // don't spin against (and skew placement for) whatever
                // runs there next. Checkpoint barrier generations stay
                // readable — killing a task doesn't unwind the commits
                // it already made.
                for ji in 0..self.jobs.len() {
                    let aj = &self.jobs[ji];
                    if !aj.failed || !aj.placement.contains(&ev.node) {
                        continue;
                    }
                    let victims: Vec<(usize, hpl_kernel::Pid)> = aj
                        .placement
                        .iter()
                        .enumerate()
                        .filter(|&(j, &n)| {
                            n != ev.node
                                && !self.down[n]
                                && aj.incarnations[j] == self.incarnation[n]
                        })
                        .map(|(j, &n)| (n, aj.perf_pids[j]))
                        .collect();
                    for (n, pid) in victims {
                        if self.nodes[n].tasks.get(pid).state != TaskState::Dead {
                            self.nodes[n].kill_tree(pid);
                        }
                    }
                }
            }
            NodeFault::Restart => {
                if !self.down[ev.node] {
                    // Restart of an up node just lifts a drain.
                    self.drained[ev.node] = false;
                    return;
                }
                let factory = self
                    .factory
                    .as_mut()
                    .expect("restart events are rejected at build without a factory");
                let mut fresh = factory(ev.node);
                // Replay the fresh kernel's boot up to the cluster's
                // present, so it rejoins lockstep without dragging the
                // window back into everyone else's past. Deliveries
                // pending in the dead node's queue vanish with it.
                let target = self
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !self.down[*i])
                    .map(|(_, n)| n.now())
                    .max()
                    .unwrap_or(SimTime::ZERO)
                    .max(ev.at);
                fresh.run_until_time(target);
                self.nodes[ev.node] = fresh;
                self.down[ev.node] = false;
                self.drained[ev.node] = false;
                self.incarnation[ev.node] += 1;
            }
        }
    }

    /// Drain captured cross-node messages from every node, cost them on
    /// the interconnect, and schedule the deliveries. Deterministic:
    /// nodes are drained in index order and each node's capture order is
    /// its own dispatch order — this serial merge is what erases any
    /// host-thread interleaving from the parallel stepping path. Each
    /// message is routed by the unique job that (a) placed a node on the
    /// source and (b) owns the channel id — unique because overlapping
    /// jobs have disjoint id ranges.
    fn route_outbound(&mut self) {
        let mut buf = std::mem::take(&mut self.outbox);
        for src in 0..self.nodes.len() {
            if self.down[src] || !self.nodes[src].has_outbound() {
                continue;
            }
            self.nodes[src].drain_outbound_into(&mut buf);
            for &m in buf.iter() {
                let aj = self
                    .jobs
                    .iter()
                    .filter(|aj| aj.placement.contains(&src))
                    .find(|aj| aj.job.chan_dst_node(m.chan).is_some())
                    .expect("outbound message on a channel no job on this node owns");
                // A failed job's runtime is torn down: in-flight traffic
                // from its surviving ranks goes nowhere. (The ranks
                // themselves quiesce — they spin out their limit, then
                // block forever on peers that no longer exist.)
                if aj.failed {
                    continue;
                }
                let dst_job = aj.job.chan_dst_node(m.chan).expect("checked above") as usize;
                let dst = aj.placement[dst_job];
                debug_assert_ne!(dst, src, "cross-node send routed back to its source");
                if self.down[dst] {
                    continue;
                }
                let (deliver_at, queued) = self.net.transfer(m.at, src, dst, m.bytes);
                self.nodes[dst].post_net_delivery(deliver_at, m.chan, m.tokens, m.at, queued);
            }
        }
        self.outbox = buf;
    }

    /// Run lockstep windows until **this handle's** launcher trees have
    /// exited (other in-flight jobs keep running and are untouched),
    /// then return the **application execution time**: the longest
    /// per-node `mpiexec` lifetime, which is what the paper's
    /// per-benchmark timers report. Fails with
    /// [`RunOutcome::Deadlock`] if every event queue drains first, or
    /// [`RunOutcome::BudgetExhausted`] after `max_events` additional
    /// dispatched events cluster-wide (hang guard). In all cases the
    /// cluster is left exactly where the run stopped.
    pub fn try_run_to_completion(
        &mut self,
        handle: &ClusterJobHandle,
        max_events: u64,
    ) -> Result<SimDuration, RunOutcome> {
        let start_events = self.events_processed();
        while !self.job_done(handle) {
            if self.job_failed(handle) {
                // A crash killed part of the job: it can never complete.
                return Err(RunOutcome::Deadlock);
            }
            if !self.step_window() {
                return Err(RunOutcome::Deadlock);
            }
            if self.events_processed() - start_events > max_events {
                return Err(RunOutcome::BudgetExhausted);
            }
        }
        Ok(self
            .job_exec_time(handle)
            .expect("job_done implies mpiexec exited"))
    }

    /// Panicking convenience wrapper around
    /// [`Self::try_run_to_completion`] for tests and examples that treat
    /// an unfinished run as a bug.
    pub fn run_to_completion(&mut self, handle: &ClusterJobHandle, max_events: u64) -> SimDuration {
        self.try_run_to_completion(handle, max_events)
            .unwrap_or_else(|outcome| panic!("cluster job did not complete: {}", outcome.label()))
    }

    /// True iff the whole launcher tree has exited on every node **of
    /// this job** — other jobs do not affect the answer. Always `false`
    /// for a failed job, and for a job whose node was since restarted
    /// (its pids belong to a dead incarnation); poll every window, as
    /// the engines do, and completion is observed before any later
    /// crash can obscure it.
    pub fn job_done(&self, handle: &ClusterJobHandle) -> bool {
        let aj = &self.jobs[handle.job_id];
        !aj.failed
            && handle
                .perf_pids
                .iter()
                .zip(&handle.placement)
                .enumerate()
                .all(|(j, (&pid, &n))| {
                    !self.down[n]
                        && aj.incarnations[j] == self.incarnation[n]
                        && self.nodes[n].tasks.get(pid).state == TaskState::Dead
                })
    }

    /// Application execution time of a completed job: the longest
    /// per-node `mpiexec` lifetime since launch. `None` until every
    /// node's mpiexec has exited, and forever for a failed job.
    pub fn job_exec_time(&self, handle: &ClusterJobHandle) -> Option<SimDuration> {
        let aj = &self.jobs[handle.job_id];
        if aj.failed {
            return None;
        }
        let mut exec = SimDuration::ZERO;
        for (j, &n) in handle.placement.iter().enumerate() {
            if self.down[n] || aj.incarnations[j] != self.incarnation[n] {
                return None;
            }
            let node = &self.nodes[n];
            let mpiexec = find_mpiexec(node, handle.perf_pids[j])?;
            let exited = node.tasks.get(mpiexec).exited_at?;
            exec = exec.max(exited.since(handle.launched_at[j]));
        }
        Some(exec)
    }

    /// Number of jobs currently occupying cluster node `n`: launched,
    /// placed on `n`, not failed, and whose launcher tree on `n` has not
    /// yet exited. This is the quantity a batch policy's occupancy limit
    /// bounds; a crash releases its jobs' occupancy here immediately.
    pub fn active_jobs_on(&self, n: usize) -> usize {
        self.jobs
            .iter()
            .filter(|aj| {
                !aj.failed
                    && aj.placement.iter().position(|&p| p == n).is_some_and(|j| {
                        aj.incarnations[j] == self.incarnation[n]
                            && self.nodes[n].tasks.get(aj.perf_pids[j]).state != TaskState::Dead
                    })
            })
            .count()
    }

    /// Total jobs ever launched on the cluster.
    pub fn jobs_launched(&self) -> usize {
        self.jobs.len()
    }

    /// Merge each node's [`ChromeTraceSink`] into a single Chrome-trace
    /// document, one trace *process* per node (process id = node
    /// index plus one) so `chrome://tracing` renders the cluster as
    /// stacked per-node track groups. `sinks[i]` must be the observer
    /// id of a `ChromeTraceSink` registered on node `i`; returns
    /// `None` if any id does not resolve.
    pub fn export_chrome_trace(&self, sinks: &[ObserverId]) -> Option<String> {
        assert_eq!(sinks.len(), self.nodes.len(), "one sink id per node");
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut dropped = 0u64;
        for (i, (node, &id)) in self.nodes.iter().zip(sinks).enumerate() {
            let sink: &ChromeTraceSink = node.observer(id)?;
            dropped += sink.dropped();
            sink.write_events(&mut out, &mut first, i as u32 + 1, node.now(), |pid| {
                node.tasks.get(pid).name.clone()
            });
        }
        let _ = write!(out, "\n],\"otherData\":{{\"dropped\":{dropped}}}}}");
        Some(out)
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("net", &self.net)
            .field("jobs_launched", &self.jobs.len())
            .finish()
    }
}
