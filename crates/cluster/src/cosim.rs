//! Lockstep co-simulation of kernel nodes over an interconnect.
//!
//! [`Cluster`] owns N independent kernel [`Node`]s plus one
//! [`Interconnect`] and advances them in conservative virtual-time
//! lockstep. Each iteration ("window") it finds the cluster-wide next
//! event time `t`, runs every node up to — but excluding —
//! `t + lookahead` (the interconnect's minimum wire latency), then
//! drains the cross-node messages captured during the window, costs them
//! through the interconnect, and posts the deliveries into the
//! destination nodes' event queues. The lookahead rule makes this safe:
//! a message sent at time `s >= t` cannot be delivered before
//! `s + alpha_min >= t + lookahead`, i.e. never *inside* the window that
//! produced it, so no node ever has to roll back.
//!
//! Determinism: windows are a pure function of node state, messages are
//! routed in (source node, capture order) — a deterministic order — and
//! the interconnect is itself deterministic, so a cluster run is exactly
//! as replayable as a single-node run. The same seed produces the same
//! fingerprint on the fast and reference event loops.

use crate::net::Interconnect;
use hpl_kernel::observe::ChromeTraceSink;
use hpl_kernel::{Node, ObserverId, Pid, RunOutcome, TaskState};
use hpl_mpi::{find_mpiexec, spawn_job_tree, JobSpec, SchedMode};
use hpl_sim::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// Handle to a job running across the cluster: one launcher tree per
/// node.
#[derive(Debug, Clone)]
pub struct ClusterJobHandle {
    /// Root (`perf`) pid on each node, index = cluster node.
    pub perf_pids: Vec<Pid>,
    /// Per-node launch times (nodes need not share a clock).
    pub launched_at: Vec<SimTime>,
}

/// N co-simulated kernel nodes joined by an interconnect.
pub struct Cluster {
    nodes: Vec<Node>,
    net: Interconnect,
    /// Placement/channel map of the active job; routes captured
    /// [`hpl_kernel::NetMsg`]s to their destination nodes.
    job: Option<JobSpec>,
}

impl Cluster {
    /// Join pre-built nodes with an interconnect. Build the nodes with
    /// whatever topology/seed/event-loop each should have — the cluster
    /// does not care, it only requires `fabric.nodes() == nodes.len()`.
    pub fn new(nodes: Vec<Node>, net: Interconnect) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs at least one node");
        assert_eq!(
            net.nodes(),
            nodes.len(),
            "interconnect fabric size must match the node count"
        );
        Cluster { nodes, net, job: None }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the cluster has no nodes (never: `new` asserts).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to node `i`.
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Mutable access to node `i` (observer registration, warmup, …).
    /// Stepping a node directly while a job is in flight breaks
    /// lockstep; do it only before [`Self::launch_job`].
    pub fn node_mut(&mut self, i: usize) -> &mut Node {
        &mut self.nodes[i]
    }

    /// All nodes, in cluster order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The interconnect (traffic counters, lookahead).
    pub fn net(&self) -> &Interconnect {
        &self.net
    }

    /// Total events dispatched across all nodes.
    pub fn events_processed(&self) -> u64 {
        self.nodes.iter().map(Node::events_processed).sum()
    }

    /// Earliest pending event time across the cluster, `None` when every
    /// queue is drained.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.nodes.iter().filter_map(Node::next_event_time).min()
    }

    /// Combined scheduler-state hash over all nodes, for determinism
    /// tests (same seed + same event loop family ⇒ same fingerprint).
    pub fn state_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for node in &self.nodes {
            h ^= node.state_fingerprint();
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Launch `job` across the cluster: register its cross-node channels
    /// on each source node, then spawn one `perf → (chrt →) mpiexec →
    /// ranks` tree per node, *without* stepping any node (lockstep
    /// starts with [`Self::step_window`]). One job at a time: the
    /// cluster routes messages by the job's channel map.
    pub fn launch_job(&mut self, job: &JobSpec, mode: SchedMode) -> ClusterJobHandle {
        assert_eq!(
            job.nodes as usize,
            self.nodes.len(),
            "job placement does not match cluster size"
        );
        assert!(self.job.is_none(), "cluster already has an active job");
        let mut perf_pids = Vec::with_capacity(self.nodes.len());
        let mut launched_at = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter_mut().enumerate() {
            for chan in job.cross_node_channels(i as u32) {
                node.register_net_channel(chan);
            }
            launched_at.push(node.now());
            perf_pids.push(spawn_job_tree(node, job, mode, i as u32));
        }
        self.job = Some(job.clone());
        ClusterJobHandle { perf_pids, launched_at }
    }

    /// Advance one lockstep window. Returns `false` when every node's
    /// event queue is drained (nothing can ever happen again), `true`
    /// after processing a window.
    pub fn step_window(&mut self) -> bool {
        let Some(t_next) = self.next_event_time() else {
            return false;
        };
        // Window = [t_next, t_next + lookahead). Any message sent inside
        // it is delivered at or after the window end (see module docs),
        // so posting deliveries after all nodes finish cannot land in a
        // node's past.
        let lookahead = self.net.lookahead();
        debug_assert!(lookahead >= SimDuration::from_nanos(1));
        let deadline = t_next + lookahead - SimDuration::from_nanos(1);
        for node in &mut self.nodes {
            node.run_until_time(deadline);
        }
        self.route_outbound();
        true
    }

    /// Drain captured cross-node messages from every node, cost them on
    /// the interconnect, and schedule the deliveries. Deterministic:
    /// nodes are drained in index order and each node's capture order is
    /// its own dispatch order.
    fn route_outbound(&mut self) {
        for src in 0..self.nodes.len() {
            if !self.nodes[src].has_outbound() {
                continue;
            }
            let job = self
                .job
                .as_ref()
                .expect("outbound network message without an active job");
            let msgs = self.nodes[src].take_outbound();
            for m in msgs {
                let dst = job
                    .chan_dst_node(m.chan)
                    .expect("outbound message on a channel outside the job's pairwise range")
                    as usize;
                debug_assert_ne!(dst, src, "cross-node send routed back to its source");
                let (deliver_at, queued) = self.net.transfer(m.at, src, dst, m.bytes);
                self.nodes[dst].post_net_delivery(deliver_at, m.chan, m.tokens, m.at, queued);
            }
        }
    }

    /// Run lockstep windows until every node's launcher tree has exited,
    /// then return the **application execution time**: the longest
    /// per-node `mpiexec` lifetime, which is what the paper's
    /// per-benchmark timers report. Fails with
    /// [`RunOutcome::Deadlock`] if every event queue drains first, or
    /// [`RunOutcome::BudgetExhausted`] after `max_events` additional
    /// dispatched events cluster-wide (hang guard). In all cases the
    /// cluster is left exactly where the run stopped.
    pub fn try_run_to_completion(
        &mut self,
        handle: &ClusterJobHandle,
        max_events: u64,
    ) -> Result<SimDuration, RunOutcome> {
        let start_events = self.events_processed();
        while !self.job_done(handle) {
            if !self.step_window() {
                return Err(RunOutcome::Deadlock);
            }
            if self.events_processed() - start_events > max_events {
                return Err(RunOutcome::BudgetExhausted);
            }
        }
        let mut exec = SimDuration::ZERO;
        for (i, node) in self.nodes.iter().enumerate() {
            let mpiexec = find_mpiexec(node, handle.perf_pids[i])
                .expect("completed job implies mpiexec existed");
            let exited = node
                .tasks
                .get(mpiexec)
                .exited_at
                .expect("completed job implies mpiexec exited");
            exec = exec.max(exited.since(handle.launched_at[i]));
        }
        Ok(exec)
    }

    /// Panicking convenience wrapper around
    /// [`Self::try_run_to_completion`] for tests and examples that treat
    /// an unfinished run as a bug.
    pub fn run_to_completion(&mut self, handle: &ClusterJobHandle, max_events: u64) -> SimDuration {
        self.try_run_to_completion(handle, max_events)
            .unwrap_or_else(|outcome| panic!("cluster job did not complete: {}", outcome.label()))
    }

    /// True iff the whole launcher tree has exited on every node.
    pub fn job_done(&self, handle: &ClusterJobHandle) -> bool {
        handle
            .perf_pids
            .iter()
            .enumerate()
            .all(|(i, &pid)| self.nodes[i].tasks.get(pid).state == TaskState::Dead)
    }

    /// Merge each node's [`ChromeTraceSink`] into a single Chrome-trace
    /// document, one trace *process* per node (process id = node
    /// index plus one) so `chrome://tracing` renders the cluster as
    /// stacked per-node track groups. `sinks[i]` must be the observer
    /// id of a `ChromeTraceSink` registered on node `i`; returns
    /// `None` if any id does not resolve.
    pub fn export_chrome_trace(&self, sinks: &[ObserverId]) -> Option<String> {
        assert_eq!(sinks.len(), self.nodes.len(), "one sink id per node");
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut dropped = 0u64;
        for (i, (node, &id)) in self.nodes.iter().zip(sinks).enumerate() {
            let sink: &ChromeTraceSink = node.observer(id)?;
            dropped += sink.dropped();
            sink.write_events(&mut out, &mut first, i as u32 + 1, node.now(), |pid| {
                node.tasks.get(pid).name.clone()
            });
        }
        let _ = write!(out, "\n],\"otherData\":{{\"dropped\":{dropped}}}}}");
        Some(out)
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("net", &self.net)
            .field("active_job", &self.job.is_some())
            .finish()
    }
}
