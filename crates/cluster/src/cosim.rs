//! Lockstep co-simulation of kernel nodes over an interconnect.
//!
//! [`Cluster`] owns N independent kernel [`Node`]s plus one
//! [`Interconnect`] and advances them in conservative virtual-time
//! lockstep. Each iteration ("window") it finds the cluster-wide next
//! event time `t`, runs every node up to — but excluding —
//! `t + lookahead` (the interconnect's minimum wire latency), then
//! drains the cross-node messages captured during the window, costs them
//! through the interconnect, and posts the deliveries into the
//! destination nodes' event queues. The lookahead rule makes this safe:
//! a message sent at time `s >= t` cannot be delivered before
//! `s + alpha_min >= t + lookahead`, i.e. never *inside* the window that
//! produced it, so no node ever has to roll back.
//!
//! Determinism: windows are a pure function of node state, messages are
//! routed in (source node, capture order) — a deterministic order — and
//! the interconnect is itself deterministic, so a cluster run is exactly
//! as replayable as a single-node run. The same seed produces the same
//! fingerprint on the fast and reference event loops.
//!
//! The cluster supports **concurrent jobs**: each [`Self::launch_job_on`]
//! places a job on a subset of nodes, jobs sharing a node must reserve
//! disjoint channel-id ranges ([`JobSpec::id_range`]), and completion is
//! tracked per [`ClusterJobHandle`] so a batch driver (see `hpl-batch`)
//! can overlap jobs and harvest them independently.

use crate::net::Interconnect;
use crate::pool::WorkerPool;
use crate::window::Window;
use hpl_kernel::observe::ChromeTraceSink;
use hpl_kernel::{NetMsg, Node, ObserverId, Pid, RunOutcome, TaskState};
use hpl_mpi::{find_mpiexec, spawn_job_tree, JobSpec, SchedMode};
use hpl_sim::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// Host-side execution policy of the lockstep driver.
///
/// Within a conservative window node steps are independent, so the
/// driver may fan the active nodes out over a persistent host thread
/// pool; the observable result is **byte-identical** to the serial path
/// (same fingerprints, traces, metrics and reports) because all
/// cross-node effects are merged serially in fixed `(node, capture)`
/// order after the window — see [`Cluster::step_window`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CosimConfig {
    /// Step windows on a worker pool instead of in a serial loop.
    pub parallel: bool,
    /// Stepping threads to use when `parallel` (including the calling
    /// thread). `0` = the host's available parallelism.
    pub threads: usize,
    /// Minimum number of *active* nodes (nodes with an event inside the
    /// window) before a window is worth fanning out; sparser windows run
    /// serially even when `parallel` is set. Windows dense enough to
    /// matter are exactly the ones that amortise the round-trip.
    pub parallel_min_active: usize,
}

impl Default for CosimConfig {
    fn default() -> Self {
        CosimConfig {
            parallel: false,
            threads: 0,
            parallel_min_active: 8,
        }
    }
}

impl CosimConfig {
    /// Serial lockstep (the default).
    pub fn serial() -> Self {
        CosimConfig::default()
    }

    /// Parallel lockstep on the host's available cores.
    pub fn parallel() -> Self {
        CosimConfig {
            parallel: true,
            ..CosimConfig::default()
        }
    }

    /// Override the stepping-thread count (including the caller).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override the dense-window threshold.
    pub fn with_min_active(mut self, min_active: usize) -> Self {
        self.parallel_min_active = min_active;
        self
    }

    /// Stepping threads a cluster of `nodes` would actually use: the
    /// explicit count, else host parallelism, never more than the node
    /// count and at least one.
    pub fn effective_threads(&self, nodes: usize) -> usize {
        let t = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        t.clamp(1, nodes.max(1))
    }
}

/// Handle to a job running across (a subset of) the cluster: one
/// launcher tree per job node.
#[derive(Debug, Clone)]
pub struct ClusterJobHandle {
    /// Index of this job in the cluster's launch order (stable; jobs are
    /// never removed from the routing table).
    pub job_id: usize,
    /// Cluster node hosting each job-relative node: `placement[j]` is
    /// the cluster index of job node `j`.
    pub placement: Vec<usize>,
    /// Root (`perf`) pid on each job node, index = **job-relative**
    /// node (cluster node `placement[j]`).
    pub perf_pids: Vec<Pid>,
    /// Per-job-node launch times (nodes need not share a clock).
    pub launched_at: Vec<SimTime>,
}

/// A launched job the cluster routes messages for. Jobs stay in the
/// table after completing (their ids keep routing deterministic); the
/// id-range disjointness rule makes dead entries unreachable.
struct ActiveJob {
    job: JobSpec,
    /// Job-relative node -> cluster node.
    placement: Vec<usize>,
    /// Root (`perf`) pid per job-relative node.
    perf_pids: Vec<Pid>,
}

/// N co-simulated kernel nodes joined by an interconnect.
pub struct Cluster {
    nodes: Vec<Node>,
    net: Interconnect,
    /// Every job ever launched, in launch order; routes captured
    /// [`hpl_kernel::NetMsg`]s to their destination nodes.
    jobs: Vec<ActiveJob>,
    /// Host-side execution policy (serial vs pooled window stepping).
    cfg: CosimConfig,
    /// Worker pool, spawned lazily on the first window dense enough to
    /// fan out; `None` until then and in serial mode.
    pool: Option<WorkerPool>,
    /// Scratch: indices of nodes with an event inside the current
    /// window. Reused across windows so steady-state stepping does not
    /// allocate.
    active: Vec<usize>,
    /// Scratch: one window's captured outbound messages, swap-cycled
    /// with each node's capture buffer so neither side reallocates.
    outbox: Vec<NetMsg>,
}

impl Cluster {
    /// Join pre-built nodes with an interconnect. Build the nodes with
    /// whatever topology/seed/event-loop each should have — the cluster
    /// does not care, it only requires `fabric.nodes() == nodes.len()`.
    /// Runs serial lockstep; use [`Self::with_config`] to fan windows
    /// out over host threads.
    pub fn new(nodes: Vec<Node>, net: Interconnect) -> Self {
        Cluster::with_config(nodes, net, CosimConfig::serial())
    }

    /// [`Self::new`] with an explicit host-side execution policy. The
    /// policy is invisible in every observable output — fingerprints,
    /// traces, metrics, reports are byte-identical across policies —
    /// it only changes host wall-clock time.
    pub fn with_config(nodes: Vec<Node>, net: Interconnect, cfg: CosimConfig) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs at least one node");
        assert_eq!(
            net.nodes(),
            nodes.len(),
            "interconnect fabric size must match the node count"
        );
        Cluster {
            nodes,
            net,
            jobs: Vec::new(),
            cfg,
            pool: None,
            active: Vec::new(),
            outbox: Vec::new(),
        }
    }

    /// The host-side execution policy.
    pub fn config(&self) -> CosimConfig {
        self.cfg
    }

    /// Replace the host-side execution policy mid-run (safe at any
    /// window boundary: the policy never affects simulated state). An
    /// existing pool is dropped so a new thread count takes effect.
    pub fn set_config(&mut self, cfg: CosimConfig) {
        self.cfg = cfg;
        self.pool = None;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the cluster has no nodes (never: `new` asserts).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to node `i`.
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Mutable access to node `i` (observer registration, warmup, …).
    /// Stepping a node directly while a job is in flight breaks
    /// lockstep; do it only before the first launch.
    pub fn node_mut(&mut self, i: usize) -> &mut Node {
        &mut self.nodes[i]
    }

    /// All nodes, in cluster order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The interconnect (traffic counters, lookahead).
    pub fn net(&self) -> &Interconnect {
        &self.net
    }

    /// Total events dispatched across all nodes.
    pub fn events_processed(&self) -> u64 {
        self.nodes.iter().map(Node::events_processed).sum()
    }

    /// Earliest pending event time across the cluster, `None` when every
    /// queue is drained.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.nodes.iter().filter_map(Node::next_event_time).min()
    }

    /// Combined scheduler-state hash over all nodes, for determinism
    /// tests (same seed + same event loop family ⇒ same fingerprint).
    pub fn state_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for node in &self.nodes {
            h ^= node.state_fingerprint();
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Launch `job` across the **whole** cluster (identity placement:
    /// job node `j` on cluster node `j`). Equivalent to
    /// [`Self::launch_job_on`] with `[0, 1, …, len-1]`.
    pub fn launch_job(&mut self, job: &JobSpec, mode: SchedMode) -> ClusterJobHandle {
        assert_eq!(
            job.nodes as usize,
            self.nodes.len(),
            "job placement does not match cluster size"
        );
        let placement: Vec<usize> = (0..self.nodes.len()).collect();
        self.launch_job_on(job, mode, &placement)
    }

    /// Launch `job` on the cluster-node subset `placement` (job node `j`
    /// runs on cluster node `placement[j]`): register its cross-node
    /// channels on each source node, then spawn one `perf → (chrt →)
    /// mpiexec → ranks` tree per job node, *without* stepping any node
    /// (lockstep starts with [`Self::step_window`]). Jobs may overlap in
    /// time and share nodes, but jobs that share a node must reserve
    /// disjoint id ranges ([`JobSpec::with_id_base`]) so message routing
    /// stays unambiguous — this is asserted here.
    pub fn launch_job_on(
        &mut self,
        job: &JobSpec,
        mode: SchedMode,
        placement: &[usize],
    ) -> ClusterJobHandle {
        assert_eq!(
            job.nodes as usize,
            placement.len(),
            "job wants {} nodes but placement has {}",
            job.nodes,
            placement.len()
        );
        for (j, &n) in placement.iter().enumerate() {
            assert!(
                n < self.nodes.len(),
                "placement[{j}] = {n} outside the cluster"
            );
            assert!(
                !placement[..j].contains(&n),
                "placement maps two job nodes onto cluster node {n}"
            );
        }
        for prev in &self.jobs {
            if !prev.placement.iter().any(|n| placement.contains(n)) {
                continue;
            }
            let (a, b) = (prev.job.id_range(), job.id_range());
            assert!(
                a.end() < b.start() || b.end() < a.start(),
                "jobs sharing a node must have disjoint id ranges \
                 ({:?} vs {:?}); use JobSpec::with_id_base",
                a,
                b
            );
        }
        let mut perf_pids = Vec::with_capacity(placement.len());
        let mut launched_at = Vec::with_capacity(placement.len());
        for (j, &n) in placement.iter().enumerate() {
            let node = &mut self.nodes[n];
            for chan in job.cross_node_channels(j as u32) {
                node.register_net_channel(chan);
            }
            launched_at.push(node.now());
            perf_pids.push(spawn_job_tree(node, job, mode, j as u32));
        }
        let job_id = self.jobs.len();
        self.jobs.push(ActiveJob {
            job: job.clone(),
            placement: placement.to_vec(),
            perf_pids: perf_pids.clone(),
        });
        ClusterJobHandle {
            job_id,
            placement: placement.to_vec(),
            perf_pids,
            launched_at,
        }
    }

    /// Advance one lockstep window. Returns `false` when every node's
    /// event queue is drained (nothing can ever happen again), `true`
    /// after processing a window.
    ///
    /// The window `[t_next, t_next + lookahead)` is a half-open
    /// [`Window`]; any message sent inside it is delivered at or after
    /// the window end (see module docs), so per-node stepping is
    /// independent and deliveries posted after all nodes finish cannot
    /// land in a node's past. Only the *active* nodes — those with an
    /// event inside the window — are stepped at all (for an inactive
    /// node `run_until_time` is a pure no-op, so skipping it is exact);
    /// under [`CosimConfig::parallel`] a dense-enough active set is
    /// fanned out over the worker pool, with every cross-node effect
    /// still merged serially in fixed `(node, capture)` order by
    /// `route_outbound`, which is what keeps the result byte-identical
    /// to the serial path.
    pub fn step_window(&mut self) -> bool {
        let Some(t_next) = self.next_event_time() else {
            return false;
        };
        let window = Window::conservative(t_next, self.net.lookahead());
        let deadline = window.deadline();
        self.active.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.next_event_time().is_some_and(|t| t <= deadline) {
                self.active.push(i);
            }
        }
        let workers = self.cfg.effective_threads(self.nodes.len()) - 1;
        if self.cfg.parallel && workers > 0 && self.active.len() >= self.cfg.parallel_min_active {
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(workers));
            pool.step_round(&mut self.nodes, &self.active, deadline);
        } else {
            for &i in &self.active {
                self.nodes[i].run_until_time(deadline);
            }
        }
        self.route_outbound();
        true
    }

    /// Drain captured cross-node messages from every node, cost them on
    /// the interconnect, and schedule the deliveries. Deterministic:
    /// nodes are drained in index order and each node's capture order is
    /// its own dispatch order — this serial merge is what erases any
    /// host-thread interleaving from the parallel stepping path. Each
    /// message is routed by the unique job that (a) placed a node on the
    /// source and (b) owns the channel id — unique because overlapping
    /// jobs have disjoint id ranges.
    fn route_outbound(&mut self) {
        let mut buf = std::mem::take(&mut self.outbox);
        for src in 0..self.nodes.len() {
            if !self.nodes[src].has_outbound() {
                continue;
            }
            self.nodes[src].drain_outbound_into(&mut buf);
            for &m in buf.iter() {
                let (job, placement) = self
                    .jobs
                    .iter()
                    .filter(|aj| aj.placement.contains(&src))
                    .find(|aj| aj.job.chan_dst_node(m.chan).is_some())
                    .map(|aj| (&aj.job, &aj.placement))
                    .expect("outbound message on a channel no job on this node owns");
                let dst_job = job.chan_dst_node(m.chan).expect("checked above") as usize;
                let dst = placement[dst_job];
                debug_assert_ne!(dst, src, "cross-node send routed back to its source");
                let (deliver_at, queued) = self.net.transfer(m.at, src, dst, m.bytes);
                self.nodes[dst].post_net_delivery(deliver_at, m.chan, m.tokens, m.at, queued);
            }
        }
        self.outbox = buf;
    }

    /// Run lockstep windows until **this handle's** launcher trees have
    /// exited (other in-flight jobs keep running and are untouched),
    /// then return the **application execution time**: the longest
    /// per-node `mpiexec` lifetime, which is what the paper's
    /// per-benchmark timers report. Fails with
    /// [`RunOutcome::Deadlock`] if every event queue drains first, or
    /// [`RunOutcome::BudgetExhausted`] after `max_events` additional
    /// dispatched events cluster-wide (hang guard). In all cases the
    /// cluster is left exactly where the run stopped.
    pub fn try_run_to_completion(
        &mut self,
        handle: &ClusterJobHandle,
        max_events: u64,
    ) -> Result<SimDuration, RunOutcome> {
        let start_events = self.events_processed();
        while !self.job_done(handle) {
            if !self.step_window() {
                return Err(RunOutcome::Deadlock);
            }
            if self.events_processed() - start_events > max_events {
                return Err(RunOutcome::BudgetExhausted);
            }
        }
        Ok(self
            .job_exec_time(handle)
            .expect("job_done implies mpiexec exited"))
    }

    /// Panicking convenience wrapper around
    /// [`Self::try_run_to_completion`] for tests and examples that treat
    /// an unfinished run as a bug.
    pub fn run_to_completion(&mut self, handle: &ClusterJobHandle, max_events: u64) -> SimDuration {
        self.try_run_to_completion(handle, max_events)
            .unwrap_or_else(|outcome| panic!("cluster job did not complete: {}", outcome.label()))
    }

    /// True iff the whole launcher tree has exited on every node **of
    /// this job** — other jobs do not affect the answer.
    pub fn job_done(&self, handle: &ClusterJobHandle) -> bool {
        handle
            .perf_pids
            .iter()
            .zip(&handle.placement)
            .all(|(&pid, &n)| self.nodes[n].tasks.get(pid).state == TaskState::Dead)
    }

    /// Application execution time of a completed job: the longest
    /// per-node `mpiexec` lifetime since launch. `None` until every
    /// node's mpiexec has exited.
    pub fn job_exec_time(&self, handle: &ClusterJobHandle) -> Option<SimDuration> {
        let mut exec = SimDuration::ZERO;
        for (j, &n) in handle.placement.iter().enumerate() {
            let node = &self.nodes[n];
            let mpiexec = find_mpiexec(node, handle.perf_pids[j])?;
            let exited = node.tasks.get(mpiexec).exited_at?;
            exec = exec.max(exited.since(handle.launched_at[j]));
        }
        Some(exec)
    }

    /// Number of jobs currently occupying cluster node `n`: launched,
    /// placed on `n`, and whose launcher tree on `n` has not yet exited.
    /// This is the quantity a batch policy's occupancy limit bounds.
    pub fn active_jobs_on(&self, n: usize) -> usize {
        self.jobs
            .iter()
            .filter(|aj| {
                aj.placement.iter().position(|&p| p == n).is_some_and(|j| {
                    self.nodes[n].tasks.get(aj.perf_pids[j]).state != TaskState::Dead
                })
            })
            .count()
    }

    /// Total jobs ever launched on the cluster.
    pub fn jobs_launched(&self) -> usize {
        self.jobs.len()
    }

    /// Merge each node's [`ChromeTraceSink`] into a single Chrome-trace
    /// document, one trace *process* per node (process id = node
    /// index plus one) so `chrome://tracing` renders the cluster as
    /// stacked per-node track groups. `sinks[i]` must be the observer
    /// id of a `ChromeTraceSink` registered on node `i`; returns
    /// `None` if any id does not resolve.
    pub fn export_chrome_trace(&self, sinks: &[ObserverId]) -> Option<String> {
        assert_eq!(sinks.len(), self.nodes.len(), "one sink id per node");
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut dropped = 0u64;
        for (i, (node, &id)) in self.nodes.iter().zip(sinks).enumerate() {
            let sink: &ChromeTraceSink = node.observer(id)?;
            dropped += sink.dropped();
            sink.write_events(&mut out, &mut first, i as u32 + 1, node.now(), |pid| {
                node.tasks.get(pid).name.clone()
            });
        }
        let _ = write!(out, "\n],\"otherData\":{{\"dropped\":{dropped}}}}}");
        Some(out)
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("net", &self.net)
            .field("jobs_launched", &self.jobs.len())
            .finish()
    }
}
