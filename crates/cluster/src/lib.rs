//! # hpl-cluster — multi-node noise resonance
//!
//! The paper's §II motivation: "when scaling to thousands of nodes, the
//! probability that in each computing phase at least one node is slowed
//! by some long kernel activity approaches 1.0. This phenomenon is
//! *noise resonance*." A single-node study (everything else in this
//! repository) measures the per-phase duration *distribution*; this crate
//! lifts that distribution to cluster scale with the standard
//! max-over-nodes model: a bulk-synchronous application's phase takes as
//! long as its slowest node, so the expected phase time is the expected
//! maximum of N draws — which climbs into the distribution's tail as N
//! grows.
//!
//! The model reproduces the two classic observations the paper cites:
//!
//! * **Amplification** (Petrini et al.): per-node noise that costs ~1 %
//!   at N=1 can cost integer factors at N=4096, because every phase
//!   waits for the unluckiest node.
//! * **Mitigation crossover**: sacrificing capacity to remove the noise
//!   tail (one idle core for the OS, or an HPL-style scheduler) loses at
//!   small N and wins at large N — the "1.87× from leaving one processor
//!   idle" effect.
//!
//! Input distributions come straight from the single-node simulator: run
//! a benchmark's per-iteration (or whole-run) times under a scheduler and
//! feed them to [`EmpiricalDist`].
//!
//! ## Two layers: analytic projection and mechanistic co-simulation
//!
//! The [`ResonanceModel`] above is *analytic*: it extrapolates a
//! measured single-node distribution to N nodes under the independence
//! assumption. The [`cosim`] and [`net`] modules add the *mechanistic*
//! counterpart: [`Cluster`] co-simulates N real kernel [`hpl_kernel::Node`]s
//! in conservative virtual-time lockstep, with cross-node MPI traffic
//! costed through a LogGP-style [`Interconnect`] (per-link latency,
//! serialisation, and FIFO contention). The two layers cross-check each
//! other — at small N with negligible network contention the mechanistic
//! run must land on the analytic prediction — and the mechanistic layer
//! additionally captures what the analytic one cannot: correlated noise,
//! network queueing, and scheduler-induced migration storms interacting
//! across nodes.

// `deny` rather than `forbid`: the one sanctioned exception is the
// `pool` module's disjoint-access worker pool, which carries its own
// safety argument and per-site `#[allow]`s.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cosim;
pub mod fault;
pub mod net;
mod pool;
pub mod window;

pub use cosim::{
    Cluster, ClusterBuilder, ClusterJobHandle, CosimConfig, JobCoordinator, Placement,
};
pub use fault::{DegradeWindow, FaultPlan, LossSpec, NodeEvent, NodeFault};
pub use net::{Fabric, FlatFabric, Interconnect, NetConfig, Route, SwitchedFabric};
pub use window::Window;

use hpl_sim::Rng;

/// Why a sample set cannot form an [`EmpiricalDist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistError {
    /// No samples were provided.
    Empty,
    /// At least one sample was NaN or infinite.
    NonFinite,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Empty => write!(f, "empirical distribution needs samples"),
            DistError::NonFinite => write!(f, "non-finite sample in empirical distribution"),
        }
    }
}

impl std::error::Error for DistError {}

/// An empirical distribution built from simulator samples; draws by
/// inverse-CDF over the sorted sample (with interpolation).
#[derive(Debug, Clone)]
pub struct EmpiricalDist {
    sorted: Vec<f64>,
}

impl EmpiricalDist {
    /// Build from samples (at least one; non-finite values rejected).
    /// Panicking wrapper over [`Self::try_new`] for literal sample sets.
    pub fn new(samples: Vec<f64>) -> Self {
        Self::try_new(samples).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build from samples, rejecting empty or non-finite input. Use this
    /// over [`Self::new`] when the samples come from measurement (a
    /// failed run can legitimately produce none).
    pub fn try_new(mut samples: Vec<f64>) -> Result<Self, DistError> {
        if samples.is_empty() {
            return Err(DistError::Empty);
        }
        if !samples.iter().all(|x| x.is_finite()) {
            return Err(DistError::NonFinite);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Ok(EmpiricalDist { sorted: samples })
    }

    /// Smallest observed value (the "noise-free" floor).
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observed value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Quantile by linear interpolation, `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Draw one value (inverse-CDF on a uniform variate).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.quantile(rng.f64())
    }

    /// Scale every sample by a constant (capacity trade-off modelling).
    pub fn scaled(&self, k: f64) -> Self {
        assert!(k > 0.0);
        EmpiricalDist {
            sorted: self.sorted.iter().map(|x| x * k).collect(),
        }
    }

    /// Clip the distribution at a quantile (models removing the noise
    /// tail, e.g. by the HPL scheduler or a dedicated OS core).
    pub fn clipped_at_quantile(&self, q: f64) -> Self {
        let cap = self.quantile(q);
        EmpiricalDist {
            sorted: self.sorted.iter().map(|x| x.min(cap)).collect(),
        }
    }
}

/// The bulk-synchronous cluster model: `phases` sequential phases, each
/// ending in a global synchronisation; per-phase per-node durations drawn
/// i.i.d. from a per-node distribution.
///
/// ```
/// use hpl_cluster::{EmpiricalDist, ResonanceModel};
///
/// // Phases of ~1 ms with a 5% chance of a 3 ms noise hit per node.
/// let mut samples = vec![1.0e-3; 95];
/// samples.extend(vec![3.0e-3; 5]);
/// let model = ResonanceModel::new(EmpiricalDist::new(samples), 100);
///
/// // At one node the tail barely matters; at 1024 nodes every phase
/// // almost surely waits for a noise-hit node: noise resonance.
/// let t1 = model.expected_time_analytic(1);
/// let t1k = model.expected_time_analytic(1024);
/// assert!(t1k > 2.0 * t1);
/// ```
#[derive(Debug, Clone)]
pub struct ResonanceModel {
    /// Per-node, per-phase duration distribution.
    pub per_phase: EmpiricalDist,
    /// Number of compute/synchronise cycles in the application.
    pub phases: u32,
}

impl ResonanceModel {
    /// Create the model.
    pub fn new(per_phase: EmpiricalDist, phases: u32) -> Self {
        assert!(phases > 0);
        ResonanceModel { per_phase, phases }
    }

    /// One Monte-Carlo run of the whole application on `nodes` nodes:
    /// the sum over phases of the max over nodes.
    pub fn run_once(&self, nodes: u32, rng: &mut Rng) -> f64 {
        assert!(nodes > 0);
        (0..self.phases)
            .map(|_| {
                (0..nodes)
                    .map(|_| self.per_phase.sample(rng))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .sum()
    }

    /// Expected application time on `nodes` nodes (mean of `reps` runs).
    pub fn expected_time(&self, nodes: u32, reps: u32, seed: u64) -> f64 {
        assert!(reps > 0);
        let mut total = 0.0;
        for r in 0..reps {
            let mut rng = Rng::for_run(seed, r as u64);
            total += self.run_once(nodes, &mut rng);
        }
        total / reps as f64
    }

    /// The noise-free application time: every phase at the distribution
    /// floor.
    pub fn ideal_time(&self) -> f64 {
        self.per_phase.min() * self.phases as f64
    }

    /// Analytic expected application time on `nodes` nodes — no Monte
    /// Carlo. For the maximum of `N` i.i.d. draws,
    /// `E[max] = ∫₀¹ q(u) · N·u^{N−1} du` with `q` the quantile function;
    /// the integral is evaluated by the trapezoid rule over a fine grid.
    /// Useful for large node counts where sampling `N` draws per phase
    /// gets expensive, and as a cross-check of the Monte-Carlo path.
    pub fn expected_time_analytic(&self, nodes: u32) -> f64 {
        assert!(nodes > 0);
        let n = nodes as f64;
        let steps = 4096;
        let mut acc = 0.0;
        let mut prev_u = 0.0f64;
        let mut prev_f = self.per_phase.quantile(0.0) * n * 0.0f64.powf(n - 1.0).max(0.0);
        // u^(n-1) at u=0 is 0 for n>1 and 1 for n=1.
        if nodes == 1 {
            prev_f = self.per_phase.quantile(0.0);
        }
        for i in 1..=steps {
            let u = i as f64 / steps as f64;
            let f = self.per_phase.quantile(u) * n * u.powf(n - 1.0);
            acc += 0.5 * (f + prev_f) * (u - prev_u);
            prev_u = u;
            prev_f = f;
        }
        acc * self.phases as f64
    }

    /// Slowdown factor vs the noise-free time, for each node count.
    pub fn slowdown_curve(&self, nodes: &[u32], reps: u32, seed: u64) -> Vec<(u32, f64)> {
        let ideal = self.ideal_time();
        nodes
            .iter()
            .map(|&n| (n, self.expected_time(n, reps, seed) / ideal))
            .collect()
    }
}

/// Compare two per-node configurations across node counts — e.g. a noisy
/// full-capacity node against a de-noised node with a capacity penalty
/// (one core given to the OS: per-phase times scaled by `p/(p−1)` but the
/// noise tail clipped). Returns `(nodes, time_a, time_b)` rows; the
/// crossover where `b` wins is the paper's §II / Petrini effect.
pub fn compare_configs(
    a: &ResonanceModel,
    b: &ResonanceModel,
    nodes: &[u32],
    reps: u32,
    seed: u64,
) -> Vec<(u32, f64, f64)> {
    nodes
        .iter()
        .map(|&n| {
            (
                n,
                a.expected_time(n, reps, seed),
                b.expected_time(n, reps, seed ^ 0x9E37_79B9),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A mildly noisy phase distribution: mostly 1.0, a 5 % tail of 3.0.
    fn noisy() -> EmpiricalDist {
        let mut v = vec![1.0; 95];
        v.extend(vec![3.0; 5]);
        EmpiricalDist::new(v)
    }

    #[test]
    fn dist_basics() {
        let d = EmpiricalDist::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 3.0);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 3.0);
        assert!((d.quantile(0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_within_range() {
        let d = noisy();
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=3.0).contains(&x));
        }
    }

    #[test]
    fn scaling_and_clipping() {
        let d = noisy();
        assert_eq!(d.scaled(2.0).max(), 6.0);
        let clipped = d.clipped_at_quantile(0.90);
        assert!(clipped.max() < 3.0);
        assert_eq!(clipped.min(), 1.0);
    }

    #[test]
    fn slowdown_grows_with_node_count() {
        let m = ResonanceModel::new(noisy(), 50);
        let curve = m.slowdown_curve(&[1, 16, 256, 4096], 40, 7);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "slowdown must be monotone: {curve:?}");
        }
        // At one node the slowdown is modest (mean/min = 1.1).
        assert!(curve[0].1 < 1.3);
        // At 4096 nodes essentially every phase hits the tail: ~3x.
        assert!(curve[3].1 > 2.5, "resonance amplification: {curve:?}");
    }

    #[test]
    fn denoised_config_wins_at_scale() {
        // Config A: full capacity, noisy. Config B: 8/7 slower (one core
        // donated to the OS) but tail-free — the Petrini trade.
        let a = ResonanceModel::new(noisy(), 50);
        let b = ResonanceModel::new(noisy().clipped_at_quantile(0.94).scaled(8.0 / 7.0), 50);
        let rows = compare_configs(&a, &b, &[1, 4096], 40, 11);
        let (_, a1, b1) = rows[0];
        let (_, a4k, b4k) = rows[1];
        assert!(b1 > a1, "at one node the capacity loss dominates");
        assert!(b4k < a4k, "at scale the tail dominates");
        // Amplification factor a4k/b4k in the Petrini ballpark (>1.5x).
        assert!(a4k / b4k > 1.5, "ratio {}", a4k / b4k);
    }

    #[test]
    fn analytic_matches_monte_carlo() {
        let m = ResonanceModel::new(noisy(), 20);
        for nodes in [1u32, 8, 128, 2048] {
            let mc = m.expected_time(nodes, 200, 5);
            let an = m.expected_time_analytic(nodes);
            let rel = (mc - an).abs() / an;
            assert!(rel < 0.05, "nodes={nodes}: mc={mc} analytic={an}");
        }
    }

    #[test]
    fn analytic_single_node_is_the_mean() {
        let m = ResonanceModel::new(noisy(), 10);
        let an = m.expected_time_analytic(1);
        let expected = m.per_phase.mean() * 10.0;
        assert!(
            (an - expected).abs() / expected < 0.01,
            "{an} vs {expected}"
        );
    }

    #[test]
    fn analytic_approaches_max_at_scale() {
        let m = ResonanceModel::new(noisy(), 1);
        let an = m.expected_time_analytic(1_000_000);
        assert!(an > 0.99 * m.per_phase.max());
    }

    #[test]
    fn deterministic_given_seed() {
        let m = ResonanceModel::new(noisy(), 10);
        assert_eq!(m.expected_time(64, 10, 3), m.expected_time(64, 10, 3));
    }

    #[test]
    #[should_panic]
    fn empty_dist_panics() {
        EmpiricalDist::new(vec![]);
    }

    #[test]
    fn try_new_reports_bad_input_instead_of_panicking() {
        assert_eq!(
            EmpiricalDist::try_new(vec![]).unwrap_err(),
            DistError::Empty
        );
        assert_eq!(
            EmpiricalDist::try_new(vec![1.0, f64::NAN]).unwrap_err(),
            DistError::NonFinite
        );
        assert_eq!(
            EmpiricalDist::try_new(vec![1.0, f64::INFINITY]).unwrap_err(),
            DistError::NonFinite
        );
        let d = EmpiricalDist::try_new(vec![3.0, 1.0, 2.0]).expect("valid samples");
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 3.0);
    }
}
