//! Interconnect model for the mechanistic cluster co-simulation.
//!
//! Messages are costed with a LogGP-flavoured model: a per-link wire
//! latency `alpha` plus a serialisation term `beta · bytes`, with FIFO
//! contention per link — a message that arrives at a busy link waits for
//! the link to drain before its serialisation starts. The [`Fabric`]
//! trait maps a `(src, dst)` node pair to the ordered list of links the
//! message crosses, so topologies beyond the flat crossbar (e.g. a
//! two-level switch) plug in without touching the co-simulation driver.
//!
//! The co-simulation's conservative lookahead equals the *minimum* link
//! `alpha` over the fabric: a message sent at time `t` can never be
//! delivered before `t + alpha_min`, so nodes may safely advance
//! `alpha_min` past the cluster-wide next event without missing a
//! cross-node wakeup.

use crate::fault::{DegradeWindow, LossSpec};
use hpl_sim::time::{SimDuration, SimTime};

/// Per-link cost parameters of the LogGP-style model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Wire latency per traversed fabric (charged once per message).
    pub alpha: SimDuration,
    /// Serialisation cost per byte on each link the message crosses.
    pub beta_ns_per_byte: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            // Quadrics/early-InfiniBand-era numbers to match the paper's
            // cluster generation: ~5 us one-way latency, ~1 GB/s links.
            alpha: SimDuration::from_micros(5),
            beta_ns_per_byte: 1.0,
        }
    }
}

impl NetConfig {
    /// Serialisation time for a message of `bytes` on one link.
    pub fn serialise(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos((self.beta_ns_per_byte * bytes as f64).round() as u64)
    }
}

/// A path through the fabric: the ordered links crossed plus the cost
/// parameters applied along them.
#[derive(Debug, Clone)]
pub struct Route {
    /// Link indices in traversal order (store-and-forward).
    pub links: Vec<usize>,
    /// Cost parameters for this path.
    pub cfg: NetConfig,
}

/// A network topology: maps node pairs to link paths.
pub trait Fabric {
    /// Number of nodes attached to the fabric.
    fn nodes(&self) -> usize;
    /// Total number of contention domains (FIFO links).
    fn links(&self) -> usize;
    /// Path for a `src -> dst` message, written into `links` (cleared
    /// first); returns the cost parameters for the path. `src != dst`.
    /// This is the allocation-free primitive [`Interconnect::transfer`]
    /// costs every message through.
    fn route_into(&self, src: usize, dst: usize, links: &mut Vec<usize>) -> NetConfig;
    /// Path for a `src -> dst` message as an owned [`Route`]. `src != dst`.
    fn route(&self, src: usize, dst: usize) -> Route {
        let mut links = Vec::new();
        let cfg = self.route_into(src, dst, &mut links);
        Route { links, cfg }
    }
    /// Minimum `alpha` over all paths — the co-simulation lookahead.
    fn min_alpha(&self) -> SimDuration;
}

/// Full crossbar: every node owns one egress link, and concurrent sends
/// from the same node serialise on it (the LogGP gap at the NIC). No
/// shared core, so disjoint pairs never contend.
#[derive(Debug, Clone)]
pub struct FlatFabric {
    nodes: usize,
    cfg: NetConfig,
}

impl FlatFabric {
    /// A crossbar over `nodes` nodes with uniform link parameters.
    pub fn new(nodes: usize, cfg: NetConfig) -> Self {
        assert!(nodes >= 1, "fabric needs at least one node");
        assert!(
            cfg.alpha >= SimDuration::from_nanos(1),
            "alpha must be >= 1ns: it bounds the co-simulation lookahead"
        );
        FlatFabric { nodes, cfg }
    }
}

impl Fabric for FlatFabric {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn links(&self) -> usize {
        self.nodes
    }

    fn route_into(&self, src: usize, dst: usize, links: &mut Vec<usize>) -> NetConfig {
        debug_assert!(src != dst && src < self.nodes && dst < self.nodes);
        links.clear();
        links.push(src);
        self.cfg
    }

    fn min_alpha(&self) -> SimDuration {
        self.cfg.alpha
    }
}

/// Two-level switched fabric: each message crosses its source's uplink
/// and its destination's downlink, both FIFO. Incast (many senders, one
/// receiver) therefore queues on the receiver's downlink — contention the
/// crossbar cannot express.
#[derive(Debug, Clone)]
pub struct SwitchedFabric {
    nodes: usize,
    cfg: NetConfig,
}

impl SwitchedFabric {
    /// A single-switch fabric over `nodes` nodes.
    pub fn new(nodes: usize, cfg: NetConfig) -> Self {
        assert!(nodes >= 1, "fabric needs at least one node");
        assert!(
            cfg.alpha >= SimDuration::from_nanos(1),
            "alpha must be >= 1ns: it bounds the co-simulation lookahead"
        );
        SwitchedFabric { nodes, cfg }
    }
}

impl Fabric for SwitchedFabric {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn links(&self) -> usize {
        2 * self.nodes
    }

    fn route_into(&self, src: usize, dst: usize, links: &mut Vec<usize>) -> NetConfig {
        debug_assert!(src != dst && src < self.nodes && dst < self.nodes);
        // Links [0, n) are uplinks, [n, 2n) downlinks.
        links.clear();
        links.extend_from_slice(&[src, self.nodes + dst]);
        self.cfg
    }

    fn min_alpha(&self) -> SimDuration {
        self.cfg.alpha
    }
}

/// The shared interconnect: a fabric plus per-link FIFO occupancy.
///
/// [`Interconnect::transfer`] is the single costing entry point: given a
/// send timestamp it returns when the message reaches the destination
/// node and how long it sat queued behind earlier traffic. The busy
/// state makes the model *mechanistic* — ordering of transfers matters,
/// which is why the co-simulation routes messages in deterministic
/// (node, capture) order.
pub struct Interconnect {
    fabric: Box<dyn Fabric>,
    busy_until: Vec<SimTime>,
    messages: u64,
    bytes: u64,
    /// Scratch path buffer reused across transfers, so costing a
    /// message never allocates.
    route_buf: Vec<usize>,
    /// Link-level fault state, installed by the cluster builder from a
    /// [`crate::FaultPlan`]. `None` (the default) is the zero-cost
    /// healthy path.
    faults: Option<LinkFaults>,
    retransmits: u64,
}

/// The link-level slice of a fault plan: loss/retransmit and
/// degradation. Node events stay with the co-simulation driver.
#[derive(Debug, Clone)]
pub(crate) struct LinkFaults {
    pub seed: u64,
    pub loss: Option<LossSpec>,
    pub degrade: Vec<DegradeWindow>,
}

impl Interconnect {
    /// Wrap a fabric with idle links.
    pub fn new(fabric: Box<dyn Fabric>) -> Self {
        let links = fabric.links();
        Interconnect {
            fabric,
            busy_until: vec![SimTime::ZERO; links],
            messages: 0,
            bytes: 0,
            route_buf: Vec::new(),
            faults: None,
            retransmits: 0,
        }
    }

    /// Install the link-level slice of a fault plan. Called once by the
    /// cluster builder, before any traffic flows.
    pub(crate) fn install_faults(&mut self, faults: LinkFaults) {
        self.faults = Some(faults);
    }

    /// Crossbar shorthand.
    pub fn flat(nodes: usize, cfg: NetConfig) -> Self {
        Interconnect::new(Box::new(FlatFabric::new(nodes, cfg)))
    }

    /// Single-switch shorthand.
    pub fn switched(nodes: usize, cfg: NetConfig) -> Self {
        Interconnect::new(Box::new(SwitchedFabric::new(nodes, cfg)))
    }

    /// Number of nodes the fabric connects.
    pub fn nodes(&self) -> usize {
        self.fabric.nodes()
    }

    /// Conservative lookahead: no message delivers sooner than this
    /// after its send.
    pub fn lookahead(&self) -> SimDuration {
        self.fabric.min_alpha()
    }

    /// Messages transferred so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Payload bytes transferred so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Retransmissions charged so far (0 without a lossy fault plan).
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Cost a `src -> dst` message of `bytes` sent at `at`. Returns
    /// `(deliver_at, queued)`: the arrival time at the destination node
    /// and the time spent waiting for busy links.
    ///
    /// Under an installed fault plan, degradation windows scale the
    /// path's cost parameters by the send time's combined factor, and
    /// the loss model may charge retransmission timeouts on top of the
    /// arrival time. Both only ever *delay* delivery, so the
    /// conservative lookahead ([`Self::lookahead`]) stays a valid lower
    /// bound.
    pub fn transfer(
        &mut self,
        at: SimTime,
        src: usize,
        dst: usize,
        bytes: u64,
    ) -> (SimTime, SimDuration) {
        let mut cfg = self.fabric.route_into(src, dst, &mut self.route_buf);
        if let Some(f) = &self.faults {
            let mut factor = 1u32;
            for w in &f.degrade {
                if w.from <= at && at < w.to {
                    factor = factor.saturating_mul(w.factor);
                }
            }
            if factor > 1 {
                cfg.alpha = cfg.alpha * factor as u64;
                cfg.beta_ns_per_byte *= factor as f64;
            }
        }
        let ser = cfg.serialise(bytes);
        let mut head = at;
        let mut queued = SimDuration::ZERO;
        for &link in &self.route_buf {
            let start = head.max(self.busy_until[link]);
            queued += start.since(head);
            self.busy_until[link] = start + ser;
            head = start + ser;
        }
        let msg_index = self.messages;
        self.messages += 1;
        self.bytes += bytes;
        let mut deliver = head + cfg.alpha;
        if let Some(f) = &self.faults {
            if let Some(loss) = &f.loss {
                let lost = loss.retries_for(f.seed, msg_index);
                if lost > 0 {
                    deliver += loss.rto * lost as u64;
                    self.retransmits += lost as u64;
                }
            }
        }
        (deliver, queued)
    }
}

impl std::fmt::Debug for Interconnect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interconnect")
            .field("nodes", &self.fabric.nodes())
            .field("links", &self.fabric.links())
            .field("messages", &self.messages)
            .field("bytes", &self.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NetConfig {
        NetConfig {
            alpha: SimDuration::from_micros(5),
            beta_ns_per_byte: 1.0,
        }
    }

    #[test]
    fn uncontended_latency_is_alpha_plus_serialisation() {
        let mut net = Interconnect::flat(4, cfg());
        let at = SimTime::from_nanos(1_000);
        let (deliver, queued) = net.transfer(at, 0, 1, 1_000);
        // 1000 B at 1 ns/B + 5 us alpha.
        assert_eq!(
            deliver,
            at + SimDuration::from_nanos(1_000) + SimDuration::from_micros(5)
        );
        assert_eq!(queued, SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_sends_queue_on_the_egress_link() {
        let mut net = Interconnect::flat(4, cfg());
        let at = SimTime::from_nanos(0);
        let (d1, q1) = net.transfer(at, 0, 1, 1_000);
        let (d2, q2) = net.transfer(at, 0, 2, 1_000);
        assert_eq!(q1, SimDuration::ZERO);
        // Second message waits out the first's serialisation.
        assert_eq!(q2, SimDuration::from_nanos(1_000));
        assert_eq!(d2, d1 + SimDuration::from_nanos(1_000));
    }

    #[test]
    fn disjoint_pairs_do_not_contend_on_a_crossbar() {
        let mut net = Interconnect::flat(4, cfg());
        let at = SimTime::from_nanos(0);
        let (_, q1) = net.transfer(at, 0, 1, 1_000_000);
        let (_, q2) = net.transfer(at, 2, 3, 1_000_000);
        assert_eq!(q1, SimDuration::ZERO);
        assert_eq!(q2, SimDuration::ZERO);
    }

    #[test]
    fn incast_queues_on_switched_downlink() {
        let mut net = Interconnect::switched(4, cfg());
        let at = SimTime::from_nanos(0);
        let (_, q1) = net.transfer(at, 1, 0, 1_000);
        let (_, q2) = net.transfer(at, 2, 0, 1_000);
        assert_eq!(q1, SimDuration::ZERO);
        // Distinct uplinks, shared downlink at node 0.
        assert_eq!(q2, SimDuration::from_nanos(1_000));
    }

    #[test]
    fn degrade_window_scales_cost_only_inside_the_window() {
        use crate::fault::DegradeWindow;
        let mut net = Interconnect::flat(4, cfg());
        net.install_faults(LinkFaults {
            seed: 0,
            loss: None,
            degrade: vec![DegradeWindow {
                from: SimTime::from_nanos(10_000),
                to: SimTime::from_nanos(20_000),
                factor: 3,
            }],
        });
        // Before the window: base cost.
        let at = SimTime::from_nanos(1_000);
        let (d, _) = net.transfer(at, 0, 1, 1_000);
        assert_eq!(
            d,
            at + SimDuration::from_nanos(1_000) + SimDuration::from_micros(5)
        );
        // Inside: alpha and serialisation both 3x.
        let at = SimTime::from_nanos(15_000);
        let (d, _) = net.transfer(at, 2, 3, 1_000);
        assert_eq!(
            d,
            at + SimDuration::from_nanos(3_000) + SimDuration::from_micros(15)
        );
        // Delivery still respects the healthy lookahead lower bound.
        assert!(d >= at + net.lookahead());
    }

    #[test]
    fn lossy_plan_charges_deterministic_retransmits() {
        use crate::fault::LossSpec;
        let faults = LinkFaults {
            seed: 42,
            loss: Some(LossSpec {
                ppm: 400_000,
                rto: SimDuration::from_micros(50),
                max_retries: 4,
            }),
            degrade: Vec::new(),
        };
        let run = |faults: Option<LinkFaults>| {
            let mut net = Interconnect::flat(4, cfg());
            if let Some(f) = faults {
                net.install_faults(f);
            }
            let mut deliveries = Vec::new();
            for i in 0..50u64 {
                let at = SimTime::from_nanos(i * 100_000);
                deliveries.push(net.transfer(at, 0, 1, 64).0);
            }
            (deliveries, net.retransmits())
        };
        let (healthy, r0) = run(None);
        let (lossy_a, ra) = run(Some(faults.clone()));
        let (lossy_b, rb) = run(Some(faults));
        assert_eq!(r0, 0);
        assert!(ra > 0, "40% loss never fired across 50 messages");
        assert_eq!((lossy_a.clone(), ra), (lossy_b, rb), "loss must replay");
        // Retransmits only ever delay delivery, in whole-RTO steps.
        for (h, l) in healthy.iter().zip(&lossy_a) {
            assert!(l >= h);
            assert_eq!((l.since(*h)).as_nanos() % 50_000, 0);
        }
    }

    #[test]
    fn delivery_never_beats_the_lookahead() {
        let mut net = Interconnect::switched(8, cfg());
        let at = SimTime::from_nanos(123);
        for dst in 1..8 {
            let (deliver, _) = net.transfer(at, 0, dst, 0);
            assert!(deliver >= at + net.lookahead());
        }
    }
}
