//! Persistent worker pool for parallel window stepping.
//!
//! Within one conservative window the per-node simulations are
//! independent by construction (no message sent in the window can
//! deliver inside it), so [`Cluster::step_window`](crate::Cluster)
//! may run the active nodes on however many host threads it likes —
//! the *result* is identical for every interleaving because no two
//! threads ever touch the same node and all cross-node effects are
//! merged serially afterwards, in fixed `(node, capture)` order.
//!
//! Windows are short (microseconds of host work at typical event
//! densities), so spawning OS threads per window would swamp the work;
//! this pool keeps its workers alive across windows and hands them each
//! round through an atomic round counter. Workers spin briefly for the
//! next round before parking on a condvar, which keeps back-to-back
//! window latency in the sub-microsecond range while an idle pool
//! costs nothing.
//!
//! ## Safety argument
//!
//! This is the one module in the crate allowed to use `unsafe` (the
//! crate is `deny(unsafe_code)`), and the whole argument is disjoint
//! access plus a strict happens-before protocol:
//!
//! * A round's work list is a set of *distinct* node indices; an index
//!   is claimed by exactly one thread via `fetch_add` on a shared
//!   cursor, so no node is ever aliased by two threads.
//! * [`hpl_kernel::Node`] is `Send` (enforced at compile time in
//!   `hpl-kernel`), so mutating a node from a worker thread is sound
//!   once exclusivity is established.
//! * The caller publishes the round descriptor before releasing
//!   workers (mutex-protected round counter) and does not touch the
//!   node slice again until every worker has checked in
//!   (acquire/release on the `remaining` counter), so the `*mut Node`
//!   never outlives the borrow it came from.
//! * A worker panic is caught, recorded, and re-raised on the caller's
//!   thread at the end of the round — the protocol still completes, so
//!   no thread is left waiting forever.

use hpl_kernel::Node;
use hpl_sim::time::SimTime;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Indices are claimed in chunks to cut cursor contention; small enough
/// that a straggler node cannot hide a meaningful load imbalance.
const CLAIM_CHUNK: usize = 4;

/// Bounded spin before a worker parks waiting for the next round.
const SPIN_ROUNDS: u32 = 256;

/// One round's work: step `active[..]` (indices into the node slice at
/// `nodes`) up to the inclusive `deadline`.
#[derive(Clone, Copy)]
struct RoundDesc {
    nodes: *mut Node,
    nodes_len: usize,
    active: *const usize,
    active_len: usize,
    deadline: SimTime,
}

impl RoundDesc {
    const IDLE: RoundDesc = RoundDesc {
        nodes: std::ptr::null_mut(),
        nodes_len: 0,
        active: std::ptr::null(),
        active_len: 0,
        deadline: SimTime::ZERO,
    };
}

// SAFETY: the raw pointers are only dereferenced between round start and
// the round's completion barrier, during which the pool owner guarantees
// the pointees are alive and accessed disjointly (see module docs).
#[allow(unsafe_code)]
unsafe impl Send for RoundDesc {}

struct Ctrl {
    /// Monotonic round id; bumped (together with the `round` atomic) to
    /// release workers on a new round.
    round: u64,
    /// Work for the current round.
    desc: RoundDesc,
    /// Set (with a final round bump) to shut the pool down.
    shutdown: bool,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    start: Condvar,
    /// Lock-free mirror of `Ctrl::round` so idle workers can spin for
    /// the next round without hammering the mutex.
    round: AtomicU64,
    /// Cursor into the active list; claimed in `CLAIM_CHUNK` strides.
    cursor: AtomicUsize,
    /// Workers (excluding the caller) still inside the current round.
    remaining: AtomicUsize,
    /// A worker panicked during the current round.
    panicked: AtomicBool,
    done_lock: Mutex<()>,
    done: Condvar,
}

/// A persistent pool of `workers + 1` stepping threads: the `workers`
/// spawned here plus the calling thread, which joins every round as a
/// peer instead of idling at the barrier.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` parked worker threads (callers pass their thread
    /// budget minus one: the caller itself works too).
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                round: 0,
                desc: RoundDesc::IDLE,
                shutdown: false,
            }),
            start: Condvar::new(),
            round: AtomicU64::new(0),
            cursor: AtomicUsize::new(0),
            remaining: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cosim-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn co-simulation worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Step every node in `active` (distinct indices into `nodes`) up to
    /// the inclusive `deadline`, on all pool threads plus the calling
    /// thread. Blocks until the whole round is done. Panics if a worker
    /// panicked (after the round has fully completed, so the nodes are
    /// not concurrently borrowed by anyone).
    pub(crate) fn step_round(&self, nodes: &mut [Node], active: &[usize], deadline: SimTime) {
        debug_assert!(active.iter().all(|&i| i < nodes.len()));
        let desc = RoundDesc {
            nodes: nodes.as_mut_ptr(),
            nodes_len: nodes.len(),
            active: active.as_ptr(),
            active_len: active.len(),
            deadline,
        };
        self.shared.cursor.store(0, Ordering::Relaxed);
        self.shared
            .remaining
            .store(self.handles.len(), Ordering::Release);
        {
            let mut ctrl = self.shared.ctrl.lock().expect("pool mutex");
            ctrl.desc = desc;
            ctrl.round += 1;
            self.shared.round.store(ctrl.round, Ordering::Release);
            self.shared.start.notify_all();
        }
        // The caller is a peer worker for the round.
        run_round(&self.shared, desc);
        // Wait for the spawned workers: spin briefly (rounds are short),
        // then park on the done condvar.
        let mut spins = 0u32;
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            if spins < SPIN_ROUNDS {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            let guard = self.shared.done_lock.lock().expect("pool mutex");
            let _guard = self
                .shared
                .done
                .wait_timeout(guard, std::time::Duration::from_millis(1))
                .expect("pool mutex");
        }
        if self.shared.panicked.swap(false, Ordering::AcqRel) {
            panic!("a co-simulation worker panicked while stepping a window");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut ctrl = self.shared.ctrl.lock().expect("pool mutex");
            ctrl.shutdown = true;
            ctrl.round += 1;
            self.shared.round.store(ctrl.round, Ordering::Release);
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claim and step nodes until the round's active list is exhausted.
fn run_round(shared: &Shared, desc: RoundDesc) {
    let result = catch_unwind(AssertUnwindSafe(|| loop {
        let base = shared.cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
        if base >= desc.active_len {
            break;
        }
        let end = (base + CLAIM_CHUNK).min(desc.active_len);
        for k in base..end {
            // SAFETY: `active[k]` indices are distinct and in-bounds,
            // each `k` is claimed by exactly one thread (fetch_add), and
            // the owner keeps `nodes`/`active` alive and unaliased until
            // the round barrier — see the module-level argument.
            #[allow(unsafe_code)]
            let node = unsafe {
                let i = *desc.active.add(k);
                debug_assert!(i < desc.nodes_len);
                &mut *desc.nodes.add(i)
            };
            node.run_until_time(desc.deadline);
        }
    }));
    if result.is_err() {
        shared.panicked.store(true, Ordering::Release);
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_round = 0u64;
    loop {
        // Wait for a new round: spin briefly on the lock-free mirror
        // (windows arrive back-to-back while a job is in flight), then
        // park on the condvar. The re-check under the lock before
        // waiting closes the lost-wakeup window.
        let mut spins = 0u32;
        while shared.round.load(Ordering::Acquire) == seen_round {
            if spins < SPIN_ROUNDS {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            let guard = shared.ctrl.lock().expect("pool mutex");
            if guard.round == seen_round && !guard.shutdown {
                let _unused = shared.start.wait(guard).expect("pool mutex");
            }
        }
        let desc;
        {
            let ctrl = shared.ctrl.lock().expect("pool mutex");
            if ctrl.shutdown {
                return;
            }
            seen_round = ctrl.round;
            desc = ctrl.desc;
        }
        run_round(shared, desc);
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last worker out: wake the owner if it parked.
            let _g = shared.done_lock.lock().expect("pool mutex");
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_kernel::NodeBuilder;
    use hpl_sim::time::SimDuration;
    use hpl_topology::Topology;

    fn nodes(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| {
                NodeBuilder::new(Topology::smp(2))
                    .with_seed(i as u64 + 1)
                    .build()
            })
            .collect()
    }

    #[test]
    fn pool_steps_every_active_node() {
        let mut ns = nodes(8);
        let serial: Vec<Node> = nodes(8);
        let pool = WorkerPool::new(2);
        let deadline = SimTime::ZERO + SimDuration::from_millis(10);
        let active: Vec<usize> = (0..ns.len()).collect();
        pool.step_round(&mut ns, &active, deadline);
        // Every node advanced exactly as a serial run would have.
        for (par, mut ser) in ns.into_iter().zip(serial) {
            ser.run_until_time(deadline);
            assert_eq!(par.state_fingerprint(), ser.state_fingerprint());
            assert_eq!(par.events_processed(), ser.events_processed());
        }
    }

    #[test]
    fn pool_rounds_are_reusable_and_subsettable() {
        let mut ns = nodes(4);
        let pool = WorkerPool::new(1);
        let d1 = SimTime::ZERO + SimDuration::from_millis(1);
        let d2 = SimTime::ZERO + SimDuration::from_millis(2);
        pool.step_round(&mut ns, &[0, 2], d1);
        pool.step_round(&mut ns, &[0, 1, 2, 3], d2);
        for n in &ns {
            assert!(n.now() <= d2);
        }
        // Nodes 1 and 3 skipped round one; all caught up by round two.
        assert!(ns[0].events_processed() > 0);
        assert!(ns[1].events_processed() > 0);
    }
}
