//! Deterministic fault injection for the cluster co-simulation.
//!
//! A [`FaultPlan`] is a *schedule*, fixed before the run starts: link
//! degradation windows, a message-loss model with deterministic
//! timeout+retransmit, and node crash/drain/restart events. Because the
//! plan is data (seeded, text round-trippable like scenarios and batch
//! traces) and every draw is keyed off the plan seed plus a
//! deterministic message index, a faulty run is exactly as replayable as
//! a healthy one — same fingerprints on the fast and reference event
//! loops, and byte-identical between serial and pooled window stepping.
//!
//! Determinism argument, per fault class:
//!
//! * **Loss/retransmit** — the k-th transmission attempt of the n-th
//!   message on the interconnect is lost iff a hash of
//!   `(seed, n, k)` falls below the configured probability. The message
//!   index n is assigned by [`crate::Interconnect::transfer`], which the
//!   co-simulation only ever calls from the serial merge phase in fixed
//!   `(node, capture)` order, so n — and therefore every loss decision —
//!   is identical across host execution policies. A lost attempt costs
//!   one retransmission timeout; the payload still arrives (reliable
//!   transport), only later. Delays only *increase* delivery times, so
//!   the conservative lookahead (minimum link alpha) stays valid.
//! * **Degradation** — a [`DegradeWindow`] scales a message's cost
//!   parameters by an integer factor when its send time falls inside the
//!   window. Scaling only slows links; the lookahead lower bound is
//!   untouched.
//! * **Crash/drain/restart** — node events are applied at window
//!   boundaries of the lockstep loop, in plan order, before any node is
//!   stepped — a serial decision identical on every execution policy.
//!
//! Faults are configured where the cluster is built
//! ([`crate::ClusterBuilder::faults`]) — not bolted on mid-run — so a
//! run's fault schedule is part of its identity, like its seed.

use hpl_sim::time::{SimDuration, SimTime};
use hpl_sim::Rng;

/// Message-loss model: each transmission attempt is independently lost
/// with probability `ppm / 1_000_000`, costing one retransmission
/// timeout; after `max_retries` lost attempts the next attempt succeeds
/// unconditionally (the transport is reliable — loss delays, never
/// drops, the payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossSpec {
    /// Per-attempt loss probability in parts per million (≤ 1_000_000).
    pub ppm: u32,
    /// Retransmission timeout charged per lost attempt.
    pub rto: SimDuration,
    /// Maximum lost attempts per message.
    pub max_retries: u32,
}

impl LossSpec {
    /// Number of lost attempts (each costing one RTO) for message
    /// `msg_index`, drawn deterministically from `seed`.
    pub fn retries_for(&self, seed: u64, msg_index: u64) -> u32 {
        if self.ppm == 0 {
            return 0;
        }
        let mut lost = 0u32;
        while lost < self.max_retries {
            let draw = mix(seed, msg_index, lost) % 1_000_000;
            if draw >= self.ppm as u64 {
                break;
            }
            lost += 1;
        }
        lost
    }
}

/// splitmix64 over the (seed, message, attempt) triple: a stateless,
/// order-independent hash so loss decisions never depend on how many
/// *other* draws happened before this one.
fn mix(seed: u64, msg: u64, attempt: u32) -> u64 {
    let mut z = seed
        ^ msg.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ ((attempt as u64) << 32).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A half-open interval `[from, to)` during which every link's latency
/// and serialisation cost are multiplied by `factor` (≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeWindow {
    /// Window start (inclusive), by message send time.
    pub from: SimTime,
    /// Window end (exclusive).
    pub to: SimTime,
    /// Integer cost multiplier (≥ 1; 1 is a no-op).
    pub factor: u32,
}

/// What happens to a node at a [`NodeEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFault {
    /// The node dies: frozen clock, pending deliveries dropped, every
    /// job with a live launcher tree on it marked failed.
    Crash,
    /// The node stops accepting *new* work (batch policies skip it) but
    /// keeps running what it has.
    Drain,
    /// A crashed node comes back as a **fresh kernel** (rebuilt by the
    /// cluster's node factory) at the cluster's current time; on a
    /// merely drained node this just lifts the drain.
    Restart,
}

/// One scheduled node fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeEvent {
    /// When the fault lands (applied at the first window boundary at or
    /// after this time).
    pub at: SimTime,
    /// Cluster node index.
    pub node: usize,
    /// What happens.
    pub kind: NodeFault,
}

/// A deterministic, pre-declared fault schedule for one cluster run.
///
/// The empty plan ([`FaultPlan::none`]) is the default and is
/// *zero-cost*: no fault state is consulted anywhere in the hot paths,
/// and every observable output is byte-identical to a build without the
/// fault layer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the loss draws (independent of node seeds).
    pub seed: u64,
    /// Message-loss model, if any.
    pub loss: Option<LossSpec>,
    /// Link-degradation windows.
    pub degrade: Vec<DegradeWindow>,
    /// Node crash/drain/restart schedule.
    pub events: Vec<NodeEvent>,
}

impl FaultPlan {
    /// The empty plan: a healthy cluster.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True iff the plan schedules nothing.
    pub fn is_none(&self) -> bool {
        self.loss.is_none() && self.degrade.is_empty() && self.events.is_empty()
    }

    /// Set the loss-draw seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable message loss: `ppm` parts-per-million per attempt, `rto`
    /// charged per lost attempt, at most `max_retries` losses/message.
    pub fn with_loss(mut self, ppm: u32, rto: SimDuration, max_retries: u32) -> Self {
        assert!(ppm <= 1_000_000, "loss probability is parts per million");
        self.loss = Some(LossSpec {
            ppm,
            rto,
            max_retries,
        });
        self
    }

    /// Add a link-degradation window.
    pub fn degrade(mut self, from: SimTime, to: SimTime, factor: u32) -> Self {
        assert!(from < to, "degrade window must be non-empty");
        assert!(factor >= 1, "degrade factor must be >= 1");
        self.degrade.push(DegradeWindow { from, to, factor });
        self
    }

    /// Schedule a node crash.
    pub fn crash(mut self, node: usize, at: SimTime) -> Self {
        self.events.push(NodeEvent {
            at,
            node,
            kind: NodeFault::Crash,
        });
        self
    }

    /// Schedule a node drain.
    pub fn drain(mut self, node: usize, at: SimTime) -> Self {
        self.events.push(NodeEvent {
            at,
            node,
            kind: NodeFault::Drain,
        });
        self
    }

    /// Schedule a node restart.
    pub fn restart(mut self, node: usize, at: SimTime) -> Self {
        self.events.push(NodeEvent {
            at,
            node,
            kind: NodeFault::Restart,
        });
        self
    }

    /// True iff the plan contains a restart event (which requires the
    /// cluster to be built with a node factory).
    pub fn has_restarts(&self) -> bool {
        self.events.iter().any(|e| e.kind == NodeFault::Restart)
    }

    /// Events in application order: by time, ties by node index, then by
    /// kind (crash before drain before restart — a same-instant
    /// crash+restart pair means "reboot").
    pub fn sorted_events(&self) -> Vec<NodeEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| (e.at, e.node, kind_order(e.kind)));
        evs
    }

    /// Combined degradation factor for a message sent at `at` (product
    /// of all windows containing `at`; 1 when none do).
    pub fn degrade_factor_at(&self, at: SimTime) -> u32 {
        let mut factor = 1u32;
        for w in &self.degrade {
            if w.from <= at && at < w.to {
                factor = factor.saturating_mul(w.factor);
            }
        }
        factor
    }

    /// Serialise to the `fault-plan v1` text format. Integer-only
    /// fields, so [`Self::from_text`] round-trips exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::from("fault-plan v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        if let Some(l) = &self.loss {
            out.push_str(&format!(
                "loss {} {} {}\n",
                l.ppm,
                l.rto.as_nanos(),
                l.max_retries
            ));
        }
        for w in &self.degrade {
            out.push_str(&format!(
                "degrade {} {} {}\n",
                w.from.as_nanos(),
                w.to.as_nanos(),
                w.factor
            ));
        }
        for e in &self.events {
            let kind = match e.kind {
                NodeFault::Crash => "crash",
                NodeFault::Drain => "drain",
                NodeFault::Restart => "restart",
            };
            out.push_str(&format!("{kind} {} {}\n", e.node, e.at.as_nanos()));
        }
        out
    }

    /// Parse the `fault-plan v1` text format. Inverse of
    /// [`Self::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        match lines.next() {
            Some("fault-plan v1") => {}
            other => return Err(format!("expected 'fault-plan v1' header, got {other:?}")),
        }
        let mut plan = FaultPlan::none();
        for line in lines {
            let mut toks = line.split_whitespace();
            let key = toks.next().expect("non-empty line has a first token");
            let mut next = |what: &str| -> Result<u64, String> {
                toks.next()
                    .ok_or_else(|| format!("{key}: missing {what}"))?
                    .parse::<u64>()
                    .map_err(|e| format!("{key}: bad {what}: {e}"))
            };
            match key {
                "seed" => plan.seed = next("seed")?,
                "loss" => {
                    let ppm = next("ppm")? as u32;
                    if ppm > 1_000_000 {
                        return Err(format!("loss: ppm {ppm} > 1000000"));
                    }
                    let rto = SimDuration::from_nanos(next("rto_ns")?);
                    let retries = next("max_retries")? as u32;
                    plan.loss = Some(LossSpec {
                        ppm,
                        rto,
                        max_retries: retries,
                    });
                }
                "degrade" => {
                    let from = SimTime::from_nanos(next("from_ns")?);
                    let to = SimTime::from_nanos(next("to_ns")?);
                    let factor = next("factor")? as u32;
                    if from >= to || factor < 1 {
                        return Err(format!("degrade: bad window {line:?}"));
                    }
                    plan.degrade.push(DegradeWindow { from, to, factor });
                }
                "crash" | "drain" | "restart" => {
                    let node = next("node")? as usize;
                    let at = SimTime::from_nanos(next("at_ns")?);
                    let kind = match key {
                        "crash" => NodeFault::Crash,
                        "drain" => NodeFault::Drain,
                        _ => NodeFault::Restart,
                    };
                    plan.events.push(NodeEvent { at, node, kind });
                }
                other => return Err(format!("unknown fault-plan key {other:?}")),
            }
            if toks.next().is_some() {
                return Err(format!("{key}: trailing tokens in {line:?}"));
            }
        }
        Ok(plan)
    }

    /// A random but reproducible plan over a cluster of `nodes` nodes —
    /// the generator behind torture's fault sampling and the round-trip
    /// property test. Crash events target nodes `1..nodes` (never node
    /// 0) and each crash is paired with a later restart, so a sampled
    /// plan never takes capacity away permanently.
    pub fn sample(seed: u64, nodes: usize) -> Self {
        let mut rng = Rng::for_run(seed ^ 0xFA17, 0);
        let mut plan = FaultPlan::none().with_seed(rng.next_u64());
        if rng.chance(0.6) {
            let ppm = rng.range_u64(1_000, 60_000) as u32;
            let rto = SimDuration::from_micros(rng.range_u64(20, 200));
            plan = plan.with_loss(ppm, rto, rng.range_u64(1, 6) as u32);
        }
        if rng.chance(0.4) {
            let from = SimTime::from_nanos(rng.range_u64(300_000_000, 320_000_000));
            let to = from + SimDuration::from_millis(rng.range_u64(2, 20));
            plan = plan.degrade(from, to, rng.range_u64(2, 8) as u32);
        }
        if nodes > 1 && rng.chance(0.5) {
            // range_u64 is inclusive on both ends: draw from [1, nodes).
            let node = rng.range_u64(1, nodes as u64 - 1) as usize;
            let at = SimTime::from_nanos(rng.range_u64(305_000_000, 360_000_000));
            let back = at + SimDuration::from_millis(rng.range_u64(5, 40));
            plan = plan.crash(node, at).restart(node, back);
        }
        plan
    }
}

fn kind_order(kind: NodeFault) -> u8 {
    match kind {
        NodeFault::Crash => 0,
        NodeFault::Drain => 1,
        NodeFault::Restart => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_none_and_round_trips() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert_eq!(FaultPlan::from_text(&plan.to_text()).unwrap(), plan);
    }

    #[test]
    fn text_round_trip_is_exact_for_sampled_plans() {
        // Property test: any sampled plan survives to_text/from_text
        // byte-exactly (all fields are integers, so no rounding).
        for seed in 0..200u64 {
            for nodes in [1usize, 2, 4, 9] {
                let plan = FaultPlan::sample(seed, nodes);
                let text = plan.to_text();
                let back = FaultPlan::from_text(&text).unwrap_or_else(|e| {
                    panic!("seed {seed}: plan text did not parse: {e}\n{text}")
                });
                assert_eq!(back, plan, "seed {seed}: round-trip changed the plan");
                assert_eq!(
                    back.to_text(),
                    text,
                    "seed {seed}: re-serialisation differs"
                );
            }
        }
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(FaultPlan::from_text("").is_err());
        assert!(FaultPlan::from_text("fault-plan v2\n").is_err());
        assert!(FaultPlan::from_text("fault-plan v1\nbogus 1 2\n").is_err());
        assert!(FaultPlan::from_text("fault-plan v1\nloss 2000000 10 1\n").is_err());
        assert!(FaultPlan::from_text("fault-plan v1\ndegrade 10 5 2\n").is_err());
        assert!(FaultPlan::from_text("fault-plan v1\ncrash 0 5 9\n").is_err());
    }

    #[test]
    fn loss_draws_are_deterministic_and_bounded() {
        let loss = LossSpec {
            ppm: 500_000, // 50% per attempt: retransmits are common
            rto: SimDuration::from_micros(50),
            max_retries: 3,
        };
        let mut seen_nonzero = false;
        for msg in 0..200u64 {
            let a = loss.retries_for(7, msg);
            let b = loss.retries_for(7, msg);
            assert_eq!(a, b, "draw must be a pure function of (seed, msg)");
            assert!(a <= 3);
            seen_nonzero |= a > 0;
        }
        assert!(seen_nonzero, "50% loss never fired in 200 messages");
        // Different seeds decorrelate.
        let diff = (0..200u64).any(|m| loss.retries_for(7, m) != loss.retries_for(8, m));
        assert!(diff);
        // ppm 0 never retransmits.
        let none = LossSpec { ppm: 0, ..loss };
        assert!((0..200).all(|m| none.retries_for(7, m) == 0));
    }

    #[test]
    fn degrade_factor_composes_and_respects_bounds() {
        let plan = FaultPlan::none()
            .degrade(SimTime::from_nanos(100), SimTime::from_nanos(200), 3)
            .degrade(SimTime::from_nanos(150), SimTime::from_nanos(300), 2);
        assert_eq!(plan.degrade_factor_at(SimTime::from_nanos(50)), 1);
        assert_eq!(plan.degrade_factor_at(SimTime::from_nanos(100)), 3);
        assert_eq!(plan.degrade_factor_at(SimTime::from_nanos(150)), 6);
        assert_eq!(plan.degrade_factor_at(SimTime::from_nanos(200)), 2);
        assert_eq!(plan.degrade_factor_at(SimTime::from_nanos(300)), 1);
    }

    #[test]
    fn events_sort_with_crash_before_restart_on_ties() {
        let t = SimTime::from_nanos(1_000);
        let plan = FaultPlan::none().restart(2, t).crash(2, t).drain(1, t);
        let evs = plan.sorted_events();
        assert_eq!(evs[0].node, 1);
        assert_eq!(evs[1].kind, NodeFault::Crash);
        assert_eq!(evs[2].kind, NodeFault::Restart);
        assert!(plan.has_restarts());
    }
}
