//! Conservative co-simulation windows as explicit half-open intervals.
//!
//! The lockstep driver used to carry the window bound around as a bare
//! "inclusive deadline" computed with `t_next + lookahead - 1ns` — an
//! off-by-one land mine the moment anyone adds or compares bounds. A
//! [`Window`] makes the interval `[start, end)` the primitive: the
//! conservative guarantee is exactly "a message sent inside the window
//! delivers at or after `end`", and the inclusive deadline handed to
//! [`hpl_kernel::Node::run_until_time`] is derived in one place
//! ([`Window::deadline`]), correct down to `lookahead = 1 ns` where the
//! window contains the single instant `start`.

use hpl_sim::time::{SimDuration, SimTime};

/// A half-open interval of simulated time, `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First instant inside the window.
    pub start: SimTime,
    /// First instant *past* the window.
    pub end: SimTime,
}

impl Window {
    /// The conservative window opened by the cluster-wide next event at
    /// `start` under a lookahead of at least 1 ns: `[start, start +
    /// lookahead)`. A message sent at `s >= start` is delivered at or
    /// after `s + lookahead >= end`, i.e. never inside the window.
    pub fn conservative(start: SimTime, lookahead: SimDuration) -> Self {
        assert!(
            lookahead >= SimDuration::from_nanos(1),
            "lookahead must be >= 1ns, got {lookahead}"
        );
        Window {
            start,
            end: start + lookahead,
        }
    }

    /// True iff `t` lies inside the window (`start <= t < end`).
    #[inline]
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// The latest instant inside the window: the *inclusive* deadline
    /// for [`hpl_kernel::Node::run_until_time`], which runs events with
    /// `t <= deadline`. With `lookahead = 1 ns` this is `start` itself —
    /// the window holds exactly one representable instant.
    #[inline]
    pub fn deadline(&self) -> SimTime {
        debug_assert!(self.end > self.start, "window is empty");
        self.end - SimDuration::from_nanos(1)
    }

    /// The window's extent (`end - start`), i.e. the lookahead.
    #[inline]
    pub fn len(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// True iff the window contains no representable instant. Never the
    /// case for [`Window::conservative`] (lookahead >= 1 ns).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl std::fmt::Display for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn minimal_lookahead_window_is_a_single_instant() {
        // lookahead = 1 ns: the degenerate case the old inline
        // arithmetic was one misplaced +1 away from corrupting.
        let w = Window::conservative(ns(100), SimDuration::from_nanos(1));
        assert_eq!(w.start, ns(100));
        assert_eq!(w.end, ns(101));
        assert!(!w.is_empty());
        assert_eq!(w.deadline(), ns(100), "only t=100 may run");
        assert!(w.contains(ns(100)));
        assert!(!w.contains(ns(101)), "end is exclusive");
        assert!(!w.contains(ns(99)));
        assert_eq!(w.len(), SimDuration::from_nanos(1));
    }

    #[test]
    fn deadline_is_the_last_contained_instant() {
        let w = Window::conservative(ns(1_000), SimDuration::from_micros(5));
        assert_eq!(w.deadline(), ns(5_999));
        assert!(w.contains(w.deadline()));
        assert!(!w.contains(w.end));
        // The earliest possible delivery of a message sent at `start`
        // lands exactly at `end` — outside the window, never inside.
        assert_eq!(w.start + SimDuration::from_micros(5), w.end);
    }

    #[test]
    fn windows_tile_without_gap_or_overlap() {
        // Consecutive windows from the same lookahead share an edge:
        // every instant belongs to at most one of them.
        let a = Window::conservative(ns(0), SimDuration::from_nanos(1));
        let b = Window::conservative(a.end, SimDuration::from_nanos(1));
        assert!(a.contains(ns(0)) && !b.contains(ns(0)));
        assert!(!a.contains(ns(1)) && b.contains(ns(1)));
        assert_eq!(a.deadline() + SimDuration::from_nanos(1), b.start);
    }

    #[test]
    #[should_panic(expected = "lookahead must be >= 1ns")]
    fn zero_lookahead_is_rejected() {
        let _ = Window::conservative(ns(0), SimDuration::ZERO);
    }

    #[test]
    fn display_shows_half_open_bounds() {
        let w = Window::conservative(ns(5), SimDuration::from_nanos(2));
        let s = format!("{w}");
        assert!(s.starts_with('[') && s.ends_with(')'), "{s}");
    }
}
