//! # hpl-sim — discrete-event simulation substrate
//!
//! Foundation crate for the HPL scheduler study. It provides the pieces
//! every layer above needs and that must be *deterministic* across
//! platforms and thread counts:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]) with saturating/checked arithmetic.
//! * [`event`] — a deterministic event queue ([`event::EventQueue`]):
//!   ties at equal timestamps break by insertion sequence, so a run is a
//!   total order reproducible from its seed alone.
//! * [`rng`] — a self-contained xoshiro256++ PRNG seeded via SplitMix64,
//!   plus the distributions the noise and workload models need (uniform,
//!   exponential, normal, log-normal, Pareto). No external crate: identical
//!   bit streams everywhere.
//! * [`stats`] — summary statistics (min/avg/max/var% as the paper defines
//!   them), histograms, percentiles and correlation for the figures.
//! * [`plot`] — ASCII histogram/scatter rendering used by the experiment
//!   harness to "draw" Figures 2, 3a, 3b and 4 in a terminal.
//!
//! Everything here is intentionally independent of the kernel model so that
//! it can be property-tested in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod plot;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventQueue, PeriodicId};
pub use rng::Rng;
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
