//! ASCII rendering of histograms and scatter plots.
//!
//! The experiment harness regenerates the paper's figures as terminal
//! output: Figures 2 and 4 are execution-time histograms, Figures 3a/3b
//! are scatter plots of execution time against a software counter. These
//! renderers also emit CSV so the raw series can be re-plotted elsewhere.

use crate::stats::Histogram;
use std::fmt::Write as _;

/// Render a histogram as horizontal bars, one line per bin.
///
/// `width` is the maximum bar width in characters. Empty histograms render
/// a placeholder line.
pub fn render_histogram(h: &Histogram, width: usize) -> String {
    let mut out = String::new();
    let max = h.bins().iter().copied().max().unwrap_or(0);
    if max == 0 {
        out.push_str("(no data)\n");
        return out;
    }
    for (i, &c) in h.bins().iter().enumerate() {
        let (lo, hi) = h.bin_edges(i);
        let bar_len = (c as f64 / max as f64 * width as f64).round() as usize;
        let bar: String = std::iter::repeat_n('#', bar_len).collect();
        let _ = writeln!(out, "[{lo:9.3}, {hi:9.3}) |{bar:<w$}| {c:>6}", w = width);
    }
    if h.underflow() > 0 {
        let _ = writeln!(out, "  underflow: {}", h.underflow());
    }
    if h.overflow() > 0 {
        let _ = writeln!(out, "  overflow:  {}", h.overflow());
    }
    out
}

/// Render an `(x, y)` scatter as a character grid of `cols x rows`.
///
/// Density is shown with ` .:+*#` glyphs; axis extremes are labelled.
pub fn render_scatter(xs: &[f64], ys: &[f64], cols: usize, rows: usize) -> String {
    assert_eq!(xs.len(), ys.len(), "scatter: length mismatch");
    let mut out = String::new();
    if xs.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (xmin, xmax) = min_max(xs);
    let (ymin, ymax) = min_max(ys);
    let xspan = (xmax - xmin).max(1e-12);
    let yspan = (ymax - ymin).max(1e-12);
    let mut grid = vec![0u32; cols * rows];
    for i in 0..xs.len() {
        let cx = (((xs[i] - xmin) / xspan) * (cols - 1) as f64).round() as usize;
        let cy = (((ys[i] - ymin) / yspan) * (rows - 1) as f64).round() as usize;
        grid[(rows - 1 - cy) * cols + cx] += 1;
    }
    let glyphs = [' ', '.', ':', '+', '*', '#'];
    let gmax = grid.iter().copied().max().unwrap_or(1).max(1);
    for r in 0..rows {
        let ylabel = if r == 0 {
            format!("{ymax:10.3} ")
        } else if r == rows - 1 {
            format!("{ymin:10.3} ")
        } else {
            " ".repeat(11)
        };
        out.push_str(&ylabel);
        out.push('|');
        for c in 0..cols {
            let v = grid[r * cols + c];
            let g = if v == 0 {
                0
            } else {
                1 + ((v - 1) as usize * (glyphs.len() - 2) / gmax as usize).min(glyphs.len() - 2)
            };
            out.push(glyphs[g]);
        }
        out.push('|');
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "{}{}^ x: [{:.3}, {:.3}]",
        " ".repeat(11),
        " ".repeat(cols / 2),
        xmin,
        xmax
    );
    out
}

/// Emit two columns as CSV with a header line.
pub fn to_csv(header: (&str, &str), xs: &[f64], ys: &[f64]) -> String {
    assert_eq!(xs.len(), ys.len(), "csv: length mismatch");
    let mut out = format!("{},{}\n", header.0, header.1);
    for i in 0..xs.len() {
        let _ = writeln!(out, "{},{}", xs[i], ys[i]);
    }
    out
}

fn min_max(xs: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_rendering_has_all_bins() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 1.6, 3.9] {
            h.add(x);
        }
        let s = render_histogram(&h, 20);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
    }

    #[test]
    fn empty_histogram_renders_placeholder() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert!(render_histogram(&h, 10).contains("no data"));
    }

    #[test]
    fn overflow_lines_present() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(0.5);
        h.add(5.0);
        h.add(-5.0);
        let s = render_histogram(&h, 10);
        assert!(s.contains("overflow"));
        assert!(s.contains("underflow"));
    }

    #[test]
    fn scatter_renders_grid() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
        let s = render_scatter(&xs, &ys, 40, 10);
        // 10 grid rows + 1 x-axis label line.
        assert_eq!(s.lines().count(), 11);
        assert!(s.contains('.') || s.contains(':'));
    }

    #[test]
    fn scatter_empty() {
        assert!(render_scatter(&[], &[], 10, 5).contains("no data"));
    }

    #[test]
    fn scatter_single_point() {
        let s = render_scatter(&[1.0], &[1.0], 10, 5);
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_output() {
        let s = to_csv(("time", "migrations"), &[1.5, 2.5], &[3.0, 4.0]);
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines[0], "time,migrations");
        assert_eq!(lines[1], "1.5,3");
        assert_eq!(lines.len(), 3);
    }
}
