//! Summary statistics, histograms and correlation.
//!
//! The paper reports `Min / Avg / Max` and a variation percentage defined
//! (its footnote 8) as `(max − min) / min × 100`. [`Summary`] computes
//! exactly that, plus standard deviation and percentiles for richer
//! reporting. [`Histogram`] bins execution times for Figures 2 and 4;
//! [`pearson`]/[`spearman`] quantify the Figure 3 relationships.

use std::fmt;

/// Running summary of a sample: min, max, mean, variance (Welford).
///
/// ```
/// use hpl_sim::stats::Summary;
///
/// // The paper's ep.A.8 row: min 8.54 s, max 14.59 s -> 70.84 %.
/// let s = Summary::from_slice(&[8.54, 9.1, 14.59]);
/// assert!((s.variation_pct() - 70.84).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct Summary {
    n: u64,
    min: f64,
    max: f64,
    mean: f64,
    m2: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Build a summary from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.add(x);
        }
        s
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation {x}");
        self.n += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Arithmetic mean (NaN if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population standard deviation (NaN if empty).
    pub fn stddev(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// The paper's variation metric: `(max − min) / min × 100` (%).
    ///
    /// Returns NaN when empty and infinity when `min == 0`.
    pub fn variation_pct(&self) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        (self.max - self.min) / self.min * 100.0
    }

    /// Coefficient of variation in percent (`stddev / mean × 100`).
    pub fn cv_pct(&self) -> f64 {
        100.0 * self.stddev() / self.mean()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.4} avg={:.4} max={:.4} var%={:.2}",
            self.n,
            self.min(),
            self.mean(),
            self.max(),
            self.variation_pct()
        )
    }
}

/// Percentile of a sample using linear interpolation between order
/// statistics. `q` in `[0, 100]`. Sorts a copy; fine for reporting sizes.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&q), "percentile {q} out of range");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q / 100.0 * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// A fixed-bin histogram over `[lo, hi)` with an overflow/underflow bin at
/// each end, used to render the execution-time distributions of Figs. 2/4.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram with `nbins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo, "histogram range empty: [{lo}, {hi})");
        assert!(nbins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Create a histogram sized to cover a sample with a little headroom.
    pub fn covering(xs: &[f64], nbins: usize) -> Self {
        let s = Summary::from_slice(xs);
        let span = (s.max() - s.min()).max(1e-12);
        let mut h = Histogram::new(s.min(), s.max() + span * 1e-6, nbins);
        for &x in xs {
            h.add(x);
        }
        h
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(low_edge, high_edge)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Total observations recorded, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

/// Pearson product-moment correlation of two equal-length samples.
/// Returns NaN for degenerate inputs (length < 2 or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

/// Ordinary least-squares line fit `y = slope·x + intercept` with R².
/// Used to annotate the Fig. 3 scatters with the empirical relationship
/// the paper reads off them.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64, f64)> {
    assert_eq!(xs.len(), ys.len(), "linear_fit: length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some((slope, intercept, r2))
}

/// Spearman rank correlation (Pearson on mid-ranks; robust to the heavy
/// tails these experiments produce).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman: length mismatch");
    pearson(&ranks(xs), &ranks(ys))
}

/// Mid-ranks of a sample (ties share the average rank).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::from_slice(&[2.0, 4.0, 6.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert!((s.variation_pct() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_nan() {
        let s = Summary::new();
        assert!(s.min().is_nan() && s.mean().is_nan() && s.variation_pct().is_nan());
    }

    #[test]
    fn summary_single_point() {
        let s = Summary::from_slice(&[5.0]);
        assert_eq!(s.variation_pct(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn summary_merge_matches_bulk() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let bulk = Summary::from_slice(&xs);
        let mut a = Summary::from_slice(&xs[..37]);
        let b = Summary::from_slice(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), bulk.count());
        assert!((a.mean() - bulk.mean()).abs() < 1e-9);
        assert!((a.stddev() - bulk.stddev()).abs() < 1e-9);
        assert_eq!(a.min(), bulk.min());
        assert_eq!(a.max(), bulk.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_slice(&[1.0, 2.0]);
        a.merge(&Summary::new());
        assert_eq!(a.count(), 2);
        let mut e = Summary::new();
        e.merge(&Summary::from_slice(&[1.0, 2.0]));
        assert_eq!(e.count(), 2);
        assert_eq!(e.min(), 1.0);
    }

    #[test]
    fn variation_matches_paper_definition() {
        // ep.A.8 from the paper: min 8.54, max 14.59 -> 70.84%.
        let s = Summary::from_slice(&[8.54, 14.59, 9.0, 10.0]);
        assert!((s.variation_pct() - 70.84).abs() < 0.01);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 1.0, 9.99, 5.0] {
            h.add(x);
        }
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_under_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-0.1);
        h.add(1.0);
        h.add(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn histogram_covering_includes_all() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 7.0).collect();
        let h = Histogram::covering(&xs, 12);
        assert_eq!(h.underflow() + h.overflow(), 0);
        assert_eq!(h.bins().iter().sum::<u64>(), 100);
    }

    #[test]
    fn histogram_bin_edges() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_nan() {
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan());
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let (slope, intercept, r2) = linear_fit(&xs, &ys).unwrap();
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[3.0, 3.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[3.0, 1.0, 3.0]);
        assert_eq!(r, vec![2.5, 1.0, 2.5]);
    }
}
