//! Deterministic event queue.
//!
//! A thin wrapper over [`BinaryHeap`] that orders events by `(time, seq)`
//! where `seq` is a monotonically increasing insertion counter. Two events
//! scheduled for the same instant therefore pop in insertion order — the
//! property that makes a whole simulation run a *total* order, reproducible
//! from the RNG seed alone regardless of host platform.
//!
//! Events also carry a generation-friendly [`EventId`] so producers can
//! lazily cancel: rather than removing an entry from the heap (O(n)),
//! callers remember the id of the event they still care about and ignore
//! stale pops. The kernel uses this for compute-completion events that are
//! superseded whenever a task's execution speed changes.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, unique within one [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// A sentinel id that no real event ever receives.
    pub const NONE: EventId = EventId(u64::MAX);
}

/// Handle to a periodic slot created by [`EventQueue::schedule_periodic`].
///
/// Slots are never removed, so the handle indexes a stable internal array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeriodicId(usize);

impl PeriodicId {
    /// The slot's index (slots are numbered in creation order from 0).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A self-re-arming periodic event: the timer-wheel fast path.
///
/// One slot stands in for an infinite stream of heap entries. The pending
/// occurrence is `(time, seq)`; when it pops, the slot re-arms in place at
/// `time + period` with a freshly allocated `seq`. That allocation order is
/// exactly what an explicit handler-side `schedule(now + period, ...)` as
/// the handler's *last* seq allocation would produce, so converting such a
/// self-re-arming event to a periodic slot preserves the queue's total
/// `(time, seq)` order bit-for-bit.
struct PeriodicSlot<E> {
    time: SimTime,
    seq: u64,
    period: SimDuration,
    payload: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties deterministically in FIFO order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// ```
/// use hpl_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "later");
/// q.schedule(SimTime::from_nanos(10), "sooner");
/// let (t, _, what) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), what), (10, "sooner"));
/// assert_eq!(q.now(), t);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Timer wheel: always-armed periodic slots, merged with the heap on
    /// pop by `(time, seq)`. A handful of slots (one per CPU) replaces the
    /// endless schedule/pop churn of tick events through the heap.
    periodic: Vec<PeriodicSlot<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            periodic: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event
    /// (or zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events. Each periodic slot always has exactly one
    /// pending occurrence.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len() + self.periodic.len()
    }

    /// True iff no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.periodic.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; debug builds panic, release
    /// builds clamp to `now` so the event still fires (never silently lost).
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
        EventId(seq)
    }

    /// Create a periodic slot firing first at `first`, then every `period`.
    ///
    /// The pending occurrence's seq is allocated here, exactly as
    /// [`schedule`](Self::schedule) would; every subsequent occurrence
    /// allocates its seq when the previous one pops. Slots live for the
    /// queue's whole lifetime (ticks never stop).
    pub fn schedule_periodic(
        &mut self,
        first: SimTime,
        period: SimDuration,
        payload: E,
    ) -> PeriodicId {
        debug_assert!(
            first >= self.now,
            "scheduling periodic event in the past: first={first} now={}",
            self.now
        );
        debug_assert!(!period.is_zero(), "periodic event with zero period");
        let first = first.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.periodic.push(PeriodicSlot {
            time: first,
            seq,
            period,
            payload,
        });
        PeriodicId(self.periodic.len() - 1)
    }

    /// Index of the earliest periodic occurrence by `(time, seq)`.
    fn best_periodic(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, s) in self.periodic.iter().enumerate() {
            let better = match best {
                None => true,
                Some(b) => {
                    let bb = &self.periodic[b];
                    (s.time, s.seq) < (bb.time, bb.seq)
                }
            };
            if better {
                best = Some(i);
            }
        }
        best
    }

    /// Pending occurrence time of a periodic slot.
    #[inline]
    pub fn periodic_time(&self, id: PeriodicId) -> SimTime {
        self.periodic[id.0].time
    }

    /// Pop the next event, advancing `now` to its timestamp.
    ///
    /// Merges the heap with the periodic slots under the same total
    /// `(time, seq)` order. A popped periodic occurrence re-arms its slot
    /// in place (see [`PeriodicSlot`] for why that preserves determinism).
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)>
    where
        E: Clone,
    {
        let best = self.best_periodic();
        let take_periodic = match (best, self.heap.peek()) {
            (Some(i), Some(top)) => {
                let s = &self.periodic[i];
                (s.time, s.seq) < (top.time, top.seq)
            }
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_periodic {
            let slot = &mut self.periodic[best.expect("checked above")];
            debug_assert!(slot.time >= self.now, "event queue went backwards");
            self.now = slot.time;
            let fired = (slot.time, EventId(slot.seq), slot.payload.clone());
            slot.time += slot.period;
            slot.seq = self.next_seq;
            self.next_seq += 1;
            return Some(fired);
        }
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        Some((entry.time, EventId(entry.seq), entry.payload))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let heap_t = self.heap.peek().map(|e| e.time);
        let per_t = self.periodic.iter().map(|s| s.time).min();
        match (heap_t, per_t) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (t, None) | (None, t) => t,
        }
    }

    /// Timestamp of the next pending *heap* event, ignoring periodic
    /// slots. Fast-forward uses this as a batching horizon: everything in
    /// the heap is a real state change, while periodic occurrences below
    /// this time may be provably inert.
    pub fn peek_heap_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Earliest pending periodic occurrence, ignoring the heap. Lets
    /// fast-forward bail out cheaply when no tick precedes the next real
    /// event.
    pub fn peek_periodic_time(&self) -> Option<SimTime> {
        self.periodic.iter().map(|s| s.time).min()
    }

    /// Batch-fire periodic occurrences without popping them one by one.
    ///
    /// Slot `i` fires (and re-arms) while its pending time is strictly
    /// below `horizons[i]`; firings are processed in global `(time, seq)`
    /// order across slots so seq allocation matches what sequential
    /// [`pop`](Self::pop) calls would have produced. `fired[i]` is
    /// incremented per firing of slot `i`; the total is returned.
    ///
    /// `now` advances to each fired occurrence's timestamp, exactly as a
    /// sequence of pops would have moved it — so a caller that reads
    /// `now()` after a batch sees the same clock as the unbatched run.
    pub fn advance_periodic(&mut self, horizons: &[SimTime], fired: &mut [u64]) -> u64 {
        self.advance_periodic_impl(horizons, fired, None)
    }

    /// [`advance_periodic`](Self::advance_periodic), additionally
    /// appending each firing as `(slot index, fire time)` to `trace` in
    /// the global firing order. Lets a caller replay per-occurrence side
    /// effects (e.g. re-arming balance clocks) after the batch.
    pub fn advance_periodic_trace(
        &mut self,
        horizons: &[SimTime],
        fired: &mut [u64],
        trace: &mut Vec<(usize, SimTime)>,
    ) -> u64 {
        self.advance_periodic_impl(horizons, fired, Some(trace))
    }

    fn advance_periodic_impl(
        &mut self,
        horizons: &[SimTime],
        fired: &mut [u64],
        mut trace: Option<&mut Vec<(usize, SimTime)>>,
    ) -> u64 {
        debug_assert_eq!(horizons.len(), self.periodic.len());
        debug_assert_eq!(fired.len(), self.periodic.len());
        let mut total = 0u64;
        loop {
            let mut best: Option<usize> = None;
            for (i, s) in self.periodic.iter().enumerate() {
                if s.time >= horizons[i] {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let bb = &self.periodic[b];
                        (s.time, s.seq) < (bb.time, bb.seq)
                    }
                };
                if better {
                    best = Some(i);
                }
            }
            let Some(i) = best else {
                return total;
            };
            let slot = &mut self.periodic[i];
            debug_assert!(slot.time >= self.now, "event queue went backwards");
            self.now = slot.time;
            if let Some(t) = trace.as_deref_mut() {
                t.push((i, slot.time));
            }
            slot.time += slot.period;
            slot.seq = self.next_seq;
            self.next_seq += 1;
            fired[i] += 1;
            total += 1;
        }
    }

    /// Drop all pending events (used when a run terminates early).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.periodic.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    fn event_ids_are_unique() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), ());
        let b = q.schedule(SimTime::from_nanos(1), ());
        assert_ne!(a, b);
        assert_ne!(a, EventId::NONE);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1u32);
        let (t, _, v) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), v), (10, 1));
        // Schedule relative to the new now.
        q.schedule(t + SimDuration::from_nanos(5), 2u32);
        q.schedule(t + SimDuration::from_nanos(3), 3u32);
        assert_eq!(q.pop().unwrap().2, 3);
        assert_eq!(q.pop().unwrap().2, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(4), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), ());
        q.clear();
        assert!(q.pop().is_none());
    }

    /// A periodic slot must produce the byte-identical `(time, id, payload)`
    /// stream of a handler that re-schedules itself as its last action.
    #[test]
    fn periodic_matches_self_rescheduling_handler() {
        let period = SimDuration::from_nanos(10);
        let mut fast = EventQueue::new();
        let mut refq = EventQueue::new();
        // Two "CPUs" with staggered phases plus interleaved ad-hoc events.
        fast.schedule_periodic(SimTime::from_nanos(10), period, "t0");
        fast.schedule_periodic(SimTime::from_nanos(15), period, "t1");
        refq.schedule(SimTime::from_nanos(10), "t0");
        refq.schedule(SimTime::from_nanos(15), "t1");
        for q in [&mut fast, &mut refq] {
            q.schedule(SimTime::from_nanos(12), "a");
            q.schedule(SimTime::from_nanos(20), "b");
            q.schedule(SimTime::from_nanos(20), "c");
        }
        for step in 0..50 {
            let f = fast.pop().unwrap();
            let r = refq.pop().unwrap();
            assert_eq!(f, r, "divergence at step {step}");
            // Reference handler: re-arm as the last seq allocation.
            if f.2.starts_with('t') {
                refq.schedule(r.0 + period, r.2);
            }
            // Ad-hoc traffic scheduled mid-handler on both queues.
            if f.2 == "a" {
                fast.schedule(f.0 + SimDuration::from_nanos(7), "d");
                refq.schedule(r.0 + SimDuration::from_nanos(7), "d");
            }
        }
    }

    /// Batch-advancing slots must leave the queue in the same state as
    /// popping each occurrence individually.
    #[test]
    fn advance_periodic_equals_sequential_pops() {
        let period = SimDuration::from_nanos(10);
        let mk = |q: &mut EventQueue<&str>| {
            q.schedule_periodic(SimTime::from_nanos(10), period, "t0");
            q.schedule_periodic(SimTime::from_nanos(15), period, "t1");
            q.schedule(SimTime::from_nanos(47), "stop");
        };
        let mut batched = EventQueue::new();
        let mut popped = EventQueue::new();
        mk(&mut batched);
        mk(&mut popped);

        // Fire everything strictly before t=47.
        let horizons = [SimTime::from_nanos(47), SimTime::from_nanos(47)];
        let mut fired = [0u64; 2];
        let total = batched.advance_periodic(&horizons, &mut fired);
        assert_eq!(fired, [4, 4]); // t0: 10,20,30,40  t1: 15,25,35,45
        assert_eq!(total, 8);

        let mut n = 0;
        while popped.peek_time().unwrap() < SimTime::from_nanos(47) {
            popped.pop().unwrap();
            n += 1;
        }
        assert_eq!(n, total);

        // Identical continuation: same times, same ids, same payloads.
        for _ in 0..20 {
            assert_eq!(batched.pop(), popped.pop());
        }
    }

    /// Per-slot horizons cap each slot independently while keeping the
    /// global merge order for seq allocation.
    #[test]
    fn advance_periodic_per_slot_horizons() {
        let period = SimDuration::from_nanos(10);
        let mut q = EventQueue::new();
        q.schedule_periodic(SimTime::from_nanos(10), period, "t0");
        q.schedule_periodic(SimTime::from_nanos(15), period, "t1");
        q.schedule(SimTime::from_nanos(47), "stop");
        let horizons = [SimTime::from_nanos(47), SimTime::from_nanos(40)];
        let mut fired = [0u64; 2];
        let total = q.advance_periodic(&horizons, &mut fired);
        assert_eq!(fired, [4, 3]); // t0: 10,20,30,40  t1: 15,25,35
        assert_eq!(total, 7);
        // t1's pending occurrence at 45 was left for a normal pop; it
        // precedes the heap event at 47 and the re-armed t0 at 50.
        let order: Vec<_> = (0..4).map(|_| q.pop().unwrap()).collect();
        let times: Vec<_> = order.iter().map(|e| e.0.as_nanos()).collect();
        let what: Vec<_> = order.iter().map(|e| e.2).collect();
        assert_eq!(times, vec![45, 47, 50, 55]);
        assert_eq!(what, vec!["t1", "stop", "t0", "t1"]);
    }

    /// The trace variant reports every firing, in the exact global
    /// `(time, seq)` order sequential pops would have used.
    #[test]
    fn advance_periodic_trace_matches_pop_order() {
        let period = SimDuration::from_nanos(10);
        let mk = |q: &mut EventQueue<&str>| {
            q.schedule_periodic(SimTime::from_nanos(10), period, "t0");
            q.schedule_periodic(SimTime::from_nanos(15), period, "t1");
            q.schedule(SimTime::from_nanos(47), "stop");
        };
        let mut batched = EventQueue::new();
        let mut popped = EventQueue::new();
        mk(&mut batched);
        mk(&mut popped);

        let horizons = [SimTime::from_nanos(47); 2];
        let mut fired = [0u64; 2];
        let mut trace = Vec::new();
        let total = batched.advance_periodic_trace(&horizons, &mut fired, &mut trace);
        assert_eq!(total as usize, trace.len());

        for (i, t) in trace {
            let (time, _, what) = popped.pop().unwrap();
            assert_eq!(t, time);
            assert_eq!(what, if i == 0 { "t0" } else { "t1" });
        }
        assert_eq!(batched.pop(), popped.pop());
    }

    #[test]
    fn peek_and_len_cover_periodic() {
        let mut q = EventQueue::new();
        let id = q.schedule_periodic(SimTime::from_nanos(8), SimDuration::from_nanos(4), 0u32);
        q.schedule(SimTime::from_nanos(9), 1u32);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(8)));
        assert_eq!(q.peek_heap_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.periodic_time(id), SimTime::from_nanos(8));
        q.pop();
        // The slot re-armed: still two pending events.
        assert_eq!(q.len(), 2);
        assert_eq!(q.periodic_time(id), SimTime::from_nanos(12));
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
