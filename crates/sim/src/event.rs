//! Deterministic event queue.
//!
//! A thin wrapper over [`BinaryHeap`] that orders events by `(time, seq)`
//! where `seq` is a monotonically increasing insertion counter. Two events
//! scheduled for the same instant therefore pop in insertion order — the
//! property that makes a whole simulation run a *total* order, reproducible
//! from the RNG seed alone regardless of host platform.
//!
//! Events also carry a generation-friendly [`EventId`] so producers can
//! lazily cancel: rather than removing an entry from the heap (O(n)),
//! callers remember the id of the event they still care about and ignore
//! stale pops. The kernel uses this for compute-completion events that are
//! superseded whenever a task's execution speed changes.

use crate::time::{SimDuration, SimTime};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, unique within one [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// A sentinel id that no real event ever receives.
    pub const NONE: EventId = EventId(u64::MAX);
}

/// Handle to a periodic slot created by [`EventQueue::schedule_periodic`].
///
/// Slots are never removed, so the handle indexes a stable internal array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeriodicId(usize);

impl PeriodicId {
    /// The slot's index (slots are numbered in creation order from 0).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A self-re-arming periodic event: the timer-wheel fast path.
///
/// One slot stands in for an infinite stream of heap entries. The pending
/// occurrence is `(time, seq)`; when it pops, the slot re-arms in place at
/// `time + period` with a freshly allocated `seq`. That allocation order is
/// exactly what an explicit handler-side `schedule(now + period, ...)` as
/// the handler's *last* seq allocation would produce, so converting such a
/// self-re-arming event to a periodic slot preserves the queue's total
/// `(time, seq)` order bit-for-bit.
struct PeriodicSlot<E> {
    time: SimTime,
    seq: u64,
    period: SimDuration,
    payload: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties deterministically in FIFO order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// ```
/// use hpl_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "later");
/// q.schedule(SimTime::from_nanos(10), "sooner");
/// let (t, _, what) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), what), (10, "sooner"));
/// assert_eq!(q.now(), t);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Timer wheel: always-armed periodic slots, merged with the heap on
    /// pop by `(time, seq)`. A handful of slots (one per CPU) replaces the
    /// endless schedule/pop churn of tick events through the heap.
    periodic: Vec<PeriodicSlot<E>>,
    /// Mirror min-heap over the slots' pending occurrences, keyed
    /// `(time, seq, slot)`. Every slot has exactly one entry, refreshed
    /// when its occurrence fires, so the earliest pending occurrence is
    /// an O(1) peek instead of an O(slots) scan — the timer-wheel merge
    /// cost a busy `pop`/`peek_time` pays on every call.
    periodic_order: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            periodic: Vec::new(),
            periodic_order: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event
    /// (or zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events. Each periodic slot always has exactly one
    /// pending occurrence.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len() + self.periodic.len()
    }

    /// True iff no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.periodic.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; debug builds panic, release
    /// builds clamp to `now` so the event still fires (never silently lost).
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
        EventId(seq)
    }

    /// Create a periodic slot firing first at `first`, then every `period`.
    ///
    /// The pending occurrence's seq is allocated here, exactly as
    /// [`schedule`](Self::schedule) would; every subsequent occurrence
    /// allocates its seq when the previous one pops. Slots live for the
    /// queue's whole lifetime (ticks never stop).
    pub fn schedule_periodic(
        &mut self,
        first: SimTime,
        period: SimDuration,
        payload: E,
    ) -> PeriodicId {
        debug_assert!(
            first >= self.now,
            "scheduling periodic event in the past: first={first} now={}",
            self.now
        );
        debug_assert!(!period.is_zero(), "periodic event with zero period");
        let first = first.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.periodic.push(PeriodicSlot {
            time: first,
            seq,
            period,
            payload,
        });
        let idx = self.periodic.len() - 1;
        self.periodic_order.push(Reverse((first, seq, idx)));
        PeriodicId(idx)
    }

    /// Fire the pending occurrence of the slot at the mirror heap's
    /// root: advance `now`, re-arm the slot one period later with a
    /// fresh seq, and refresh its mirror entry. Returns the fired
    /// occurrence as `(time, id, slot index)`.
    fn fire_best_periodic(&mut self) -> (SimTime, EventId, usize) {
        let Reverse((time, seq, i)) = self.periodic_order.pop().expect("a pending occurrence");
        let slot = &mut self.periodic[i];
        debug_assert_eq!(
            (slot.time, slot.seq),
            (time, seq),
            "mirror heap out of sync with slot {i}"
        );
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        slot.time += slot.period;
        slot.seq = self.next_seq;
        self.next_seq += 1;
        self.periodic_order.push(Reverse((slot.time, slot.seq, i)));
        (time, EventId(seq), i)
    }

    /// Pending occurrence time of a periodic slot.
    #[inline]
    pub fn periodic_time(&self, id: PeriodicId) -> SimTime {
        self.periodic[id.0].time
    }

    /// Pop the next event, advancing `now` to its timestamp.
    ///
    /// Merges the heap with the periodic slots under the same total
    /// `(time, seq)` order. A popped periodic occurrence re-arms its slot
    /// in place (see [`PeriodicSlot`] for why that preserves determinism).
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)>
    where
        E: Clone,
    {
        let take_periodic = match (self.periodic_order.peek(), self.heap.peek()) {
            (Some(&Reverse((t, seq, _))), Some(top)) => (t, seq) < (top.time, top.seq),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_periodic {
            let (time, id, i) = self.fire_best_periodic();
            return Some((time, id, self.periodic[i].payload.clone()));
        }
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        Some((entry.time, EventId(entry.seq), entry.payload))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let heap_t = self.heap.peek().map(|e| e.time);
        let per_t = self.periodic_order.peek().map(|&Reverse((t, _, _))| t);
        match (heap_t, per_t) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (t, None) | (None, t) => t,
        }
    }

    /// Timestamp of the next pending *heap* event, ignoring periodic
    /// slots. Fast-forward uses this as a batching horizon: everything in
    /// the heap is a real state change, while periodic occurrences below
    /// this time may be provably inert.
    pub fn peek_heap_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Earliest pending periodic occurrence, ignoring the heap. Lets
    /// fast-forward bail out cheaply when no tick precedes the next real
    /// event.
    pub fn peek_periodic_time(&self) -> Option<SimTime> {
        self.periodic_order.peek().map(|&Reverse((t, _, _))| t)
    }

    /// Batch-fire periodic occurrences without popping them one by one.
    ///
    /// Slot `i` fires (and re-arms) while its pending time is strictly
    /// below `horizons[i]`; firings are processed in global `(time, seq)`
    /// order across slots so seq allocation matches what sequential
    /// [`pop`](Self::pop) calls would have produced. `fired[i]` is
    /// incremented per firing of slot `i`; the total is returned.
    ///
    /// `now` advances to each fired occurrence's timestamp, exactly as a
    /// sequence of pops would have moved it — so a caller that reads
    /// `now()` after a batch sees the same clock as the unbatched run.
    ///
    /// When every slot shares one period and the pending occurrences all
    /// fit in a single period-wide window — always true for per-CPU
    /// ticks, which start staggered inside one period and each firing
    /// preserves that spread — the whole batch is computed arithmetically
    /// in O(slots²) instead of O(firings · log slots): the global firing
    /// order is then a fixed round-robin over the slots, so each slot's
    /// firing count, final pending time and final seq have closed forms.
    /// Other configurations take the per-firing merge loop.
    pub fn advance_periodic(&mut self, horizons: &[SimTime], fired: &mut [u64]) -> u64 {
        debug_assert_eq!(horizons.len(), self.periodic.len());
        debug_assert_eq!(fired.len(), self.periodic.len());
        if let Some(total) = self.advance_bulk(horizons, fired) {
            return total;
        }
        self.advance_loop(horizons, fired)
    }

    /// Closed-form batch advance. Returns `None` (leaving the queue
    /// untouched) when the preconditions do not hold: uniform period and
    /// pending-time spread of at most one period.
    fn advance_bulk(&mut self, horizons: &[SimTime], fired: &mut [u64]) -> Option<u64> {
        let first = self.periodic.first()?;
        let period = first.period;
        let (mut lo, mut hi) = (first.time, first.time);
        for s in &self.periodic[1..] {
            if s.period != period {
                return None;
            }
            lo = lo.min(s.time);
            hi = hi.max(s.time);
        }
        if hi - lo > period {
            return None;
        }
        let p = period.as_nanos();
        // Firing count: slot fires at `t + k·p < horizon`, k = 0, 1, …
        let count = |t: SimTime, h: SimTime| -> u64 {
            if t >= h {
                0
            } else {
                (h - t).as_nanos().div_ceil(p)
            }
        };
        let mut total = 0u64;
        let mut last_fire = self.now;
        for (i, s) in self.periodic.iter().enumerate() {
            let n = count(s.time, horizons[i]);
            if n > 0 {
                total += n;
                last_fire = last_fire.max(s.time + period * (n - 1));
            }
        }
        if total == 0 {
            return Some(0);
        }
        // Because the spread is within one period, firings round-robin
        // through the slots in their pending `(time, seq)` order (at an
        // exact time tie the later-phased slot still carries the older —
        // smaller — seq, so the round order is stable). Each firing's
        // re-arm draws the next global seq, so slot i's final seq is
        // `base + (firings strictly before its last fire)`: its own
        // `n_i − 1` earlier rounds, plus `min(n_j, n_i)` from every slot
        // ordered before it in the round and `min(n_j, n_i − 1)` from
        // every slot after it.
        let base = self.next_seq;
        self.periodic_order.clear();
        for (i, s) in self.periodic.iter().enumerate() {
            let n_i = count(s.time, horizons[i]);
            if n_i == 0 {
                self.periodic_order.push(Reverse((s.time, s.seq, i)));
                continue;
            }
            let mut before = n_i - 1;
            for (j, o) in self.periodic.iter().enumerate() {
                if j == i {
                    continue;
                }
                let n_j = count(o.time, horizons[j]);
                before += if (o.time, o.seq) < (s.time, s.seq) {
                    n_j.min(n_i)
                } else {
                    n_j.min(n_i - 1)
                };
            }
            self.periodic_order
                .push(Reverse((s.time + period * n_i, base + before, i)));
            fired[i] += n_i;
        }
        // The rebuilt mirror holds every slot's new pending occurrence;
        // write the slots back from it.
        let (order, slots) = (&self.periodic_order, &mut self.periodic);
        for &Reverse((t, seq, i)) in order.iter() {
            slots[i].time = t;
            slots[i].seq = seq;
        }
        self.next_seq = base + total;
        self.now = last_fire;
        Some(total)
    }

    /// Per-firing batch advance: pops the mirror heap one occurrence at
    /// a time, in global `(time, seq)` order, for configurations the
    /// closed form does not cover. A slot whose occurrence fails its
    /// horizon stays failed for the whole call (its pending time only
    /// moves *up* when it fires, which it will not), so it is parked
    /// aside once and restored when the batch is done.
    fn advance_loop(&mut self, horizons: &[SimTime], fired: &mut [u64]) -> u64 {
        let mut total = 0u64;
        let mut parked: Vec<Reverse<(SimTime, u64, usize)>> = Vec::new();
        while let Some(&Reverse((t, _, i))) = self.periodic_order.peek() {
            if t >= horizons[i] {
                parked.push(self.periodic_order.pop().expect("peeked"));
                continue;
            }
            let (_, _, i) = self.fire_best_periodic();
            fired[i] += 1;
            total += 1;
        }
        for entry in parked {
            self.periodic_order.push(entry);
        }
        total
    }

    /// Drop all pending events (used when a run terminates early).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.periodic.clear();
        self.periodic_order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    fn event_ids_are_unique() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), ());
        let b = q.schedule(SimTime::from_nanos(1), ());
        assert_ne!(a, b);
        assert_ne!(a, EventId::NONE);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1u32);
        let (t, _, v) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), v), (10, 1));
        // Schedule relative to the new now.
        q.schedule(t + SimDuration::from_nanos(5), 2u32);
        q.schedule(t + SimDuration::from_nanos(3), 3u32);
        assert_eq!(q.pop().unwrap().2, 3);
        assert_eq!(q.pop().unwrap().2, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(4), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), ());
        q.clear();
        assert!(q.pop().is_none());
    }

    /// A periodic slot must produce the byte-identical `(time, id, payload)`
    /// stream of a handler that re-schedules itself as its last action.
    #[test]
    fn periodic_matches_self_rescheduling_handler() {
        let period = SimDuration::from_nanos(10);
        let mut fast = EventQueue::new();
        let mut refq = EventQueue::new();
        // Two "CPUs" with staggered phases plus interleaved ad-hoc events.
        fast.schedule_periodic(SimTime::from_nanos(10), period, "t0");
        fast.schedule_periodic(SimTime::from_nanos(15), period, "t1");
        refq.schedule(SimTime::from_nanos(10), "t0");
        refq.schedule(SimTime::from_nanos(15), "t1");
        for q in [&mut fast, &mut refq] {
            q.schedule(SimTime::from_nanos(12), "a");
            q.schedule(SimTime::from_nanos(20), "b");
            q.schedule(SimTime::from_nanos(20), "c");
        }
        for step in 0..50 {
            let f = fast.pop().unwrap();
            let r = refq.pop().unwrap();
            assert_eq!(f, r, "divergence at step {step}");
            // Reference handler: re-arm as the last seq allocation.
            if f.2.starts_with('t') {
                refq.schedule(r.0 + period, r.2);
            }
            // Ad-hoc traffic scheduled mid-handler on both queues.
            if f.2 == "a" {
                fast.schedule(f.0 + SimDuration::from_nanos(7), "d");
                refq.schedule(r.0 + SimDuration::from_nanos(7), "d");
            }
        }
    }

    /// Batch-advancing slots must leave the queue in the same state as
    /// popping each occurrence individually.
    #[test]
    fn advance_periodic_equals_sequential_pops() {
        let period = SimDuration::from_nanos(10);
        let mk = |q: &mut EventQueue<&str>| {
            q.schedule_periodic(SimTime::from_nanos(10), period, "t0");
            q.schedule_periodic(SimTime::from_nanos(15), period, "t1");
            q.schedule(SimTime::from_nanos(47), "stop");
        };
        let mut batched = EventQueue::new();
        let mut popped = EventQueue::new();
        mk(&mut batched);
        mk(&mut popped);

        // Fire everything strictly before t=47.
        let horizons = [SimTime::from_nanos(47), SimTime::from_nanos(47)];
        let mut fired = [0u64; 2];
        let total = batched.advance_periodic(&horizons, &mut fired);
        assert_eq!(fired, [4, 4]); // t0: 10,20,30,40  t1: 15,25,35,45
        assert_eq!(total, 8);

        let mut n = 0;
        while popped.peek_time().unwrap() < SimTime::from_nanos(47) {
            popped.pop().unwrap();
            n += 1;
        }
        assert_eq!(n, total);

        // Identical continuation: same times, same ids, same payloads.
        for _ in 0..20 {
            assert_eq!(batched.pop(), popped.pop());
        }
    }

    /// Per-slot horizons cap each slot independently while keeping the
    /// global merge order for seq allocation.
    #[test]
    fn advance_periodic_per_slot_horizons() {
        let period = SimDuration::from_nanos(10);
        let mut q = EventQueue::new();
        q.schedule_periodic(SimTime::from_nanos(10), period, "t0");
        q.schedule_periodic(SimTime::from_nanos(15), period, "t1");
        q.schedule(SimTime::from_nanos(47), "stop");
        let horizons = [SimTime::from_nanos(47), SimTime::from_nanos(40)];
        let mut fired = [0u64; 2];
        let total = q.advance_periodic(&horizons, &mut fired);
        assert_eq!(fired, [4, 3]); // t0: 10,20,30,40  t1: 15,25,35
        assert_eq!(total, 7);
        // t1's pending occurrence at 45 was left for a normal pop; it
        // precedes the heap event at 47 and the re-armed t0 at 50.
        let order: Vec<_> = (0..4).map(|_| q.pop().unwrap()).collect();
        let times: Vec<_> = order.iter().map(|e| e.0.as_nanos()).collect();
        let what: Vec<_> = order.iter().map(|e| e.2).collect();
        assert_eq!(times, vec![45, 47, 50, 55]);
        assert_eq!(what, vec!["t1", "stop", "t0", "t1"]);
    }

    /// The closed-form bulk advance and the per-firing merge loop must
    /// leave byte-identical queues: same firing counts, same clock, same
    /// seq allocation, same continuation stream. A seeded LCG explores
    /// phase ties, full-period spreads and ragged per-slot horizons.
    #[test]
    fn bulk_advance_matches_firing_loop() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let p = 10u64;
        for round in 0..300 {
            let nslots = 1 + (rng() % 6) as usize;
            let mut bulk = EventQueue::new();
            let mut looped = EventQueue::new();
            for i in 0..nslots {
                // Offsets in [0, p] inclusive: phase ties and the exact
                // one-period spread are both legal bulk inputs.
                let first = SimTime::from_nanos(rng() % (p + 1));
                for q in [&mut bulk, &mut looped] {
                    q.schedule_periodic(first, SimDuration::from_nanos(p), i);
                }
            }
            // One shared horizon, sometimes capped at a random subset's
            // pending occurrences — the shape the kernel produces when
            // non-quiescent CPUs freeze their tick slots. (A horizon
            // that fires one slot past another's remaining occurrence
            // would run the queue backwards on the next pop, so fully
            // independent per-slot horizons are not a legal input.)
            let mut h = SimTime::from_nanos(rng() % (6 * p));
            for i in 0..nslots {
                if rng() % 4 == 0 {
                    h = h.min(bulk.periodic_time(PeriodicId(i)));
                }
            }
            let horizons = vec![h; nslots];
            let mut fired_bulk = vec![0u64; nslots];
            let mut fired_loop = vec![0u64; nslots];
            let tb = bulk
                .advance_bulk(&horizons, &mut fired_bulk)
                .expect("uniform period within one spread takes the closed form");
            let tl = looped.advance_loop(&horizons, &mut fired_loop);
            assert_eq!(tb, tl, "round {round}: firing totals diverged");
            assert_eq!(fired_bulk, fired_loop, "round {round}: per-slot counts");
            assert_eq!(bulk.now(), looped.now(), "round {round}: clock");
            for step in 0..4 * nslots {
                assert_eq!(
                    bulk.pop(),
                    looped.pop(),
                    "round {round}: continuation diverged at pop {step}"
                );
            }
        }
    }

    /// Configurations outside the closed form — mixed periods, or slots
    /// drifted more than one period apart — fall back to the firing
    /// loop inside `advance_periodic` and stay exact.
    #[test]
    fn bulk_advance_declines_nonuniform_configurations() {
        let mut q = EventQueue::new();
        q.schedule_periodic(SimTime::from_nanos(0), SimDuration::from_nanos(10), "a");
        q.schedule_periodic(SimTime::from_nanos(25), SimDuration::from_nanos(10), "b");
        let horizons = [SimTime::from_nanos(40); 2];
        let mut fired = [0u64; 2];
        assert!(q.advance_bulk(&horizons, &mut fired).is_none());
        let total = q.advance_periodic(&horizons, &mut fired);
        assert_eq!(fired, [4, 2]); // a: 0,10,20,30  b: 25,35
        assert_eq!(total, 6);

        let mut q = EventQueue::new();
        q.schedule_periodic(SimTime::from_nanos(0), SimDuration::from_nanos(10), "a");
        q.schedule_periodic(SimTime::from_nanos(5), SimDuration::from_nanos(7), "b");
        let mut fired = [0u64; 2];
        assert!(q.advance_bulk(&horizons, &mut fired).is_none());
        let total = q.advance_periodic(&horizons, &mut fired);
        assert_eq!(fired, [4, 5]); // a: 0,10,20,30  b: 5,12,19,26,33
        assert_eq!(total, 9);
    }

    #[test]
    fn peek_and_len_cover_periodic() {
        let mut q = EventQueue::new();
        let id = q.schedule_periodic(SimTime::from_nanos(8), SimDuration::from_nanos(4), 0u32);
        q.schedule(SimTime::from_nanos(9), 1u32);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(8)));
        assert_eq!(q.peek_heap_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.periodic_time(id), SimTime::from_nanos(8));
        q.pop();
        // The slot re-armed: still two pending events.
        assert_eq!(q.len(), 2);
        assert_eq!(q.periodic_time(id), SimTime::from_nanos(12));
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
