//! Deterministic event queue.
//!
//! A thin wrapper over [`BinaryHeap`] that orders events by `(time, seq)`
//! where `seq` is a monotonically increasing insertion counter. Two events
//! scheduled for the same instant therefore pop in insertion order — the
//! property that makes a whole simulation run a *total* order, reproducible
//! from the RNG seed alone regardless of host platform.
//!
//! Events also carry a generation-friendly [`EventId`] so producers can
//! lazily cancel: rather than removing an entry from the heap (O(n)),
//! callers remember the id of the event they still care about and ignore
//! stale pops. The kernel uses this for compute-completion events that are
//! superseded whenever a task's execution speed changes.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, unique within one [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// A sentinel id that no real event ever receives.
    pub const NONE: EventId = EventId(u64::MAX);
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties deterministically in FIFO order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// ```
/// use hpl_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "later");
/// q.schedule(SimTime::from_nanos(10), "sooner");
/// let (t, _, what) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), what), (10, "sooner"));
/// assert_eq!(q.now(), t);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event
    /// (or zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; debug builds panic, release
    /// builds clamp to `now` so the event still fires (never silently lost).
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
        EventId(seq)
    }

    /// Pop the next event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        Some((entry.time, EventId(entry.seq), entry.payload))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Drop all pending events (used when a run terminates early).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    fn event_ids_are_unique() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), ());
        let b = q.schedule(SimTime::from_nanos(1), ());
        assert_ne!(a, b);
        assert_ne!(a, EventId::NONE);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1u32);
        let (t, _, v) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), v), (10, 1));
        // Schedule relative to the new now.
        q.schedule(t + SimDuration::from_nanos(5), 2u32);
        q.schedule(t + SimDuration::from_nanos(3), 3u32);
        assert_eq!(q.pop().unwrap().2, 3);
        assert_eq!(q.pop().unwrap().2, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(4), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), ());
        q.clear();
        assert!(q.pop().is_none());
    }
}
