//! Simulated time: nanosecond-resolution instants and durations.
//!
//! The whole simulator counts in integer nanoseconds. `u64` nanoseconds
//! cover ~584 years of simulated time, far beyond any run here; arithmetic
//! is `debug_assert`-checked and saturating in release builds so a
//! mis-ordered subtraction cannot silently wrap.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since the epoch as a duration.
    #[inline]
    pub const fn elapsed_since_epoch(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// Duration since `earlier`. Saturates to zero if `earlier` is later
    /// (callers assert in debug builds).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            self >= earlier,
            "SimTime::since: earlier {earlier:?} is after {self:?}"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Seconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True iff this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    /// Used by the execution-speed model (`work / speed`).
    #[inline]
    pub fn mul_f64(self, k: f64) -> Self {
        debug_assert!(k >= 0.0, "SimDuration::mul_f64: negative factor {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Divide by a positive float, rounding to the nearest nanosecond.
    #[inline]
    pub fn div_f64(self, k: f64) -> Self {
        debug_assert!(k > 0.0, "SimDuration::div_f64: non-positive divisor {k}");
        SimDuration((self.0 as f64 / k).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration underflow: {self:?} - {rhs:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
    }

    #[test]
    fn time_duration_arithmetic() {
        let t0 = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        let t1 = t0 + d;
        assert_eq!(t1.as_nanos(), 150);
        assert_eq!(t1.since(t0), d);
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(d.div_f64(2.0), SimDuration::from_millis(5));
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_nanos(1);
        let b = SimDuration::from_nanos(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
