//! Deterministic pseudo-random numbers and the distributions the noise and
//! workload models draw from.
//!
//! Implements xoshiro256++ (Blackman & Vigna) seeded through SplitMix64 —
//! the standard recipe that turns any 64-bit seed into a full 256-bit
//! state. Implemented here rather than pulled from a crate so that every
//! simulated run is bit-reproducible from `(seed, run_index)` forever,
//! independent of dependency upgrades.
//!
//! Distributions provided: uniform (float/int/range), Bernoulli,
//! exponential, standard normal (Marsaglia polar), log-normal and bounded
//! Pareto. The OS-noise model uses log-normal service times (short bodies,
//! occasional long tail) and exponential inter-arrival jitter; bounded
//! Pareto drives the rare "burst" episodes.

/// xoshiro256++ generator.
///
/// ```
/// use hpl_sim::Rng;
///
/// // Identical seeds give identical streams, forever.
/// let (mut a, mut b) = (Rng::new(7), Rng::new(7));
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Repetition streams are derived, not sequential.
/// let mut rep3 = Rng::for_run(0xBA5E, 3);
/// assert!(rep3.f64() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second normal variate from the polar method.
    spare_normal: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
const fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// Derive an independent stream for repetition `index` of a base seed.
    ///
    /// Mixes the index through SplitMix64 so streams for adjacent indices
    /// are decorrelated.
    pub fn for_run(base_seed: u64, index: u64) -> Self {
        let mut sm = base_seed ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(index.wrapping_add(1));
        let mixed = splitmix64(&mut sm) ^ index.rotate_left(17);
        Rng::new(mixed)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Requires `lo <= hi`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection.
    /// Requires `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Unbiased: reject the short range of the low product.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive. Requires `lo <= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        debug_assert!(!items.is_empty());
        &items[self.below(items.len() as u64) as usize]
    }

    /// Shuffle a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Exponential variate with the given mean (`mean > 0`).
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Avoid ln(0): f64() is in [0,1), so 1 - f64() is in (0,1].
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal variate (mean 0, stddev 1) via Marsaglia polar.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * k);
                return u * k;
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, stddev: f64) -> f64 {
        debug_assert!(stddev >= 0.0);
        mean + stddev * self.normal()
    }

    /// Log-normal variate parameterised by the *underlying* normal's
    /// `mu`/`sigma` (i.e. `exp(N(mu, sigma))`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Bounded Pareto variate on `[lo, hi]` with shape `alpha > 0`.
    /// Heavy-tailed: most draws near `lo`, occasional draws near `hi`.
    pub fn pareto_bounded(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(mut f: impl FnMut() -> f64, n: usize) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn run_streams_are_decorrelated() {
        let mut a = Rng::for_run(7, 0);
        let mut b = Rng::for_run(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = r.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_u64_inclusive() {
        let mut r = Rng::new(5);
        for _ in 0..1000 {
            let x = r.range_u64(10, 12);
            assert!((10..=12).contains(&x));
        }
        // Degenerate range.
        assert_eq!(r.range_u64(4, 4), 4);
    }

    #[test]
    fn exp_mean_approximately_correct() {
        let mut r = Rng::new(11);
        let m = sample_mean(|| r.exp(3.0), 50_000);
        assert!((m - 3.0).abs() < 0.1, "exp mean {m}");
    }

    #[test]
    fn normal_moments_approximately_correct() {
        let mut r = Rng::new(13);
        let xs: Vec<f64> = (0..50_000).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = Rng::new(17);
        for _ in 0..10_000 {
            assert!(r.lognormal(-1.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn pareto_bounded_stays_in_bounds() {
        let mut r = Rng::new(19);
        for _ in 0..10_000 {
            let x = r.pareto_bounded(1.2, 0.5, 100.0);
            assert!(
                (0.5..=100.0 + 1e-9).contains(&x),
                "pareto out of bounds: {x}"
            );
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut r = Rng::new(23);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| r.pareto_bounded(1.0, 1.0, 1000.0))
            .collect();
        let near_lo = xs.iter().filter(|&&x| x < 2.0).count() as f64 / xs.len() as f64;
        let tail = xs.iter().filter(|&&x| x > 100.0).count() as f64 / xs.len() as f64;
        assert!(near_lo > 0.4, "mass near lo = {near_lo}");
        assert!(tail > 0.001 && tail < 0.1, "tail mass = {tail}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(29);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(31);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut r = Rng::new(37);
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }
}
