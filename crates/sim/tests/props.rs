//! Property tests for the simulation substrate.

use hpl_sim::stats::{percentile, Summary};
use hpl_sim::{EventQueue, Rng, SimTime};
use proptest::prelude::*;

proptest! {
    /// The event queue pops a total order: non-decreasing time, and FIFO
    /// among equal timestamps.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, _, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO among ties");
                }
            }
            last = Some((t, seq));
        }
    }

    /// Welford merge equals bulk accumulation for any split point.
    #[test]
    fn summary_merge_equals_bulk(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        split in 0usize..100
    ) {
        let split = split.min(xs.len());
        let bulk = Summary::from_slice(&xs);
        let mut a = Summary::from_slice(&xs[..split]);
        let b = Summary::from_slice(&xs[split..]);
        a.merge(&b);
        prop_assert_eq!(a.count(), bulk.count());
        prop_assert!((a.mean() - bulk.mean()).abs() <= 1e-6 * bulk.mean().abs().max(1.0));
        prop_assert!((a.stddev() - bulk.stddev()).abs() <= 1e-6 * bulk.stddev().abs().max(1.0));
        prop_assert_eq!(a.min(), bulk.min());
        prop_assert_eq!(a.max(), bulk.max());
    }

    /// min <= mean <= max and variation >= 0 for any sample.
    #[test]
    fn summary_ordering(xs in proptest::collection::vec(0.001f64..1e6, 1..100)) {
        let s = Summary::from_slice(&xs);
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variation_pct() >= 0.0);
    }

    /// Percentiles are monotone in q and bounded by the extremes.
    #[test]
    fn percentile_monotone(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..60),
        q1 in 0.0f64..100.0,
        q2 in 0.0f64..100.0
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = percentile(&xs, lo);
        let p_hi = percentile(&xs, hi);
        prop_assert!(p_lo <= p_hi + 1e-9);
        prop_assert!(p_lo >= percentile(&xs, 0.0) - 1e-9);
        prop_assert!(p_hi <= percentile(&xs, 100.0) + 1e-9);
    }

    /// range_u64 stays in range; below covers [0, n).
    #[test]
    fn rng_ranges(seed in any::<u64>(), lo in 0u64..1000, width in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let x = rng.range_u64(lo, hi);
            prop_assert!((lo..=hi).contains(&x));
        }
    }

    /// Identical seeds produce identical streams (any seed).
    #[test]
    fn rng_deterministic(seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Bounded Pareto stays within its bounds for any valid parameters.
    #[test]
    fn pareto_bounded_in_bounds(
        seed in any::<u64>(),
        alpha in 0.1f64..5.0,
        lo in 0.001f64..10.0,
        span in 0.001f64..100.0
    ) {
        let mut rng = Rng::new(seed);
        let hi = lo + span;
        for _ in 0..20 {
            let x = rng.pareto_bounded(alpha, lo, hi);
            prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-6, "x={x} not in [{lo}, {hi}]");
        }
    }
}
