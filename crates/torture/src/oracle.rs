//! The online invariant oracle: a [`SchedObserver`] sink that replays
//! the kernel's decision stream against the paper's scheduling
//! invariants and records every contradiction as a [`Violation`].
//!
//! The oracle maintains its own shadow of the scheduler state — per-task
//! policy/state/CPU, per-CPU current task — driven *only* by events, and
//! checks each new event against that shadow:
//!
//! 1. **Class shielding** — a pick must come from the highest-ranked
//!    class with runnable tasks on that CPU: CFS never runs while an
//!    HPC task is runnable there (the paper's §V claim), and HPC never
//!    runs over runnable RT. Within RT, the picked priority must be
//!    maximal. Wakeup-preemption verdicts must agree with the class
//!    ranking.
//! 2. **HPC migrates only at fork** — a `Migrate` of an HPC task is
//!    legal only at fork, by explicit affinity call, or on the paper's
//!    init/finalize exception: a wakeup whose source CPU's *core* holds
//!    another live HPC task.
//! 3. **Round-robin rotation** — after a slice expiry, a CPU must not
//!    re-pick the expired RR/HPC task while a same-class (and, for RT,
//!    same-priority) peer has been waiting since before its last pick.
//! 4. **Vruntime monotonicity** — a CFS task's virtual runtime never
//!    decreases across consecutive descheduls while it stays
//!    continuously runnable (blocks, migrations and policy changes
//!    legally renormalise it, so tracking resets there).
//! 5. **No lost wakeups / lost picks** — a CPU never picks idle while
//!    the shadow says runnable tasks are queued on it, and wakeups only
//!    target blocked tasks.
//! 6. **Task conservation** — events never reference dead tasks as
//!    live ones, picks never resurrect blocked/dead tasks, and at run
//!    end the event-derived shadow must agree with the kernel's own
//!    task table ([`InvariantOracle::finish`]).
//! 7. **Virtual-time monotonicity** — event timestamps never regress,
//!    and delivered network messages respect the fabric's minimum
//!    latency with `queued <= latency`.

use hpl_kernel::observe::{DeactivateReason, SchedEvent, SchedObserver};
use hpl_kernel::{class_of_policy, ClassKind, Node, Pid, Policy, TaskState};
use hpl_sim::{SimDuration, SimTime};
use std::any::Any;
use std::collections::BTreeMap;

/// Cap on recorded violations per oracle: a truly broken scheduler
/// produces millions, and the first few are the diagnostic ones.
const MAX_VIOLATIONS: usize = 32;

/// One invariant contradiction.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Simulation time of the offending event.
    pub at: SimTime,
    /// Which invariant (short stable name, e.g. `"hpc-migrate"`).
    pub rule: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] at {}: {}", self.rule, self.at, self.detail)
    }
}

/// Shadow scheduler state of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShadowState {
    Runnable,
    Running,
    Blocked,
    Dead,
}

#[derive(Debug, Clone)]
struct TaskView {
    policy: Policy,
    cpu: usize,
    state: ShadowState,
    /// CPU pick sequence number at which the task last became runnable
    /// on its CPU (for the rotation-fairness check).
    runnable_seq: u64,
    /// Last observed post-deschedule vruntime; `None` after any event
    /// that legally renormalises it.
    vr_track: Option<u64>,
}

#[derive(Debug, Clone, Default)]
struct CpuView {
    running: Option<Pid>,
    /// Monotone pick counter for this CPU.
    pick_seq: u64,
    /// `pick_seq` value of the previous pick on this CPU.
    prev_pick_seq: u64,
    /// Pid picked by the previous pick (None = idle).
    prev_pick: Option<Pid>,
    /// A tick requested a reschedule (slice expiry) since the last pick.
    expiry_pending: bool,
}

fn rank(kind: ClassKind) -> u8 {
    match kind {
        ClassKind::RealTime => 3,
        ClassKind::Hpc => 2,
        ClassKind::Fair => 1,
        ClassKind::Idle => 0,
    }
}

/// The invariant-checking observer. Attach with
/// [`hpl_kernel::Node::attach_observer`] *after* constructing it from
/// the node ([`InvariantOracle::for_node`]) so the shadow starts from
/// the already-booted daemon population.
#[derive(Debug)]
pub struct InvariantOracle {
    tasks: BTreeMap<Pid, TaskView>,
    cpus: Vec<CpuView>,
    /// CPU index -> core id, for the HPC wakeup-migration exception.
    core_of: Vec<u32>,
    last_at: SimTime,
    /// Fabric minimum latency for NetDeliver checks (cluster runs).
    min_net_latency: Option<SimDuration>,
    /// Gang-rotation switch stream `(time ns, active gang)`, recorded
    /// for the runner's cross-node epoch-alignment rule (bounded).
    gang_log: Vec<(u64, Option<u64>)>,
    /// Weighted-slice stream `(start ns, gang, share milli, slice ns)`,
    /// recorded for the runner's slice-conservation, monotonicity and
    /// cross-node alignment rules (bounded).
    slice_log: Vec<(u64, u64, u32, u64)>,
    /// Lease grants seen from a user-space arbiter (`SchedEvent::Lease`),
    /// for the runner's lease-inertness rule.
    leases: u64,
    /// Gang rotation currently in force (last `GangEpoch.active` was
    /// `Some`). While rotating, a queued HPC task may legally be passed
    /// over — its gang is waiting for its epoch — so the shielding,
    /// lost-pick and rr-rotation rules exempt HPC tasks.
    gang_rotation: bool,
    violations: Vec<Violation>,
    /// Total violations seen (may exceed `violations.len()`).
    total: u64,
    events: u64,
}

/// Cap on the recorded gang switch stream: long runs rotate millions of
/// epochs and the alignment rule only needs a shared prefix.
const GANG_LOG_CAP: usize = 4096;

impl InvariantOracle {
    /// Build an oracle primed from `node`'s current task table and
    /// per-CPU currents, so tasks that predate attachment (boot
    /// daemons, warmup noise) are tracked from their true state.
    pub fn for_node(node: &Node) -> Self {
        let ncpus = node.topo.total_cpus() as usize;
        let core_of = (0..ncpus)
            .map(|i| node.topo.core_of(hpl_topology::CpuId(i as u32)))
            .collect();
        let mut tasks = BTreeMap::new();
        for t in node.tasks.iter() {
            let state = match t.state {
                TaskState::Runnable => ShadowState::Runnable,
                TaskState::Running => ShadowState::Running,
                TaskState::Blocked(_) => ShadowState::Blocked,
                TaskState::Dead => ShadowState::Dead,
            };
            tasks.insert(
                t.pid,
                TaskView {
                    policy: t.policy,
                    cpu: t.cpu.index(),
                    state,
                    runnable_seq: 0,
                    vr_track: None,
                },
            );
        }
        let mut cpus = vec![CpuView::default(); ncpus];
        for (i, cv) in cpus.iter_mut().enumerate() {
            cv.running = node.current(hpl_topology::CpuId(i as u32));
        }
        InvariantOracle {
            tasks,
            cpus,
            core_of,
            last_at: node.now(),
            min_net_latency: None,
            gang_log: Vec::new(),
            slice_log: Vec::new(),
            leases: 0,
            gang_rotation: false,
            violations: Vec::new(),
            total: 0,
            events: 0,
        }
    }

    /// A blank oracle. Used as a placeholder when temporarily moving a
    /// live oracle out of a node's observer slot for the end-of-run
    /// [`Self::finish`] cross-check (which needs `&Node` alongside
    /// `&mut self`).
    pub fn for_node_empty() -> Self {
        InvariantOracle {
            tasks: BTreeMap::new(),
            cpus: Vec::new(),
            core_of: Vec::new(),
            last_at: SimTime::from_nanos(0),
            min_net_latency: None,
            gang_log: Vec::new(),
            slice_log: Vec::new(),
            leases: 0,
            gang_rotation: false,
            violations: Vec::new(),
            total: 0,
            events: 0,
        }
    }

    /// Enable network-delivery checks against the fabric's minimum
    /// wire latency.
    pub fn with_min_net_latency(mut self, alpha: SimDuration) -> Self {
        self.min_net_latency = Some(alpha);
        self
    }

    /// Violations recorded so far (capped at an internal limit).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations observed, including those past the cap.
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Events observed.
    pub fn events_seen(&self) -> u64 {
        self.events
    }

    /// The recorded gang switch stream `(time ns, active gang)`,
    /// bounded at an internal cap. Nodes that host the same gang set
    /// under the same epoch must record identical streams — the
    /// runner's cross-node alignment rule.
    pub fn gang_log(&self) -> &[(u64, Option<u64>)] {
        &self.gang_log
    }

    /// The recorded weighted-slice stream
    /// `(start ns, gang, share milli, slice ns)`, bounded at the same
    /// cap as the gang log. Consecutive slices must tile virtual time
    /// exactly — the runner's slice-conservation rule — and nodes that
    /// host the same gang/share set must record identical streams.
    pub fn slice_log(&self) -> &[(u64, u64, u32, u64)] {
        &self.slice_log
    }

    /// Lease grants observed from a user-space coordination arbiter.
    /// Must stay zero when no coordinator is installed — the runner's
    /// lease-inertness rule.
    pub fn leases(&self) -> u64 {
        self.leases
    }

    /// End-of-run conservation check: the event-derived shadow must
    /// agree with the kernel's own task table on every task's liveness
    /// and CPU. Any divergence means an event was lost, duplicated or
    /// mis-reported. Returns violations found (also appended to
    /// [`Self::violations`]).
    pub fn finish(&mut self, node: &Node) -> usize {
        let mut found = 0;
        let at = node.now();
        for t in node.tasks.iter() {
            let Some(view) = self.tasks.get(&t.pid).cloned() else {
                self.record(at, "conservation", format!("{} never observed", t.pid));
                found += 1;
                continue;
            };
            let expect = match t.state {
                TaskState::Runnable => ShadowState::Runnable,
                TaskState::Running => ShadowState::Running,
                TaskState::Blocked(_) => ShadowState::Blocked,
                TaskState::Dead => ShadowState::Dead,
            };
            if view.state != expect {
                self.record(
                    at,
                    "conservation",
                    format!(
                        "{} shadow {:?} but kernel says {:?}",
                        t.pid, view.state, t.state
                    ),
                );
                found += 1;
            } else if expect != ShadowState::Dead && view.cpu != t.cpu.index() {
                self.record(
                    at,
                    "conservation",
                    format!(
                        "{} shadow on cpu{} but kernel says {}",
                        t.pid, view.cpu, t.cpu
                    ),
                );
                found += 1;
            }
        }
        let nkernel = node.tasks.iter().count();
        if self.tasks.len() != nkernel {
            self.record(
                at,
                "conservation",
                format!(
                    "shadow tracks {} tasks, kernel has {nkernel}",
                    self.tasks.len()
                ),
            );
            found += 1;
        }
        found
    }

    fn record(&mut self, at: SimTime, rule: &'static str, detail: String) {
        self.total += 1;
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(Violation { at, rule, detail });
        }
    }

    fn class_of(&self, pid: Pid) -> Option<ClassKind> {
        self.tasks.get(&pid).map(|v| class_of_policy(v.policy))
    }

    /// Runnable (queued, not running) tasks currently homed on `cpu`.
    fn runnable_on(&self, cpu: usize) -> impl Iterator<Item = (&Pid, &TaskView)> {
        self.tasks
            .iter()
            .filter(move |(_, v)| v.state == ShadowState::Runnable && v.cpu == cpu)
    }

    fn on_pick(
        &mut self,
        at: SimTime,
        cpu: usize,
        prev: Option<Pid>,
        picked: Option<Pid>,
        class: Option<ClassKind>,
        prev_vruntime: Option<u64>,
    ) {
        // Settle prev: a still-Running prev was just put back on the
        // queue (its state flips to Runnable); a blocked/dead prev
        // already left via Deactivate.
        let expiry = std::mem::take(&mut self.cpus[cpu].expiry_pending);
        if let Some(p) = prev {
            let seq = self.cpus[cpu].pick_seq;
            if let Some(v) = self.tasks.get_mut(&p) {
                if v.state == ShadowState::Running {
                    v.state = ShadowState::Runnable;
                    v.runnable_seq = seq;
                }
            }
            // Vruntime monotonicity across consecutive descheduls of a
            // continuously-runnable CFS task.
            if let Some(now_vr) = prev_vruntime {
                let old = self.tasks.get(&p).and_then(|v| v.vr_track);
                if let Some(old) = old {
                    if now_vr < old {
                        self.record(
                            at,
                            "vruntime-monotonic",
                            format!("{p} vruntime regressed {old} -> {now_vr} on cpu{cpu}"),
                        );
                    }
                }
                if let Some(v) = self.tasks.get_mut(&p) {
                    v.vr_track = Some(now_vr);
                }
            }
        }

        match picked {
            Some(q) => {
                let qv = self.tasks.get(&q).cloned();
                match qv {
                    None => self.record(at, "conservation", format!("picked unknown {q}")),
                    Some(v) => {
                        if v.state != ShadowState::Runnable {
                            self.record(
                                at,
                                "conservation",
                                format!("picked {q} in shadow state {:?}", v.state),
                            );
                        }
                        if v.cpu != cpu {
                            self.record(
                                at,
                                "conservation",
                                format!("picked {q} homed on cpu{} from cpu{cpu}", v.cpu),
                            );
                        }
                        let kind = class_of_policy(v.policy);
                        if class != Some(kind) {
                            self.record(
                                at,
                                "class-order",
                                format!(
                                    "pick of {q} reported class {class:?}, policy says {kind:?}"
                                ),
                            );
                        }
                        // Shielding: no runnable task of a higher class
                        // (or higher RT priority) may be waiting here.
                        let mut beaten: Option<String> = None;
                        for (tp, tv) in self.runnable_on(cpu) {
                            if *tp == q {
                                continue;
                            }
                            let tk = class_of_policy(tv.policy);
                            if self.gang_rotation && tk == ClassKind::Hpc {
                                // Rotation may legally idle an HPC task
                                // whose gang is out of its epoch.
                                continue;
                            }
                            if rank(tk) > rank(kind) {
                                beaten = Some(format!(
                                    "picked {q} ({kind:?}) over runnable {tp} ({tk:?})"
                                ));
                                break;
                            }
                            if kind == ClassKind::RealTime
                                && tk == ClassKind::RealTime
                                && tv.policy.rt_prio() > v.policy.rt_prio()
                            {
                                beaten = Some(format!(
                                    "picked {q} (rt {:?}) over runnable {tp} (rt {:?})",
                                    v.policy.rt_prio(),
                                    tv.policy.rt_prio()
                                ));
                                break;
                            }
                        }
                        if let Some(msg) = beaten {
                            self.record(at, "class-order", msg);
                        }
                        // Rotation fairness: an expiry-requeued RR/HPC
                        // task must not be re-picked past a same-class
                        // peer that was already waiting before its
                        // previous pick.
                        if expiry
                            && prev == Some(q)
                            && matches!(kind, ClassKind::Hpc | ClassKind::RealTime)
                            && matches!(v.policy, Policy::Hpc | Policy::Rr(_))
                            && !(self.gang_rotation && kind == ClassKind::Hpc)
                        {
                            let cutoff = self.cpus[cpu].prev_pick_seq;
                            let starved = self
                                .runnable_on(cpu)
                                .find(|(tp, tv)| {
                                    **tp != q
                                        && class_of_policy(tv.policy) == kind
                                        && tv.policy.rt_prio() == v.policy.rt_prio()
                                        && tv.runnable_seq < cutoff
                                })
                                .map(|(tp, _)| *tp);
                            if let Some(tp) = starved {
                                self.record(
                                    at,
                                    "rr-rotation",
                                    format!(
                                        "{q} re-picked on cpu{cpu} after slice expiry while peer {tp} waited"
                                    ),
                                );
                            }
                        }
                        if let Some(v) = self.tasks.get_mut(&q) {
                            v.state = ShadowState::Running;
                        }
                        self.cpus[cpu].running = Some(q);
                    }
                }
            }
            None => {
                let rotation = self.gang_rotation;
                let waiting = self
                    .runnable_on(cpu)
                    .find(|(_, tv)| !(rotation && class_of_policy(tv.policy) == ClassKind::Hpc))
                    .map(|(tp, _)| *tp);
                if let Some(tp) = waiting {
                    self.record(
                        at,
                        "lost-pick",
                        format!("cpu{cpu} went idle with {tp} runnable on it"),
                    );
                }
                self.cpus[cpu].running = None;
            }
        }
        let cv = &mut self.cpus[cpu];
        cv.prev_pick = picked;
        cv.prev_pick_seq = cv.pick_seq;
        cv.pick_seq += 1;
    }

    fn on_migrate(
        &mut self,
        at: SimTime,
        pid: Pid,
        from: usize,
        to: usize,
        reason: hpl_kernel::MigrateReason,
    ) {
        use hpl_kernel::MigrateReason as R;
        let Some(v) = self.tasks.get(&pid).cloned() else {
            self.record(at, "conservation", format!("migrate of unknown {pid}"));
            return;
        };
        if v.state == ShadowState::Dead {
            self.record(at, "conservation", format!("migrate of dead {pid}"));
            return;
        }
        if v.policy == Policy::Hpc {
            let ok = match reason {
                R::Fork | R::Affinity => true,
                R::Balance => false,
                R::Wakeup => {
                    // Paper's init/finalize exception: legal only if the
                    // source core held another live HPC task. (Superset
                    // of the class's real "contended" test, which also
                    // excludes passives — over-approximating keeps the
                    // oracle sound against legal schedules.)
                    let src_core = self.core_of[from.min(self.core_of.len() - 1)];
                    self.tasks.iter().any(|(op, ov)| {
                        *op != pid
                            && ov.policy == Policy::Hpc
                            && ov.state != ShadowState::Dead
                            && self.core_of[ov.cpu.min(self.core_of.len() - 1)] == src_core
                    })
                }
            };
            if !ok {
                self.record(
                    at,
                    "hpc-migrate",
                    format!("HPC {pid} migrated cpu{from} -> cpu{to} for {reason:?}"),
                );
            }
        }
        let v = self.tasks.get_mut(&pid).expect("checked above");
        // An active balance or forced affinity move can shove a Running
        // task straight to another CPU's queue.
        if v.state == ShadowState::Running {
            v.state = ShadowState::Runnable;
        }
        v.cpu = to;
        v.vr_track = None;
        let seq = self.cpus[to].pick_seq;
        self.tasks.get_mut(&pid).expect("checked").runnable_seq = seq;
    }

    fn on_preempt_check(
        &mut self,
        at: SimTime,
        cpu: usize,
        curr: Option<Pid>,
        woken: Pid,
        verdict: hpl_kernel::PreemptVerdict,
    ) {
        use hpl_kernel::PreemptVerdict as V;
        let Some(wk) = self.class_of(woken) else {
            self.record(
                at,
                "conservation",
                format!("preempt check for unknown {woken}"),
            );
            return;
        };
        match curr {
            None => {
                if verdict != V::IdleCpu {
                    self.record(
                        at,
                        "preempt-verdict",
                        format!("cpu{cpu} idle but verdict {verdict:?} for {woken}"),
                    );
                }
            }
            Some(c) => {
                let Some(ck) = self.class_of(c) else {
                    self.record(at, "conservation", format!("preempt curr unknown {c}"));
                    return;
                };
                let expect = if rank(wk) > rank(ck) {
                    Some(V::HigherClass)
                } else if rank(wk) < rank(ck) {
                    Some(V::LowerClass)
                } else {
                    None // same class: Granted/Denied are the class's call
                };
                let bad = match expect {
                    Some(e) => verdict != e,
                    None => !matches!(verdict, V::Granted | V::Denied),
                };
                if bad {
                    self.record(
                        at,
                        "preempt-verdict",
                        format!(
                            "cpu{cpu}: woken {woken} ({wk:?}) vs curr {c} ({ck:?}) got {verdict:?}"
                        ),
                    );
                }
            }
        }
    }
}

impl SchedObserver for InvariantOracle {
    fn observe(&mut self, at: SimTime, ev: &SchedEvent) {
        self.events += 1;
        if at < self.last_at {
            self.record(
                at,
                "time-monotonic",
                format!("event at {at} after {}", self.last_at),
            );
        }
        self.last_at = self.last_at.max(at);
        match *ev {
            SchedEvent::SetSched { pid, from, to } => {
                let have = self.tasks.get(&pid).map(|v| v.policy);
                match have {
                    Some(p) => {
                        if from.is_none() {
                            self.record(at, "conservation", format!("{pid} created twice"));
                        } else if Some(p) != from {
                            self.record(
                                at,
                                "conservation",
                                format!("{pid} policy change from {from:?} but shadow has {p:?}"),
                            );
                        }
                        let v = self.tasks.get_mut(&pid).expect("present");
                        v.policy = to;
                        v.vr_track = None;
                    }
                    None => {
                        self.tasks.insert(
                            pid,
                            TaskView {
                                policy: to,
                                cpu: 0,
                                state: ShadowState::Runnable,
                                runnable_seq: 0,
                                vr_track: None,
                            },
                        );
                        if from.is_some() {
                            self.record(
                                at,
                                "conservation",
                                format!("policy change for unknown {pid}"),
                            );
                        }
                    }
                }
            }
            SchedEvent::ForkPlaced { pid, cpu, .. } => {
                let seq = self.cpus[cpu.index()].pick_seq;
                if self.tasks.contains_key(&pid) {
                    // SetSched(from: None) precedes ForkPlaced.
                    let v = self.tasks.get_mut(&pid).expect("present");
                    v.cpu = cpu.index();
                    v.state = ShadowState::Runnable;
                    v.runnable_seq = seq;
                } else {
                    self.record(at, "conservation", format!("fork of unannounced {pid}"));
                }
            }
            SchedEvent::Wakeup { pid, cpu } => {
                let seq = self.cpus[cpu.index()].pick_seq;
                let state = self.tasks.get(&pid).map(|v| v.state);
                match state {
                    Some(s) => {
                        match s {
                            ShadowState::Blocked => {}
                            ShadowState::Dead => self.record(
                                at,
                                "conservation",
                                format!("wakeup of dead {pid}"),
                            ),
                            s => self.record(
                                at,
                                "lost-wakeup",
                                format!("wakeup of {pid} already {s:?} (token lost or duplicated)"),
                            ),
                        }
                        let v = self.tasks.get_mut(&pid).expect("present");
                        v.state = ShadowState::Runnable;
                        v.cpu = cpu.index();
                        v.runnable_seq = seq;
                        v.vr_track = None;
                    }
                    None => self.record(at, "conservation", format!("wakeup of unknown {pid}")),
                }
            }
            SchedEvent::Deactivate { pid, reason, .. } => {
                let state = self.tasks.get(&pid).map(|v| v.state);
                match state {
                    Some(s) => {
                        if s == ShadowState::Dead {
                            self.record(at, "conservation", format!("deactivate of dead {pid}"));
                        }
                        let v = self.tasks.get_mut(&pid).expect("present");
                        v.state = match reason {
                            DeactivateReason::Block => ShadowState::Blocked,
                            DeactivateReason::Exit => ShadowState::Dead,
                        };
                        v.vr_track = None;
                    }
                    None => self.record(at, "conservation", format!("deactivate of unknown {pid}")),
                }
            }
            SchedEvent::Pick {
                cpu,
                prev,
                picked,
                class,
                prev_vruntime,
                ..
            } => self.on_pick(at, cpu.index(), prev, picked, class, prev_vruntime),
            SchedEvent::Switch { cpu, to, .. } => {
                if self.cpus[cpu.index()].running != to {
                    let have = self.cpus[cpu.index()].running;
                    self.record(
                        at,
                        "conservation",
                        format!("switch to {to:?} on cpu{} but pick said {have:?}", cpu.index()),
                    );
                }
            }
            SchedEvent::Migrate {
                pid,
                from,
                to,
                reason,
            } => self.on_migrate(at, pid, from.index(), to.index(), reason),
            SchedEvent::PreemptCheck {
                cpu,
                curr,
                woken,
                verdict,
            } => self.on_preempt_check(at, cpu.index(), curr, woken, verdict),
            SchedEvent::Tick { cpu, outcome } => {
                if matches!(
                    outcome,
                    hpl_kernel::TickOutcome::Accounted { resched: true }
                ) {
                    self.cpus[cpu.index()].expiry_pending = true;
                }
            }
            SchedEvent::NetDeliver {
                latency, queued, ..
            } => {
                if let Some(alpha) = self.min_net_latency {
                    if latency < alpha {
                        self.record(
                            at,
                            "net-latency",
                            format!("delivery latency {latency} below fabric alpha {alpha}"),
                        );
                    }
                }
                if queued > latency {
                    self.record(
                        at,
                        "net-latency",
                        format!("queued {queued} exceeds total latency {latency}"),
                    );
                }
            }
            SchedEvent::GangEpoch { active, gangs } => {
                // An active gang only makes sense while rotation is in
                // force (two or more gangs live); a final switch to
                // `None` is how rotation legally ends.
                if gangs < 2 && active.is_some() {
                    self.record(
                        at,
                        "gang-active",
                        format!("active gang {active:?} with {gangs} gang(s) live"),
                    );
                }
                self.gang_rotation = active.is_some();
                if self.gang_log.len() < GANG_LOG_CAP {
                    self.gang_log.push((at.as_nanos(), active));
                }
            }
            SchedEvent::GangSlice {
                gang,
                share_milli,
                slice_ns,
                gangs,
            } => {
                // Slices exist only under weighted rotation: at least
                // two live gangs, a non-zero extent, a non-zero share.
                if gangs < 2 {
                    self.record(
                        at,
                        "gang-slice",
                        format!("slice for gang {gang} with {gangs} gang(s) live"),
                    );
                }
                if slice_ns == 0 {
                    self.record(at, "gang-slice", format!("zero-length slice for gang {gang}"));
                }
                if share_milli == 0 {
                    self.record(at, "gang-slice", format!("zero share for gang {gang}"));
                }
                if self.slice_log.len() < GANG_LOG_CAP {
                    self.slice_log
                        .push((at.as_nanos(), gang, share_milli, slice_ns));
                }
            }
            SchedEvent::Lease {
                gang,
                granted,
                jobs,
                ..
            } => {
                // The arbiter grants exactly the ranks registered as
                // waiting; more grants than registered jobs' worth of
                // waiters means a token leak.
                if jobs == 0 {
                    self.record(at, "lease", format!("lease for gang {gang} with no jobs"));
                }
                self.leases += 1;
                let _ = granted;
            }
            SchedEvent::Balance { .. }
            | SchedEvent::NetSend { .. }
            | SchedEvent::Irq { .. }
            | SchedEvent::NoiseArrival { .. }
            // Per-gang CPU attribution is integrated by MetricsSink;
            // the shadow's own running-task view already covers it.
            | SchedEvent::GangRun { .. }
            // Per-node share sums are audited by the runner against the
            // Dfrs policy's own DfrsDecision records.
            | SchedEvent::JobShare { .. }
            // Batch-level job lifecycle events come from above the
            // kernel; the batch occupancy invariant is checked by the
            // runner against Cluster::active_jobs_on instead.
            | SchedEvent::JobSubmit { .. }
            | SchedEvent::JobStart { .. }
            | SchedEvent::JobEnd { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
