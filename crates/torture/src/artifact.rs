//! Replayable failure artifacts.
//!
//! When a scenario fails, the torture harness writes two files into the
//! output directory (default `target/torture/`):
//!
//! * `failure-<seed>.torture` — the *shrunk* scenario in the
//!   [`Scenario::to_text`] format, preceded by `#`-comment lines
//!   recording the failures and the shrink trail. Replay it with
//!   `torture --replay <file>`.
//! * `failure-<seed>.trace.json` — a Chrome trace (load in
//!   `chrome://tracing` or Perfetto) of the shrunk scenario's reference
//!   run, so the scheduling decisions around the violation are visible.

use crate::runner::run_scenario;
use crate::scenario::Scenario;
use crate::shrink::Shrunk;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Paths written by [`write_failure`].
#[derive(Debug)]
pub struct ArtifactPaths {
    /// The replayable scenario file.
    pub scenario: PathBuf,
    /// The Chrome trace of the failing run.
    pub trace: Option<PathBuf>,
}

/// Serialise a shrunk failure to `<dir>/failure-<seed>.torture` (+
/// `.trace.json`) and return the paths.
pub fn write_failure(dir: &Path, shrunk: &Shrunk) -> std::io::Result<ArtifactPaths> {
    std::fs::create_dir_all(dir)?;
    let seed = shrunk.scenario.seed;
    let scn_path = dir.join(format!("failure-{seed:#x}.torture"));
    let mut f = std::fs::File::create(&scn_path)?;
    writeln!(f, "# hpl-torture failure artifact")?;
    writeln!(
        f,
        "# replay: cargo run --release --bin torture -- --replay {}",
        scn_path.display()
    )?;
    for msg in &shrunk.failures {
        writeln!(f, "# failure: {msg}")?;
    }
    for step in &shrunk.steps {
        writeln!(f, "# shrunk: {step}")?;
    }
    write!(f, "{}", shrunk.scenario.to_text())?;

    let trace_path = dir.join(format!("failure-{seed:#x}.trace.json"));
    let report = run_scenario(&shrunk.scenario, false, true);
    let trace = match report.trace {
        Some(json) => {
            std::fs::write(&trace_path, json)?;
            Some(trace_path)
        }
        None => None,
    };
    Ok(ArtifactPaths {
        scenario: scn_path,
        trace,
    })
}

/// Parse an artifact file back into a scenario (ignores `#` comments —
/// handled by [`Scenario::from_text`]).
pub fn read_artifact(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Scenario::from_text(&text)
}
