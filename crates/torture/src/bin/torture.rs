//! `hpl-torture` — seeded scheduler fuzzing with invariant oracles.
//!
//! Runs N random scenarios, each on both event-loop flavours with an
//! invariant oracle attached per node, plus a shrinker selftest (a
//! deliberately injected scheduler bug must be caught and shrunk to a
//! replayable artifact) and a mechanistic-vs-analytic differential.
//!
//! ```text
//! torture [--scenarios N] [--seed S] [--smoke] [--faults] [--replay FILE]
//!         [--out DIR] [--skip-selftest] [--skip-analytic]
//! ```
//!
//! `--faults` forces a fault plan (message loss, degrade windows,
//! crash/restart churn on batch workloads) onto every multi-node
//! scenario instead of leaving the plan to the sampler's dice.
//!
//! Exit code 0 = everything held; 1 = a failure was found (artifact
//! paths are printed).

use hpl_torture::artifact::{read_artifact, write_failure};
use hpl_torture::runner::{analytic_differential, check_scenario};
use hpl_torture::scenario::{Fault, ModeKind, Scenario, Workload};
use hpl_torture::shrink::shrink;
use std::path::{Path, PathBuf};

struct Args {
    scenarios: u64,
    seed: u64,
    smoke: bool,
    faults: bool,
    replay: Option<PathBuf>,
    out: PathBuf,
    selftest: bool,
    analytic: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        scenarios: 200,
        seed: 0x70A7,
        smoke: false,
        faults: false,
        replay: None,
        out: PathBuf::from("target/torture"),
        selftest: true,
        analytic: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--scenarios" => a.scenarios = val("--scenarios").parse().expect("bad --scenarios"),
            "--seed" => {
                let v = val("--seed");
                a.seed = v
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16).expect("bad --seed"))
                    .unwrap_or_else(|| v.parse().expect("bad --seed"));
            }
            "--smoke" => {
                a.smoke = true;
                a.scenarios = 40;
            }
            "--faults" => a.faults = true,
            "--replay" => a.replay = Some(PathBuf::from(val("--replay"))),
            "--out" => a.out = PathBuf::from(val("--out")),
            "--skip-selftest" => a.selftest = false,
            "--skip-analytic" => a.analytic = false,
            "--help" | "-h" => {
                println!(
                    "torture [--scenarios N] [--seed S] [--smoke] [--faults] [--replay FILE] \
                     [--out DIR] [--skip-selftest] [--skip-analytic]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

fn describe(sc: &Scenario) -> String {
    let wl = match &sc.workload {
        Workload::Mpi(m) => format!("mpi {}r/{:?} {} ops", m.ranks_per_node, m.mode, m.ops.len()),
        Workload::Soup(s) => format!("soup {} tasks", s.tasks.len()),
        Workload::Batch(b) => format!("batch {:?} {} jobs", b.policy, b.jobs.len()),
    };
    format!(
        "n{} {:?}{}{}{}{} noise{}% {}",
        sc.nodes,
        sc.topo,
        if sc.hpl { " hpl" } else { "" },
        if sc.tickless { " tickless" } else { "" },
        if sc.switched { " switched" } else { "" },
        if sc.faults.is_none() { "" } else { " faults" },
        sc.noise_pct,
        wl
    )
}

/// Run one scenario through the full check; on failure, shrink and
/// write artifacts. Returns false if the scenario failed.
fn torture_one(sc: &Scenario, out: &Path) -> bool {
    let failures = check_scenario(sc);
    if failures.is_empty() {
        return true;
    }
    eprintln!("FAILURE seed={:#x}: {}", sc.seed, describe(sc));
    for f in &failures {
        eprintln!("  {f}");
    }
    eprintln!("  shrinking...");
    let shrunk = shrink(sc, |step| eprintln!("    shrunk: {step}"));
    eprintln!(
        "  minimised after {} runs: {}",
        shrunk.runs,
        describe(&shrunk.scenario)
    );
    match write_failure(out, &shrunk) {
        Ok(paths) => {
            eprintln!("  artifact: {}", paths.scenario.display());
            if let Some(t) = paths.trace {
                eprintln!("  trace:    {}", t.display());
            }
        }
        Err(e) => eprintln!("  artifact write failed: {e}"),
    }
    false
}

/// The shrinker selftest: inject a real scheduler bug (HPC wakeups
/// migrate to the next CPU, violating migrate-only-at-fork), confirm
/// the oracle catches it, shrink it, write the artifact, then re-parse
/// the artifact and confirm the replay still fails.
fn selftest(out: &Path) -> bool {
    // A scenario guaranteed to exercise HPC wakeups: HPC-mode MPI job,
    // whose init handshake sleeps and wakes every rank.
    let mut sc = Scenario::sample(0x5E1F, 7);
    sc.fault = Fault::HpcWakeupMigrate;
    sc.hpl = true;
    sc.nodes = 1;
    if let Workload::Soup(_) = sc.workload {
        // Need an HPC workload; resample MPI and force the mode.
        for i in 0.. {
            let cand = Scenario::sample(0x5E1F, i);
            if let Workload::Mpi(_) = cand.workload {
                sc = cand;
                sc.fault = Fault::HpcWakeupMigrate;
                sc.hpl = true;
                sc.nodes = 1;
                break;
            }
        }
    }
    if let Workload::Mpi(m) = &mut sc.workload {
        m.mode = ModeKind::Hpc;
    }
    let failures = check_scenario(&sc);
    if failures.is_empty() {
        eprintln!("selftest: injected hpc-migrate fault was NOT caught");
        return false;
    }
    if !failures.iter().any(|f| f.detail.contains("hpc-migrate")) {
        eprintln!("selftest: fault caught but not by the hpc-migrate rule:");
        for f in &failures {
            eprintln!("  {f}");
        }
        return false;
    }
    let shrunk = shrink(&sc, |_| {});
    let paths = match write_failure(out, &shrunk) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("selftest: artifact write failed: {e}");
            return false;
        }
    };
    let replayed = match read_artifact(&paths.scenario) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("selftest: artifact did not re-parse: {e}");
            return false;
        }
    };
    if check_scenario(&replayed).is_empty() {
        eprintln!("selftest: replayed artifact no longer fails");
        return false;
    }
    println!(
        "selftest: injected fault caught, shrunk in {} runs ({} steps), artifact replays: {}",
        shrunk.runs,
        shrunk.steps.len(),
        paths.scenario.display()
    );
    true
}

fn main() {
    let args = parse_args();
    let mut failed = 0u64;

    if let Some(path) = &args.replay {
        let sc = match read_artifact(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("replay: {e}");
                std::process::exit(2);
            }
        };
        println!("replaying {}: {}", path.display(), describe(&sc));
        if torture_one(&sc, &args.out) {
            println!("replay passed: no violations, loops agree");
            std::process::exit(0);
        }
        std::process::exit(1);
    }

    println!(
        "torture: {} scenarios, base seed {:#x} (both event loops, oracle per node)",
        args.scenarios, args.seed
    );
    for i in 0..args.scenarios {
        let mut sc = Scenario::sample(args.seed, i);
        if args.faults && sc.nodes > 1 && sc.faults.is_none() {
            sc.install_fault_plan(args.seed ^ i.rotate_left(17));
        }
        if !torture_one(&sc, &args.out) {
            failed += 1;
        }
        if (i + 1) % 50 == 0 {
            println!("  {}/{} scenarios done", i + 1, args.scenarios);
        }
    }
    println!(
        "scenarios: {}/{} clean",
        args.scenarios - failed,
        args.scenarios
    );

    if args.selftest && !selftest(&args.out) {
        failed += 1;
    }

    if args.analytic {
        let diffs = analytic_differential(args.seed, 0.15);
        if diffs.is_empty() {
            println!("analytic differential: mechanistic cluster within 15% of resonance model");
        } else {
            for d in &diffs {
                eprintln!("analytic differential: {d}");
            }
            failed += 1;
        }
    }

    if failed > 0 {
        eprintln!("torture: FAILED ({failed} problem(s))");
        std::process::exit(1);
    }
    println!("torture: all checks held");
}
