//! Scenario execution and the differential oracles.
//!
//! [`run_scenario`] materialises a [`Scenario`] into real kernel nodes
//! (or a lockstep [`Cluster`]), attaches one [`InvariantOracle`] per
//! node, runs the workload to completion and returns a [`RunReport`].
//! [`check_scenario`] is the full torture check: the scenario runs on
//! **both** event-loop flavours and the two runs must be bit-equal
//! (outcome, execution time, state fingerprint) on top of both being
//! invariant-clean and live. [`analytic_differential`] cross-checks the
//! mechanistic cluster against the analytic [`ResonanceModel`] on a
//! bulk-synchronous job where the model's assumptions hold.

use crate::oracle::{InvariantOracle, Violation};
use crate::scenario::{
    BatchPolicyKind, BatchSpec, CoordKind, Fault, ModeKind, OpKind, PolicyKind, Scenario, SoupSpec,
    SoupStep, TopoKind, Workload,
};
use hpl_batch::{
    AllocPolicy, BatchConfig, BatchReport, BatchRun, BatchTrace, CheckpointSpec,
    ConservativeBackfill, Dfrs, EasyBackfill, FairShare, Fcfs, MultiQueue,
};
use hpl_cluster::{
    Cluster, CosimConfig, EmpiricalDist, Interconnect, NetConfig, NodeFault, Placement,
    ResonanceModel,
};
use hpl_coord::CoordRuntime;
use hpl_core::HplClass;
use hpl_kernel::noise::{IrqSpec, NoiseProfile};
use hpl_kernel::observe::ChromeTraceSink;
use hpl_kernel::program::ScriptProgram;
use hpl_kernel::{
    BarrierId, ChanId, KernelConfig, Node, NodeBuilder, ObserverId, Pid, Policy, RunOutcome, Step,
    TaskSpec, TaskState,
};
use hpl_mpi::{launch, JobSpec, MpiOp, SchedMode};
use hpl_sim::{Rng, SimDuration, SimTime};
use hpl_topology::{CpuId, CpuMask, Topology};

/// Tag on all torture-soup tasks.
pub const TORTURE_TAG: u32 = 0x7047;

const CHAN_BASE: u64 = 8_000;
const BARRIER_ID: u64 = 9_000;
/// Per-node event budget; exceeding it is a liveness failure.
const EVENT_BUDGET: u64 = 60_000_000;
/// Noise warmup before the workload starts.
const WARMUP: SimDuration = SimDuration::from_millis(300);

/// Outcome of one scenario run on one event-loop flavour.
#[derive(Debug)]
pub struct RunReport {
    /// Did the workload complete within budget?
    pub outcome: RunOutcome,
    /// Workload execution time (ns); 0 when it never completed.
    pub exec_ns: u64,
    /// Scheduler-state hash at the end.
    pub fingerprint: u64,
    /// Events dispatched (loop-flavour dependent; not compared).
    pub events: u64,
    /// Invariant violations from every node's oracle, including the
    /// end-of-run conservation check.
    pub violations: Vec<Violation>,
    /// Chrome trace JSON, when requested.
    pub trace: Option<String>,
}

fn topology(kind: TopoKind) -> Topology {
    match kind {
        TopoKind::Smp(n) => Topology::smp(n),
        TopoKind::Power6 => Topology::power6_js22(),
    }
}

fn policy(p: PolicyKind) -> Policy {
    match p {
        PolicyKind::Normal(nice) => Policy::Normal { nice },
        PolicyKind::Batch(nice) => Policy::Batch { nice },
        PolicyKind::Fifo(p) => Policy::Fifo(p),
        PolicyKind::Rr(p) => Policy::Rr(p),
        PolicyKind::Hpc => Policy::Hpc,
    }
}

fn sched_mode(m: ModeKind) -> SchedMode {
    match m {
        ModeKind::Cfs => SchedMode::Cfs,
        ModeKind::CfsNice(nice) => SchedMode::CfsNice { nice },
        ModeKind::Rt(prio) => SchedMode::Rt { prio },
        ModeKind::Hpc => SchedMode::Hpc,
        ModeKind::CfsPinned => SchedMode::CfsPinned,
    }
}

fn mpi_op(op: &OpKind) -> MpiOp {
    match *op {
        OpKind::Compute(ns) => MpiOp::Compute {
            mean: SimDuration::from_nanos(ns),
        },
        OpKind::Barrier => MpiOp::Barrier,
        OpKind::Allreduce(bytes) => MpiOp::Allreduce { bytes },
        OpKind::Alltoall(bytes) => MpiOp::Alltoall { bytes },
        OpKind::NeighborExchange(bytes) => MpiOp::NeighborExchange { bytes },
        OpKind::Bcast(bytes) => MpiOp::Bcast { bytes },
        OpKind::Reduce(bytes) => MpiOp::Reduce { bytes },
    }
}

fn build_node(sc: &Scenario, node_idx: u64, fast: bool) -> Node {
    let mut cfg = if sc.hpl {
        KernelConfig::hpl()
    } else {
        KernelConfig::default()
    };
    cfg.fast_event_loop = fast;
    cfg.tickless_single_hpc = sc.hpl && sc.tickless;
    // Batch scenarios may arm gang rotation; the cluster driver then
    // enrolls each job's local roots so co-resident jobs timeslice in
    // lockstep epochs instead of serialising under HPL run-to-block.
    if let Workload::Batch(b) = &sc.workload {
        if b.gang_epoch_us > 0 {
            cfg.gang_epoch = Some(SimDuration::from_micros(b.gang_epoch_us));
        }
    }
    let mut noise = if sc.noise_pct == 0 {
        NoiseProfile::quiet()
    } else {
        NoiseProfile::standard(sc.ncpus()).scaled(sc.noise_pct as f64 / 100.0)
    };
    if sc.irq {
        noise = noise.with_irq(IrqSpec {
            rate_hz: 250.0,
            cost: SimDuration::from_micros(5),
            affinity: CpuMask::single(CpuId(0)),
        });
    }
    let mut b = NodeBuilder::new(topology(sc.topo))
        .with_config(cfg)
        .with_noise(noise)
        .with_seed(Rng::for_run(sc.seed, node_idx).next_u64());
    if sc.hpl {
        let class = match sc.fault {
            Fault::None => HplClass::new(),
            Fault::HpcWakeupMigrate => HplClass::new().with_fault_wakeup_migrate(),
        };
        b = b.with_hpc_class(Box::new(class));
    }
    b.build()
}

/// Chan id carrying tokens from soup task `from` to soup task `to`.
fn soup_chan(from: u32, to: u32) -> ChanId {
    ChanId(CHAN_BASE + from as u64 * 64 + to as u64)
}

fn soup_driver_spec(soup: &SoupSpec) -> TaskSpec {
    let parties = soup.barrier_parties();
    let mut forks = Vec::new();
    for (i, t) in soup.tasks.iter().enumerate() {
        let mut steps = Vec::new();
        for s in &t.steps {
            steps.push(match *s {
                SoupStep::Compute(ns) => Step::Compute(SimDuration::from_nanos(ns)),
                SoupStep::Sleep(ns) => Step::Sleep(SimDuration::from_nanos(ns)),
                SoupStep::Notify { to } => Step::Notify {
                    chan: soup_chan(i as u32, to),
                    tokens: 1,
                },
                SoupStep::Wait { from } => Step::WaitChan(soup_chan(from, i as u32)),
                SoupStep::SpinWait { from, spin_ns } => Step::WaitChanSpin {
                    chan: soup_chan(from, i as u32),
                    spin_limit: SimDuration::from_nanos(spin_ns),
                },
                SoupStep::Barrier => Step::Barrier {
                    id: BarrierId(BARRIER_ID),
                    parties,
                },
                SoupStep::ForkChild { ns } => Step::Fork(
                    TaskSpec::new(
                        format!("soup{i}-child"),
                        Policy::Normal { nice: 0 },
                        ScriptProgram::boxed(
                            "soup-child",
                            vec![Step::Compute(SimDuration::from_nanos(ns)), Step::Exit],
                        ),
                    )
                    .with_tag(TORTURE_TAG),
                ),
                SoupStep::WaitChildren => Step::WaitChildren,
                SoupStep::SetPolicy(p) => Step::SetPolicy {
                    target: None,
                    policy: policy(p),
                },
            });
        }
        steps.push(Step::Exit);
        let mut spec = TaskSpec::new(
            format!("soup{i}"),
            policy(t.policy),
            ScriptProgram::boxed(format!("soup{i}"), steps),
        )
        .with_tag(TORTURE_TAG);
        if let Some(pin) = t.pin {
            spec = spec.with_affinity(CpuMask::single(CpuId(pin)));
        }
        forks.push(Step::Fork(spec));
    }
    forks.push(Step::WaitChildren);
    forks.push(Step::Exit);
    TaskSpec::new(
        "torture-driver",
        Policy::Normal { nice: 0 },
        ScriptProgram::boxed("torture-driver", forks),
    )
    .with_tag(TORTURE_TAG)
}

fn job_spec(sc: &Scenario) -> JobSpec {
    let Workload::Mpi(m) = &sc.workload else {
        panic!("job_spec on a soup scenario");
    };
    let ops: Vec<MpiOp> = m.ops.iter().map(mpi_op).collect();
    JobSpec::new(m.ranks_per_node * sc.nodes, ops).with_nodes(sc.nodes)
}

/// Drive a batch workload on the already-built cluster and translate
/// batch-level invariant breaches into oracle-style violations: node
/// occupancy above the policy's limit; under EASY, any audited backfill
/// decision that intrudes on the head job's reservation; under
/// conservative, any admission that delays an earlier-queued job's
/// reservation; under fair share, any dispatch that skips a poorer
/// user's fittable job; under DFRS, any audited reallocation whose
/// shares exceed a whole CPU on some node; and, when walltime kills
/// fired or the policy reallocates shares (DFRS), any node still
/// occupied after every job completed (a kill or reallocation that
/// leaked its nodes).
fn run_batch_workload(
    sc: &Scenario,
    b: &BatchSpec,
    cluster: &mut Cluster,
    budget: u64,
    violations: &mut Vec<Violation>,
) -> (RunOutcome, u64) {
    let trace = BatchTrace {
        jobs: b.jobs.clone(),
    };
    // Coordination runtime, when the scenario asks for one: the kernel
    // backend realises policy shares as weighted gang slices, the
    // user-space backend interposes a per-node arbiter daemon and rank
    // shims. Installed before any launch, like a real deployment.
    let mut coord = match b.coord {
        CoordKind::Off => None,
        CoordKind::Kernel | CoordKind::User => {
            // Slices are cut in units of the armed gang epoch; a
            // hand-edited artifact may leave the epoch off, so fall
            // back to the sampler's middle draw rather than divide a
            // zero-length period.
            let epoch = SimDuration::from_micros(if b.gang_epoch_us > 0 {
                b.gang_epoch_us
            } else {
                500
            });
            let mut c = if b.coord == CoordKind::Kernel {
                CoordRuntime::kernel_weighted(epoch)
            } else {
                CoordRuntime::user_space(epoch)
            };
            c.install(cluster);
            Some(c)
        }
    };
    let mut drive = |cluster: &mut Cluster,
                     policy: &mut dyn AllocPolicy,
                     cfg: BatchConfig|
     -> Result<BatchReport, RunOutcome> {
        let run = BatchRun::new(&trace).config(cfg);
        match &mut coord {
            Some(c) => run.run_coordinated(cluster, policy, c),
            None => run.run(cluster, policy),
        }
    };
    // Under crash churn, give jobs a checkpoint cadence so a requeued
    // job resumes instead of recomputing — exercising the full
    // crash/requeue/restore path, not just the requeue.
    let crashes = sc
        .faults
        .events
        .iter()
        .any(|e| matches!(e.kind, NodeFault::Crash));
    let cfg = BatchConfig {
        mode: if sc.hpl {
            SchedMode::Hpc
        } else {
            SchedMode::Cfs
        },
        max_events: budget,
        checkpoint: crashes.then_some(CheckpointSpec {
            every_iters: 1,
            cost: SimDuration::from_micros(200),
            restore: SimDuration::from_micros(500),
        }),
        walltime_factor: b.walltime.then_some(1.0),
        ..BatchConfig::default()
    };
    let result = match b.policy {
        BatchPolicyKind::Fcfs => drive(cluster, &mut Fcfs, cfg),
        BatchPolicyKind::Easy => {
            let mut policy = EasyBackfill::new();
            let result = drive(cluster, &mut policy, cfg);
            for d in policy.decisions() {
                if !d.respects_reservation() {
                    violations.push(Violation {
                        at: d.shadow,
                        rule: "batch-reservation",
                        detail: format!(
                            "backfill of job {} intrudes on head {}'s reservation: {d:?}",
                            d.job, d.head
                        ),
                    });
                }
            }
            result
        }
        BatchPolicyKind::Conservative => {
            let mut policy = ConservativeBackfill::new();
            let result = drive(cluster, &mut policy, cfg);
            for d in policy.decisions() {
                if !d.respects_reservations() {
                    violations.push(Violation {
                        at: d.est_end,
                        rule: "batch-conservative-reservation",
                        detail: format!(
                            "admission of job {} delays an earlier-queued reservation: {d:?}",
                            d.job
                        ),
                    });
                }
            }
            // The counter sees ring-dropped admissions too.
            if policy.reservation_violations() as usize
                > violations
                    .iter()
                    .filter(|v| v.rule == "batch-conservative-reservation")
                    .count()
            {
                violations.push(Violation {
                    at: cluster.node(0).now(),
                    rule: "batch-conservative-reservation",
                    detail: format!(
                        "{} reservation violations total (some aged out of the audit ring)",
                        policy.reservation_violations()
                    ),
                });
            }
            result
        }
        BatchPolicyKind::MultiQueue => {
            let mut policy = MultiQueue::default();
            drive(cluster, &mut policy, cfg)
        }
        BatchPolicyKind::FairShare => {
            let mut policy = FairShare::new();
            let result = drive(cluster, &mut policy, cfg);
            for d in policy.decisions() {
                if !d.respects_shares() {
                    violations.push(Violation {
                        at: cluster.node(0).now(),
                        rule: "batch-fairshare-order",
                        detail: format!(
                            "dispatch of job {} (user {}, ratio {:.3}) skipped a poorer \
                             fittable user (min ratio {:.3})",
                            d.job, d.user, d.ratio, d.min_fittable_ratio
                        ),
                    });
                }
            }
            result
        }
        BatchPolicyKind::Dfrs => {
            let mut policy = Dfrs::new(SimDuration::from_millis(1), sc.seed);
            for &(job, weight) in &b.job_weights {
                policy = policy.with_job_weight(job, weight);
            }
            let result = drive(cluster, &mut policy, cfg);
            for d in policy.decisions() {
                if !d.respects_shares() {
                    violations.push(Violation {
                        at: d.at,
                        rule: "batch-dfrs-shares",
                        detail: format!(
                            "reallocation epoch {} assigns a node more than a whole \
                             CPU of shares: {d:?}",
                            d.epoch
                        ),
                    });
                }
            }
            // The counter sees ring-dropped reallocations too.
            if policy.share_violations() as usize
                > violations
                    .iter()
                    .filter(|v| v.rule == "batch-dfrs-shares")
                    .count()
            {
                violations.push(Violation {
                    at: cluster.node(0).now(),
                    rule: "batch-dfrs-shares",
                    detail: format!(
                        "{} share violations total (some aged out of the audit ring)",
                        policy.share_violations()
                    ),
                });
            }
            result
        }
    };
    match result {
        Ok(report) => {
            if report.jobs_lost > 0 {
                violations.push(Violation {
                    at: cluster.node(0).now(),
                    rule: "batch-lost-job",
                    detail: format!(
                        "{} of {} jobs never completed ({} requeues) — a crash may \
                         delay a job, never lose it",
                        report.jobs_lost,
                        trace.jobs.len(),
                        report.requeues
                    ),
                });
            }
            if report.occupancy_violations > 0 {
                violations.push(Violation {
                    at: cluster.node(0).now(),
                    rule: "batch-occupancy",
                    detail: format!(
                        "{} allocation rounds exceeded the policy occupancy limit (peak {})",
                        report.occupancy_violations, report.max_node_occupancy
                    ),
                });
            }
            if report.jobs_killed > 0 || matches!(b.policy, BatchPolicyKind::Dfrs) {
                // A walltime kill — or a DFRS share reallocation over a
                // finished run — must fully release its nodes: with
                // every job completed or killed, no node may still
                // count an active batch job.
                for n in 0..cluster.len() {
                    let live = cluster.active_jobs_on(n);
                    if live > 0 {
                        violations.push(Violation {
                            at: cluster.node(0).now(),
                            rule: "batch-occupancy-leak",
                            detail: format!(
                                "node {n} still runs {live} job task(s) after all \
                                 {} jobs ended ({} killed)",
                                trace.jobs.len(),
                                report.jobs_killed
                            ),
                        });
                    }
                }
            }
            (RunOutcome::Completed, report.makespan.as_nanos())
        }
        Err(o) => (o, 0),
    }
}

/// Cross-node gang rules over the oracles' recorded switch streams.
/// With rotation unarmed the streams must be empty; under a dedicated
/// (one-job-per-node) policy an armed epoch must stay observably inert
/// — occupancy one means a node never hosts two gangs, so rotation can
/// never engage; and nodes that hosted the same gang set with the same
/// switch times (an identical co-resident history) must have switched
/// the same gang in every window, because the active gang is a pure
/// function of virtual time and the sorted gang set. Nodes whose
/// histories differ — a release landing on different sides of an epoch
/// boundary on different nodes is legal noise skew — fall into
/// different groups and are not compared.
fn check_gang_logs(
    b: &BatchSpec,
    logs: &[Vec<(u64, Option<u64>)>],
    violations: &mut Vec<Violation>,
) {
    if b.gang_epoch_us == 0 {
        for (n, log) in logs.iter().enumerate() {
            if let Some(&(at, active)) = log.first() {
                violations.push(Violation {
                    at: SimTime::from_nanos(at),
                    rule: "gang-unarmed",
                    detail: format!("node {n} switched gang {active:?} with no epoch configured"),
                });
            }
        }
        return;
    }
    if !matches!(b.policy, BatchPolicyKind::Dfrs) {
        for (n, log) in logs.iter().enumerate() {
            if let Some(&(at, active)) = log.iter().find(|(_, a)| a.is_some()) {
                violations.push(Violation {
                    at: SimTime::from_nanos(at),
                    rule: "gang-inert",
                    detail: format!(
                        "node {n} activated gang {active:?} under a one-job-per-node policy"
                    ),
                });
            }
        }
        return;
    }
    let mut groups: std::collections::BTreeMap<(Vec<u64>, Vec<u64>), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (n, log) in logs.iter().enumerate() {
        let mut ids: Vec<u64> = log.iter().filter_map(|&(_, a)| a).collect();
        ids.sort_unstable();
        ids.dedup();
        let times: Vec<u64> = log.iter().map(|&(t, _)| t).collect();
        groups.entry((ids, times)).or_default().push(n);
    }
    for nodes in groups.values() {
        let first = &logs[nodes[0]];
        for &n in &nodes[1..] {
            if &logs[n] != first {
                let at = logs[n]
                    .iter()
                    .zip(first.iter())
                    .find(|(a, b)| a != b)
                    .map_or(0, |(a, _)| a.0);
                violations.push(Violation {
                    at: SimTime::from_nanos(at),
                    rule: "gang-alignment",
                    detail: format!(
                        "nodes {} and {n} host the same gang set with the same switch \
                         times but rotate different gangs",
                        nodes[0]
                    ),
                });
            }
        }
    }
}

/// Coordination rules over the oracles' weighted-slice and lease
/// streams.
///
/// Inertness first: weighted kernel slices exist only under a kernel
/// coordinator on the share-managing (DFRS) policy with rotation armed
/// — any other configuration must keep every node's slice stream
/// empty, and leases flow only from a user-space arbiter. Where slices
/// do flow, three geometric rules apply:
///
/// - **Epoch conservation**: a periodic pair of a steady two-gang
///   rotation (two full back-to-back periods with contiguous slices,
///   unchanged shares and repeating lengths) tiles the rotation period
///   exactly — `2 × epoch` for the two co-residents the DFRS occupancy
///   limit allows, to within the single nanosecond the rotated
///   remainder may move across period boundaries.
/// - **Monotonicity**: within such a pair, the larger share never gets
///   the shorter slice (beyond the remainder nanosecond).
/// - **Cross-node alignment**: nodes hosting the same gang set with
///   the same emission times must record identical streams — the slice
///   schedule is a pure function of the shared virtual clock and the
///   share table, so identical histories must yield identical cuts.
///
/// Engagement partials (rotation arming mid-period) and share-change
/// corrections break the periodicity guard — a one-off partial cannot
/// repeat at the same length one period later — and are skipped, not
/// excused: every steady interior pair is checked.
fn check_coord_logs(
    b: &BatchSpec,
    slice_logs: &[Vec<(u64, u64, u32, u64)>],
    leases: &[u64],
    violations: &mut Vec<Violation>,
) {
    let slices_armed = b.coord == CoordKind::Kernel
        && matches!(b.policy, BatchPolicyKind::Dfrs)
        && b.gang_epoch_us > 0;
    if !slices_armed {
        for (n, log) in slice_logs.iter().enumerate() {
            if let Some(&(at, gang, ..)) = log.first() {
                violations.push(Violation {
                    at: SimTime::from_nanos(at),
                    rule: "slice-inert",
                    detail: format!("node {n} sliced gang {gang} with no kernel coordinator"),
                });
            }
        }
    }
    if b.coord != CoordKind::User {
        // Inertness only: no positive "leases must flow" rule here.
        // Leases are demand-driven — a shim yields only while a second
        // gang is co-resident on its node, and whether two jobs ever
        // overlap is a scheduling outcome the spec cannot predict.
        // Positive lease coverage lives in the coord crate tests and
        // the coord bench, which construct guaranteed co-residency.
        for (n, &l) in leases.iter().enumerate() {
            if l > 0 {
                violations.push(Violation {
                    at: SimTime::from_nanos(0),
                    rule: "lease-inert",
                    detail: format!("node {n} granted {l} lease(s) with no user-space arbiter"),
                });
            }
        }
    }
    if !slices_armed {
        return;
    }
    let epoch_ns = b.gang_epoch_us * 1_000;
    let period = 2 * epoch_ns;
    for (n, log) in slice_logs.iter().enumerate() {
        for w in log.windows(2) {
            if w[1].0 < w[0].0 {
                violations.push(Violation {
                    at: SimTime::from_nanos(w[1].0),
                    rule: "slice-order",
                    detail: format!(
                        "node {n}: slice emissions regress in time ({} after {})",
                        w[1].0, w[0].0
                    ),
                });
            }
        }
        for w in log.windows(4) {
            let (a0, g0, s0, l0) = w[0];
            let (a1, g1, s1, l1) = w[1];
            let (a2, g2, s2, l2) = w[2];
            let (a3, g3, s3, l3) = w[3];
            // Steady two-gang rotation: two back-to-back periods with
            // contiguous slices, the same gang pair, unchanged shares
            // and repeating lengths. Anything else (engagement
            // partial, share-change correction, rotation teardown)
            // fails the guard — a correction's partial slice is
            // contiguous and may even carry an unchanged share value,
            // but it cannot repeat at the same length one period
            // later.
            let steady = a1 == a0 + l0
                && a2 == a1 + l1
                && a3 == a2 + l2
                && g0 != g1
                && (g2, g3) == (g0, g1)
                && (s2, s3) == (s0, s1)
                && (l2, l3) == (l0, l1);
            if !steady {
                continue;
            }
            if (l0 + l1).abs_diff(period) > 1 {
                violations.push(Violation {
                    at: SimTime::from_nanos(a0),
                    rule: "slice-conservation",
                    detail: format!(
                        "node {n}: slices {l0}ns + {l1}ns of gangs {g0}/{g1} do not tile \
                         the {period}ns rotation period"
                    ),
                });
            }
            if (s0 >= s1 && l0 + 1 < l1) || (s1 >= s0 && l1 + 1 < l0) {
                violations.push(Violation {
                    at: SimTime::from_nanos(a0),
                    rule: "slice-monotone",
                    detail: format!(
                        "node {n}: share {s0} got {l0}ns but share {s1} got {l1}ns \
                         (gangs {g0}/{g1})"
                    ),
                });
            }
        }
    }
    // Cross-node alignment, exactly as for the gang switch streams:
    // nodes with an identical (gang set, emission times) history must
    // have cut identical slices.
    let mut groups: std::collections::BTreeMap<(Vec<u64>, Vec<u64>), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (n, log) in slice_logs.iter().enumerate() {
        let mut ids: Vec<u64> = log.iter().map(|&(_, g, _, _)| g).collect();
        ids.sort_unstable();
        ids.dedup();
        let times: Vec<u64> = log.iter().map(|&(t, _, _, _)| t).collect();
        groups.entry((ids, times)).or_default().push(n);
    }
    for nodes in groups.values() {
        let first = &slice_logs[nodes[0]];
        for &n in &nodes[1..] {
            if &slice_logs[n] != first {
                let at = slice_logs[n]
                    .iter()
                    .zip(first.iter())
                    .find(|(a, b)| a != b)
                    .map_or(0, |(a, _)| a.0);
                violations.push(Violation {
                    at: SimTime::from_nanos(at),
                    rule: "slice-alignment",
                    detail: format!(
                        "nodes {} and {n} host the same gang set with the same emission \
                         times but cut different slices",
                        nodes[0]
                    ),
                });
            }
        }
    }
}

/// Run `sc` once on the given event-loop flavour, invariant oracles
/// attached to every node. `with_trace` additionally captures a Chrome
/// trace of the run (for failure artifacts).
pub fn run_scenario(sc: &Scenario, fast: bool, with_trace: bool) -> RunReport {
    // Batch workloads always go through the cluster path: the batch
    // engine drives a `Cluster` even when it has a single node.
    if sc.nodes == 1 && !matches!(sc.workload, Workload::Batch(_)) {
        run_single(sc, fast, with_trace)
    } else {
        run_cluster(sc, fast, with_trace)
    }
}

fn attach_oracle(node: &mut Node, min_alpha: Option<SimDuration>) -> ObserverId {
    let mut oracle = InvariantOracle::for_node(node);
    if let Some(a) = min_alpha {
        oracle = oracle.with_min_net_latency(a);
    }
    node.attach_observer(Box::new(oracle))
}

fn run_single(sc: &Scenario, fast: bool, with_trace: bool) -> RunReport {
    let mut node = build_node(sc, 0, fast);
    let oracle_id = attach_oracle(&mut node, None);
    let trace_id =
        with_trace.then(|| node.attach_observer(Box::new(ChromeTraceSink::new(200_000))));
    node.run_for(WARMUP);
    let (outcome, exec_ns) = match &sc.workload {
        Workload::Soup(soup) => {
            let started = node.now();
            let driver = node.spawn(soup_driver_spec(soup));
            let outcome = node.run_until_exit(driver, EVENT_BUDGET);
            let exec = if outcome.is_complete() {
                node.now().since(started).as_nanos()
            } else {
                0
            };
            (outcome, exec)
        }
        Workload::Mpi(m) => {
            let handle = launch(&mut node, &job_spec(sc), sched_mode(m.mode));
            match handle.try_run_to_completion(&mut node, EVENT_BUDGET) {
                Ok(exec) => (RunOutcome::Completed, exec.as_nanos()),
                Err(outcome) => (outcome, 0),
            }
        }
        Workload::Batch(_) => unreachable!("batch workloads run on the cluster path"),
    };
    // Split borrow: run the conservation cross-check with a detached
    // shadow, since finish() needs both the oracle (mut) and the node.
    let mut detached = node
        .observer_mut::<InvariantOracle>(oracle_id)
        .map(|o| std::mem::replace(o, InvariantOracle::for_node_empty()));
    if let Some(oracle) = detached.as_mut() {
        oracle.finish(&node);
    }
    let mut violations = detached
        .as_ref()
        .map(|o| o.violations().to_vec())
        .unwrap_or_default();
    // No coordinator exists on the single-node path: weighted slices
    // and arbiter leases must both be wholly absent.
    if let Some(oracle) = &detached {
        if let Some(&(at, gang, ..)) = oracle.slice_log().first() {
            violations.push(Violation {
                at: SimTime::from_nanos(at),
                rule: "slice-inert",
                detail: format!("weighted slice for gang {gang} with no coordinator"),
            });
        }
        if oracle.leases() > 0 {
            violations.push(Violation {
                at: node.now(),
                rule: "lease-inert",
                detail: format!("{} lease(s) granted with no arbiter", oracle.leases()),
            });
        }
    }
    let trace = trace_id.and_then(|id| node.export_chrome_trace(id));
    RunReport {
        outcome,
        exec_ns,
        fingerprint: node.state_fingerprint(),
        events: node.events_processed(),
        violations,
        trace,
    }
}

fn run_cluster(sc: &Scenario, fast: bool, with_trace: bool) -> RunReport {
    let net_cfg = NetConfig::default();
    let alpha = net_cfg.alpha;
    let fabric = if sc.switched {
        Interconnect::switched(sc.nodes as usize, net_cfg)
    } else {
        Interconnect::flat(sc.nodes as usize, net_cfg)
    };
    // Parallel scenarios force at least two stepping threads and a
    // minimal density threshold, so the pool genuinely crosses host
    // threads even on small clusters and single-core CI hosts — the
    // point is torturing the parallel driver, not going fast.
    let cosim = if sc.parallel {
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        CosimConfig::parallel()
            .with_threads(host.max(2))
            .with_min_active(2)
    } else {
        CosimConfig::serial()
    };
    // Nodes come from a factory (not a pre-built Vec) so a fault plan's
    // restart events can rebuild a crashed node from the same recipe.
    let factory_sc = sc.clone();
    let mut cluster = Cluster::builder()
        .nodes_with(sc.nodes as usize, move |i| {
            build_node(&factory_sc, i as u64, fast)
        })
        .fabric(fabric)
        .cosim(cosim)
        .faults(sc.faults.clone())
        .build();
    let mut oracle_ids = Vec::new();
    let mut trace_ids = Vec::new();
    for i in 0..sc.nodes as usize {
        let node = cluster.node_mut(i);
        oracle_ids.push(attach_oracle(node, Some(alpha)));
        if with_trace {
            trace_ids.push(node.attach_observer(Box::new(ChromeTraceSink::new(200_000))));
        }
        node.run_for(WARMUP);
    }
    let budget = EVENT_BUDGET * sc.nodes as u64;
    let mut batch_violations = Vec::new();
    let (outcome, exec_ns) = match &sc.workload {
        Workload::Mpi(m) => {
            let handle = cluster.launch(&job_spec(sc), sched_mode(m.mode), Placement::All);
            match cluster.try_run_to_completion(&handle, budget) {
                Ok(exec) => (RunOutcome::Completed, exec.as_nanos()),
                Err(o) => (o, 0),
            }
        }
        Workload::Batch(b) => {
            run_batch_workload(sc, b, &mut cluster, budget, &mut batch_violations)
        }
        Workload::Soup(_) => panic!("multi-node scenarios cannot run a soup"),
    };
    let mut violations = batch_violations;
    let mut gang_logs: Vec<Vec<(u64, Option<u64>)>> = Vec::new();
    let mut slice_logs: Vec<Vec<(u64, u64, u32, u64)>> = Vec::new();
    let mut lease_counts: Vec<u64> = Vec::new();
    for (i, &id) in oracle_ids.iter().enumerate() {
        let mut detached = cluster
            .node_mut(i)
            .observer_mut::<InvariantOracle>(id)
            .map(|o| std::mem::replace(o, InvariantOracle::for_node_empty()));
        if let Some(oracle) = detached.as_mut() {
            oracle.finish(cluster.node(i));
            for v in oracle.violations() {
                violations.push(Violation {
                    at: v.at,
                    rule: v.rule,
                    detail: format!("node{i}: {}", v.detail),
                });
            }
        }
        gang_logs.push(
            detached
                .as_ref()
                .map(|o| o.gang_log().to_vec())
                .unwrap_or_default(),
        );
        slice_logs.push(
            detached
                .as_ref()
                .map(|o| o.slice_log().to_vec())
                .unwrap_or_default(),
        );
        lease_counts.push(detached.as_ref().map(|o| o.leases()).unwrap_or(0));
    }
    match &sc.workload {
        Workload::Batch(b) => {
            check_gang_logs(b, &gang_logs, &mut violations);
            check_coord_logs(b, &slice_logs, &lease_counts, &mut violations);
        }
        _ => {
            // No coordinator outside batch workloads: weighted slices
            // and arbiter leases must both be wholly absent.
            for (n, log) in slice_logs.iter().enumerate() {
                if let Some(&(at, gang, ..)) = log.first() {
                    violations.push(Violation {
                        at: SimTime::from_nanos(at),
                        rule: "slice-inert",
                        detail: format!(
                            "node {n} sliced gang {gang} with no coordinator in the scenario"
                        ),
                    });
                }
            }
            for (n, &l) in lease_counts.iter().enumerate() {
                if l > 0 {
                    violations.push(Violation {
                        at: cluster.node(0).now(),
                        rule: "lease-inert",
                        detail: format!("node {n} granted {l} lease(s) with no arbiter"),
                    });
                }
            }
        }
    }
    let trace = (!trace_ids.is_empty())
        .then(|| cluster.export_chrome_trace(&trace_ids))
        .flatten();
    RunReport {
        outcome,
        exec_ns,
        fingerprint: cluster.state_fingerprint(),
        events: cluster.events_processed(),
        violations,
        trace,
    }
}

/// One reason a scenario failed its checks.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Stable category: `invariant`, `liveness` or `divergence`.
    pub kind: &'static str,
    /// Specifics.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// The full torture check for one scenario: run it on the reference and
/// fast event loops, demand zero invariant violations, completion on
/// both, and bit-equal end states across the two flavours.
pub fn check_scenario(sc: &Scenario) -> Vec<Failure> {
    let mut failures = Vec::new();
    let r = run_scenario(sc, false, false);
    let f = run_scenario(sc, true, false);
    for (label, rep) in [("ref", &r), ("fast", &f)] {
        for v in &rep.violations {
            failures.push(Failure {
                kind: "invariant",
                detail: format!("[{label}] {v}"),
            });
        }
        if !rep.outcome.is_complete() {
            failures.push(Failure {
                kind: "liveness",
                detail: format!("[{label}] workload ended {}", rep.outcome.label()),
            });
        }
    }
    if r.outcome.is_complete() && f.outcome.is_complete() {
        if r.fingerprint != f.fingerprint {
            failures.push(Failure {
                kind: "divergence",
                detail: format!(
                    "state fingerprint ref {:#x} vs fast {:#x}",
                    r.fingerprint, f.fingerprint
                ),
            });
        }
        if r.exec_ns != f.exec_ns {
            failures.push(Failure {
                kind: "divergence",
                detail: format!("exec time ref {}ns vs fast {}ns", r.exec_ns, f.exec_ns),
            });
        }
    }
    // Third leg for parallel scenarios: the same scenario under the
    // serial driver must be bit-equal to the pooled run — host-thread
    // scheduling is not allowed to leak into simulated state.
    if sc.parallel {
        let mut serial_sc = sc.clone();
        serial_sc.parallel = false;
        let s = run_scenario(&serial_sc, true, false);
        if !s.outcome.is_complete() {
            failures.push(Failure {
                kind: "liveness",
                detail: format!("[serial] workload ended {}", s.outcome.label()),
            });
        }
        if s.outcome.is_complete() && f.outcome.is_complete() {
            if s.fingerprint != f.fingerprint {
                failures.push(Failure {
                    kind: "divergence",
                    detail: format!(
                        "state fingerprint serial {:#x} vs parallel {:#x}",
                        s.fingerprint, f.fingerprint
                    ),
                });
            }
            if s.exec_ns != f.exec_ns {
                failures.push(Failure {
                    kind: "divergence",
                    detail: format!(
                        "exec time serial {}ns vs parallel {}ns",
                        s.exec_ns, f.exec_ns
                    ),
                });
            }
        }
    }
    failures
}

// ---------------------------------------------------------------------
// Analytic differential
// ---------------------------------------------------------------------

const AN_RANKS: u32 = 4;
const AN_ITERS: u32 = 8;

fn analytic_job(nodes: u32) -> JobSpec {
    JobSpec::new(
        nodes * AN_RANKS,
        JobSpec::repeat(
            AN_ITERS,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(2),
                },
                MpiOp::Allreduce { bytes: 8 },
            ],
        ),
    )
    .with_nodes(nodes)
}

fn analytic_cluster(nodes: u32, seed: u64, fast: bool) -> Cluster {
    let sc = Scenario {
        seed,
        nodes,
        topo: TopoKind::Power6,
        switched: false,
        hpl: true,
        tickless: false,
        noise_pct: 100,
        irq: false,
        parallel: false,
        fault: Fault::None,
        faults: hpl_cluster::FaultPlan::none(),
        workload: Workload::Soup(SoupSpec::default()), // unused
    };
    let cfg = NetConfig {
        alpha: SimDuration::from_micros(1),
        beta_ns_per_byte: 0.1,
    };
    Cluster::builder()
        .nodes_with(nodes as usize, move |i| build_node(&sc, i as u64, fast))
        .fabric(Interconnect::flat(nodes as usize, cfg))
        .build()
}

/// Per-phase durations on an N-node mechanistic run under the HPL
/// scheduler, watched on node 0's per-phase barrier. First iteration
/// (launch skew) and the finalize sample are dropped, mirroring
/// `tests/cluster.rs`.
fn mechanistic_phases(nodes: u32, seed: u64, reps: u64, fast: bool) -> Result<Vec<f64>, Failure> {
    let mut samples = Vec::new();
    for rep in 0..reps {
        let mut cluster = analytic_cluster(nodes, seed ^ (rep << 24), fast);
        for i in 0..nodes as usize {
            cluster.node_mut(i).run_for(WARMUP);
        }
        let job = analytic_job(nodes);
        let barrier = if nodes == 1 {
            job.barrier_id()
        } else {
            job.local_barrier_id(0)
        };
        let handle = cluster.launch(&job, SchedMode::Hpc, Placement::All);
        let mut rep_samples = Vec::new();
        let mut last_gen = cluster.node(0).sync.barrier_generation(barrier);
        let mut last_t = cluster.node(0).now();
        let mut guard = 0u64;
        while !cluster.job_done(&handle) {
            if !cluster.step_window() || guard > EVENT_BUDGET {
                return Err(Failure {
                    kind: "liveness",
                    detail: format!("analytic probe deadlocked at N={nodes}"),
                });
            }
            guard += 1;
            let gen = cluster.node(0).sync.barrier_generation(barrier);
            if gen > last_gen {
                if last_gen > 0 {
                    rep_samples.push(cluster.node(0).now().since(last_t).as_secs_f64());
                }
                last_gen = gen;
                last_t = cluster.node(0).now();
            }
        }
        rep_samples.truncate(AN_ITERS as usize);
        if !rep_samples.is_empty() {
            rep_samples.remove(0);
        }
        samples.extend(rep_samples);
    }
    Ok(samples)
}

/// Differential oracle 2: the mechanistic co-simulation must land on
/// the analytic resonance model's expected-max prediction within
/// `tol` at small N, where the model's independence assumptions hold
/// (HPL scheduling, tiny flat-fabric messages). Returns the failures
/// found (empty = agreement).
pub fn analytic_differential(seed: u64, tol: f64) -> Vec<Failure> {
    let mut failures = Vec::new();
    let base = match mechanistic_phases(1, seed, 4, false) {
        Ok(b) => b,
        Err(f) => return vec![f],
    };
    let Ok(dist) = EmpiricalDist::try_new(base.clone()) else {
        return vec![Failure {
            kind: "divergence",
            detail: "single-node probe produced no phase samples".into(),
        }];
    };
    let model = ResonanceModel::new(dist, AN_ITERS);
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    for nodes in [2u32, 4] {
        let mech = match mechanistic_phases(nodes, seed, 2, true) {
            Ok(p) if !p.is_empty() => mean(&p),
            Ok(_) => {
                failures.push(Failure {
                    kind: "divergence",
                    detail: format!("no mechanistic phases at N={nodes}"),
                });
                continue;
            }
            Err(f) => {
                failures.push(f);
                continue;
            }
        };
        let analytic = model.expected_time_analytic(nodes) / AN_ITERS as f64;
        let rel = (mech - analytic).abs() / analytic;
        if rel > tol {
            failures.push(Failure {
                kind: "divergence",
                detail: format!(
                    "N={nodes}: mechanistic phase {mech:.6}s vs analytic {analytic:.6}s (rel {rel:.3} > {tol})"
                ),
            });
        }
    }
    failures
}

/// Debug aid: run a single-node scenario with an extra observer
/// attached before the oracle (event-dump sinks, ad-hoc probes).
#[doc(hidden)]
pub fn debug_run_single(sc: &Scenario, fast: bool, extra: Box<dyn hpl_kernel::SchedObserver>) {
    assert_eq!(sc.nodes, 1, "debug_run_single is single-node only");
    let mut node = build_node(sc, 0, fast);
    node.attach_observer(extra);
    let oracle_id = attach_oracle(&mut node, None);
    node.run_for(WARMUP);
    match &sc.workload {
        Workload::Soup(soup) => {
            let driver = node.spawn(soup_driver_spec(soup));
            let _ = node.run_until_exit(driver, EVENT_BUDGET);
        }
        Workload::Mpi(m) => {
            let handle = launch(&mut node, &job_spec(sc), sched_mode(m.mode));
            let _ = handle.try_run_to_completion(&mut node, EVENT_BUDGET);
        }
        Workload::Batch(_) => panic!("debug_run_single cannot run batch workloads"),
    }
    let mut detached = node
        .observer_mut::<InvariantOracle>(oracle_id)
        .map(|o| std::mem::replace(o, InvariantOracle::for_node_empty()));
    if let Some(oracle) = detached.as_mut() {
        oracle.finish(&node);
        for v in oracle.violations() {
            eprintln!("violation: {v}");
        }
    }
}

// Re-exported for tests: confirm the soup builder produces the pids it
// claims (driver + tasks) on a plain node.
#[doc(hidden)]
pub fn __soup_smoke(sc: &Scenario) -> (Pid, TaskState) {
    let Workload::Soup(soup) = &sc.workload else {
        panic!("not a soup scenario")
    };
    let mut node = build_node(sc, 0, false);
    let driver = node.spawn(soup_driver_spec(soup));
    let outcome = node.run_until_exit(driver, EVENT_BUDGET);
    assert!(outcome.is_complete(), "soup smoke did not complete");
    (driver, node.tasks.get(driver).state)
}
