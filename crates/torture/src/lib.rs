//! # hpl-torture — seeded scheduler fuzzing with invariant oracles
//!
//! The torture harness closes the gap between "the curated tests pass"
//! and "the scheduler is correct": it generates random-but-live
//! scenarios ([`Scenario::sample`]) spanning topology shapes, program
//! soups (fork/sleep/barrier/channel ops under mixed CFS/RT/HPC
//! policies), MPI jobs, batch-scheduled multi-job streams (FCFS or
//! EASY through `hpl-batch`, audited for occupancy-limit and
//! reservation breaches), noise intensities and 1–4-node LogGP fabrics,
//! then runs each one with an online [`InvariantOracle`] attached — a
//! [`hpl_kernel::observe::SchedObserver`] sink that replays the
//! kernel's decision stream against the paper's invariants (class
//! shielding, HPC-migrates-only-at-fork, RR rotation fairness,
//! vruntime monotonicity, no lost wakeups, task conservation,
//! virtual-time monotonicity).
//!
//! Two differential oracles back the invariant checks:
//!
//! * every scenario runs on **both** event-loop flavours (reference
//!   and timer-wheel fast path) and the end states must be bit-equal
//!   ([`check_scenario`]);
//! * a canonical bulk-synchronous job on the mechanistic cluster must
//!   agree with the analytic resonance model within tolerance
//!   ([`analytic_differential`]).
//!
//! On failure the harness greedily shrinks the scenario ([`shrink`])
//! and writes a replayable seed artifact plus a Chrome trace
//! ([`artifact::write_failure`]). The `torture` binary drives it all;
//! `torture --smoke` is wired into `scripts/check.sh`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod oracle;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use oracle::{InvariantOracle, Violation};
pub use runner::{analytic_differential, check_scenario, run_scenario, Failure, RunReport};
pub use scenario::{
    BatchPolicyKind, BatchSpec, Fault, ModeKind, MpiSpec, OpKind, PolicyKind, Scenario, SoupSpec,
    SoupStep, SoupTask, TopoKind, Workload,
};
pub use shrink::{shrink, Shrunk};
