//! Random scheduler scenarios and their replayable text form.
//!
//! A [`Scenario`] is an explicit, fully serialisable description of one
//! torture case: machine shape, kernel flavour, noise level, fabric,
//! fault injection, and a workload — an MPI job, a "soup" of
//! interacting tasks (computes, sleeps, channels, barriers, forks,
//! policy changes), or a batch-scheduled multi-job stream.
//! Scenarios are *sampled* from a seed but *stored* as
//! plain data, so the shrinker can mutate them structurally and a
//! failure can be replayed from its artifact file byte-for-byte.
//!
//! Liveness by construction: soup channel waits only reference
//! lower-indexed tasks, every notify precedes every wait in a task's
//! step order, barrier members all pass the same number of rounds
//! between their notifies and their waits, and forking tasks always
//! reap their children. An acyclic wait graph cannot deadlock, so any
//! `Deadlock` outcome a scenario produces is the scheduler's fault, not
//! the generator's.

use hpl_batch::BatchJob;
use hpl_cluster::{DegradeWindow, FaultPlan, LossSpec, NodeEvent, NodeFault};
use hpl_sim::time::{SimDuration, SimTime};
use hpl_sim::Rng;

/// Machine shape of every node in the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// Flat SMP with `n` identical CPUs.
    Smp(u32),
    /// The paper's POWER6 JS22 blade: 2 sockets x 2 cores x SMT2.
    Power6,
}

/// Deliberate scheduler bug to inject (oracle self-test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the scheduler under test is the real one.
    None,
    /// `HplClass` wake placement bounces to the next CPU on every
    /// wakeup, violating "HPC migrates only at fork".
    HpcWakeupMigrate,
}

/// Launch mode of an MPI workload (mirrors [`hpl_mpi::SchedMode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeKind {
    /// Plain CFS.
    Cfs,
    /// CFS at a nice level.
    CfsNice(i8),
    /// `SCHED_RR` at an RT priority.
    Rt(u8),
    /// The paper's `SCHED_HPC` class.
    Hpc,
    /// CFS with ranks pinned round-robin.
    CfsPinned,
}

/// One MPI collective/compute op (mirrors [`hpl_mpi::MpiOp`], with
/// durations in nanoseconds so it serialises as integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Local compute with the given mean (ns).
    Compute(u64),
    /// Global barrier.
    Barrier,
    /// Allreduce of `bytes`.
    Allreduce(u64),
    /// Alltoall of `bytes` per pair.
    Alltoall(u64),
    /// Nearest-neighbour exchange of `bytes`.
    NeighborExchange(u64),
    /// Broadcast of `bytes`.
    Bcast(u64),
    /// Reduce of `bytes`.
    Reduce(u64),
}

/// An MPI-job workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpiSpec {
    /// Ranks per node (`nprocs = ranks_per_node * nodes`).
    pub ranks_per_node: u32,
    /// Launch mode.
    pub mode: ModeKind,
    /// Op sequence each rank executes.
    pub ops: Vec<OpKind>,
}

/// Per-task policy in a soup workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// CFS at a nice level.
    Normal(i8),
    /// `SCHED_BATCH` at a nice level.
    Batch(i8),
    /// `SCHED_FIFO` at an RT priority.
    Fifo(u8),
    /// `SCHED_RR` at an RT priority.
    Rr(u8),
    /// `SCHED_HPC`.
    Hpc,
}

/// One step of a soup task. Durations are nanoseconds; channel
/// references are *task indices* (the builder maps them to channel ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoupStep {
    /// Compute for `ns`.
    Compute(u64),
    /// Sleep for `ns`.
    Sleep(u64),
    /// Deposit a token for task `to` (must be a *higher* index).
    Notify {
        /// Receiving task index.
        to: u32,
    },
    /// Consume one token from task `from` (must be a *lower* index).
    Wait {
        /// Sending task index.
        from: u32,
    },
    /// Like [`SoupStep::Wait`] but busy-waits up to `spin_ns` first.
    SpinWait {
        /// Sending task index.
        from: u32,
        /// Spin budget before blocking (ns).
        spin_ns: u64,
    },
    /// Arrive at the soup-wide barrier (members only).
    Barrier,
    /// Fork a CFS child that computes `ns` and exits.
    ForkChild {
        /// Child compute length (ns).
        ns: u64,
    },
    /// Reap all forked children.
    WaitChildren,
    /// `sched_setscheduler(self, policy)`.
    SetPolicy(PolicyKind),
}

/// One task in a soup workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoupTask {
    /// Policy at birth.
    pub policy: PolicyKind,
    /// Pin to one CPU (index), or run unpinned.
    pub pin: Option<u32>,
    /// Behaviour (executed in order, then exit).
    pub steps: Vec<SoupStep>,
}

/// A single-node soup of interacting tasks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SoupSpec {
    /// The tasks, forked together by a driver that then reaps them.
    pub tasks: Vec<SoupTask>,
}

impl SoupSpec {
    /// Number of tasks whose step list contains a barrier arrival — the
    /// barrier's party count. Recomputed from structure so shrinking a
    /// member out keeps the barrier consistent.
    pub fn barrier_parties(&self) -> u32 {
        self.tasks
            .iter()
            .filter(|t| t.steps.iter().any(|s| matches!(s, SoupStep::Barrier)))
            .count() as u32
    }
}

/// Allocation policy of a batch workload (mirrors the `hpl-batch`
/// policies the torture harness exercises).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicyKind {
    /// Strict first-come-first-served.
    Fcfs,
    /// EASY backfilling with a head-job reservation.
    Easy,
    /// Conservative backfilling: every queued job holds a reservation.
    Conservative,
    /// Priority classes with aging.
    MultiQueue,
    /// Per-user decayed-usage fair share.
    FairShare,
    /// Dynamic fractional resource scheduling: two jobs per node with
    /// audited periodic share reallocation, realised at the OS level by
    /// gang rotation ([`BatchSpec::gang_epoch_us`]).
    Dfrs,
}

/// Coordination runtime interposed on a batch workload (mirrors
/// `hpl_coord::CoordRuntime`'s two backends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordKind {
    /// No coordinator: policy shares stay advisory (`JobShare` events
    /// only), byte-identical to the pre-coordination behaviour.
    Off,
    /// Kernel-weighted backend: shares are realised as weighted gang
    /// slices (`Node::gang_set_share`), so `GangSlice` events flow.
    Kernel,
    /// User-space backend: a per-node arbiter daemon grants CPU leases
    /// to cooperating rank shims, so `Lease` events flow.
    User,
}

/// A two-level batch-scheduling workload: a small job stream pushed
/// through `hpl_batch::BatchRun` on the scenario's cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSpec {
    /// Allocation policy under test.
    pub policy: BatchPolicyKind,
    /// Enforce walltime limits (kill at 1.0 × estimate). Sampled
    /// scenarios with this on may include a deliberately under-
    /// estimated job so the kill path actually fires.
    pub walltime: bool,
    /// Gang-rotation epoch in µs (`KernelConfig::gang_epoch`); 0 = off.
    /// Always set for [`BatchPolicyKind::Dfrs`] scenarios so
    /// co-resident jobs rotate; occasionally set under dedicated
    /// policies, where rotation can never engage and the knob must be
    /// observably inert.
    pub gang_epoch_us: u64,
    /// Coordination runtime interposed on the run ([`CoordKind::Off`]
    /// = shares stay advisory). Only sampled for
    /// [`BatchPolicyKind::Dfrs`] — the one share-managing policy — and
    /// only on churn-free fault plans: a crashed node takes its arbiter
    /// daemon and kernel share table with it, so a coordinated job
    /// would hang on a lease no one can grant, which would read as a
    /// liveness failure the scheduler didn't cause.
    pub coord: CoordKind,
    /// Per-job DFRS weights `(job id, weight)` for uneven fractional
    /// splits; empty = even split (bit-identical to the unweighted
    /// policy). Weights only bite under [`BatchPolicyKind::Dfrs`].
    pub job_weights: Vec<(u32, u32)>,
    /// The job stream (ids are trace-local; widths never exceed the
    /// scenario's node count).
    pub jobs: Vec<BatchJob>,
}

/// The workload a scenario runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// An MPI job through the real launcher stack.
    Mpi(MpiSpec),
    /// A single-node task soup.
    Soup(SoupSpec),
    /// A batch-scheduled multi-job stream on the cluster.
    Batch(BatchSpec),
}

/// One complete torture case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Seed: drives node RNGs and all program-level jitter.
    pub seed: u64,
    /// Cluster size (1 = single node, no interconnect).
    pub nodes: u32,
    /// Per-node machine shape.
    pub topo: TopoKind,
    /// Switched (shared downlink) fabric instead of flat.
    pub switched: bool,
    /// HPL kernel config + `SCHED_HPC` class registered.
    pub hpl: bool,
    /// Tickless lone-HPC-task optimisation on.
    pub tickless: bool,
    /// Noise daemon intensity in percent of the standard profile
    /// (0 = quiet).
    pub noise_pct: u32,
    /// Add a timer-interrupt source.
    pub irq: bool,
    /// Step co-simulation windows on a host thread pool (multi-node
    /// scenarios only; must be invisible in every observable output —
    /// the differential oracle checks exactly that).
    pub parallel: bool,
    /// Injected scheduler bug.
    pub fault: Fault,
    /// Node/link fault schedule — crashes, drains, restarts, message
    /// loss, degrade windows (empty = healthy run).
    pub faults: FaultPlan,
    /// What runs.
    pub workload: Workload,
}

impl Scenario {
    /// CPUs per node.
    pub fn ncpus(&self) -> u32 {
        match self.topo {
            TopoKind::Smp(n) => n,
            TopoKind::Power6 => 8,
        }
    }

    /// Sample scenario `index` of the stream identified by `base_seed`.
    /// Deterministic: the same `(base_seed, index)` always yields the
    /// same scenario.
    pub fn sample(base_seed: u64, index: u64) -> Scenario {
        let mut rng = Rng::for_run(base_seed ^ 0x7047_u64, index);
        let nodes = if rng.chance(0.35) {
            *rng.choose(&[2u32, 3, 4])
        } else {
            1
        };
        let topo = *rng.choose(&[
            TopoKind::Smp(2),
            TopoKind::Smp(4),
            TopoKind::Power6,
            TopoKind::Power6,
        ]);
        let hpl = rng.chance(0.55);
        let workload = if nodes > 1 && rng.chance(0.25) {
            Workload::Batch(Self::sample_batch(&mut rng, nodes, topo))
        } else if nodes > 1 || rng.chance(0.5) {
            Workload::Mpi(Self::sample_mpi(&mut rng, topo, hpl))
        } else {
            Workload::Soup(Self::sample_soup(&mut rng, topo, hpl))
        };
        let mut sc = Scenario {
            seed: rng.next_u64(),
            nodes,
            topo,
            switched: nodes > 1 && rng.chance(0.4),
            hpl,
            tickless: hpl && rng.chance(0.5),
            noise_pct: *rng.choose(&[0u32, 0, 25, 100, 100]),
            irq: rng.chance(0.2),
            parallel: nodes > 1 && rng.chance(0.35),
            fault: Fault::None,
            faults: FaultPlan::none(),
            workload,
        };
        // Fault plans are drawn last, so scenario streams sampled before
        // the fault layer existed keep every other field unchanged.
        // Crash/restart churn rides only on batch workloads — a
        // fixed-width MPI job that loses a node can never complete,
        // which would read as a liveness failure, not a scheduler bug.
        if sc.nodes > 1 && rng.chance(0.3) {
            sc.install_fault_plan(rng.next_u64());
        }
        sc
    }

    /// Install a sampled [`FaultPlan`] appropriate for this scenario's
    /// workload: full churn (crash + restart) for batch workloads,
    /// link-only faults (loss, degrade) for everything else. No-op when
    /// the draw schedules nothing.
    pub fn install_fault_plan(&mut self, seed: u64) {
        let churn = matches!(self.workload, Workload::Batch(_));
        let plan = FaultPlan::sample(seed, if churn { self.nodes as usize } else { 1 });
        if !plan.is_none() {
            self.faults = plan;
            // Node churn and a coordination runtime cannot coexist: a
            // crash or drain takes the node's arbiter daemon (and its
            // kernel share table) with it, and the restarted node comes
            // back uncoordinated. Churny plans run with shares advisory.
            if !self.faults.events.is_empty() {
                if let Workload::Batch(b) = &mut self.workload {
                    b.coord = CoordKind::Off;
                }
            }
        }
    }

    fn sample_mpi(rng: &mut Rng, topo: TopoKind, hpl: bool) -> MpiSpec {
        let ncpus = match topo {
            TopoKind::Smp(n) => n,
            TopoKind::Power6 => 8,
        };
        let ranks_per_node = rng.range_u64(1, ncpus.min(8) as u64) as u32;
        let mode = if hpl && rng.chance(0.5) {
            ModeKind::Hpc
        } else {
            match rng.below(4) {
                0 => ModeKind::Cfs,
                1 => ModeKind::CfsNice(rng.range_u64(0, 10) as i8 - 5),
                2 => ModeKind::Rt(rng.range_u64(40, 60) as u8),
                _ => ModeKind::CfsPinned,
            }
        };
        let iters = rng.range_u64(1, 3);
        let mut inner = Vec::new();
        for _ in 0..rng.range_u64(1, 3) {
            inner.push(match rng.below(7) {
                0 | 1 => OpKind::Compute(rng.range_u64(300_000, 3_000_000)),
                2 => OpKind::Barrier,
                3 => OpKind::Allreduce(rng.range_u64(8, 4096)),
                4 => OpKind::Bcast(rng.range_u64(8, 4096)),
                5 => OpKind::Reduce(rng.range_u64(8, 4096)),
                _ => {
                    if rng.chance(0.5) {
                        OpKind::Alltoall(rng.range_u64(8, 1024))
                    } else {
                        OpKind::NeighborExchange(rng.range_u64(8, 1024))
                    }
                }
            });
        }
        let mut ops = Vec::new();
        for _ in 0..iters {
            ops.extend_from_slice(&inner);
        }
        MpiSpec {
            ranks_per_node,
            mode,
            ops,
        }
    }

    /// 2–4 jobs with staggered arrivals, widths within the cluster and
    /// ranks within the node (CPU oversubscription makes runtimes
    /// unboundable by honest estimates, which would turn EASY's
    /// reservation promise into noise), under FCFS or EASY. Estimates
    /// use the same generous max-of-exponentials bracket as
    /// `hpl_batch::BatchTrace::synthetic`.
    fn sample_batch(rng: &mut Rng, nodes: u32, topo: TopoKind) -> BatchSpec {
        let ncpus = match topo {
            TopoKind::Smp(n) => n,
            TopoKind::Power6 => 8,
        };
        let policy = *rng.choose(&[
            BatchPolicyKind::Fcfs,
            BatchPolicyKind::Easy,
            BatchPolicyKind::Conservative,
            BatchPolicyKind::MultiQueue,
            BatchPolicyKind::FairShare,
        ]);
        let walltime = rng.chance(0.3);
        let njobs = rng.range_u64(2, 4) as u32;
        let mut submit_ns = 0u64;
        let jobs: Vec<BatchJob> = (0..njobs)
            .map(|id| {
                submit_ns += (rng.exp(3.0e6) as u64).min(20_000_000);
                let width = rng.range_u64(1, nodes as u64) as u32;
                let ranks_per_node = rng.range_u64(1, ncpus.min(2) as u64) as u32;
                let iters = rng.range_u64(1, 3) as u32;
                let compute_ns = rng.range_u64(500_000, 2_000_000);
                let nominal = iters as u64 * compute_ns;
                let nprocs = (width * ranks_per_node) as u64;
                let est_factor = 2 + (u64::BITS - nprocs.leading_zeros()) as u64;
                // Under walltime enforcement, some jobs under-estimate
                // (half their nominal compute) so the kill path fires;
                // the occupancy-leak oracle then has something to bite.
                let doomed = walltime && rng.chance(0.4);
                BatchJob {
                    id,
                    submit_ns,
                    nodes: width,
                    ranks_per_node,
                    iters,
                    compute_ns,
                    bytes: if rng.chance(0.5) { 64 } else { 1024 },
                    est_runtime_ns: if doomed {
                        (nominal / 2).max(1_000_000)
                    } else {
                        est_factor * nominal + 50_000_000
                    },
                    user: rng.below(3) as u32,
                    class: rng.below(2) as u32,
                }
            })
            .collect();
        // Drawn after every pre-existing field (the fault-plan
        // discipline): scenario streams sampled before DFRS existed
        // keep all earlier draws unchanged.
        let (policy, gang_epoch_us) = if rng.chance(0.25) {
            (BatchPolicyKind::Dfrs, *rng.choose(&[200u64, 500, 1000]))
        } else if rng.chance(0.15) {
            // Gang epoch armed under a dedicated policy: rotation can
            // never engage (occupancy 1), so the knob must be inert.
            (policy, 500)
        } else {
            (policy, 0)
        };
        // Coordination draws come last (the fault-plan discipline
        // again): scenario streams sampled before the coord layer
        // existed keep every earlier draw unchanged. Only DFRS manages
        // shares, so only DFRS scenarios ever interpose a coordinator
        // or skew the split.
        let mut coord = CoordKind::Off;
        let mut job_weights = Vec::new();
        if matches!(policy, BatchPolicyKind::Dfrs) {
            coord = *rng.choose(&[
                CoordKind::Off,
                CoordKind::Kernel,
                CoordKind::Kernel,
                CoordKind::User,
            ]);
            if rng.chance(0.5) {
                for j in &jobs {
                    if rng.chance(0.7) {
                        job_weights.push((j.id, rng.range_u64(1, 4) as u32));
                    }
                }
            }
        }
        BatchSpec {
            policy,
            walltime,
            gang_epoch_us,
            coord,
            job_weights,
            jobs,
        }
    }

    fn sample_soup(rng: &mut Rng, topo: TopoKind, hpl: bool) -> SoupSpec {
        let ncpus = match topo {
            TopoKind::Smp(n) => n,
            TopoKind::Power6 => 8,
        };
        let ntasks = rng.range_u64(2, 8) as usize;
        let barrier_members: Vec<bool> = if ntasks >= 2 && rng.chance(0.5) {
            let mut m: Vec<bool> = (0..ntasks).map(|_| rng.chance(0.6)).collect();
            // A one-party barrier is legal but inert; force >= 2.
            while m.iter().filter(|&&b| b).count() < 2 {
                let i = rng.below(ntasks as u64) as usize;
                m[i] = true;
            }
            m
        } else {
            vec![false; ntasks]
        };
        let rounds = rng.range_u64(1, 3) as usize;
        let mut tasks = Vec::with_capacity(ntasks);
        for (i, &in_barrier) in barrier_members.iter().enumerate() {
            let policy = Self::sample_policy(rng, hpl);
            let pin = rng.chance(0.4).then(|| rng.below(ncpus as u64) as u32);
            // Phase 1: computes/sleeps/notifies (to higher indices).
            let mut steps = Vec::new();
            for _ in 0..rng.range_u64(0, 2) {
                steps.push(Self::sample_busy(rng));
            }
            for to in (i + 1)..ntasks {
                if rng.chance(0.4) {
                    steps.push(SoupStep::Notify { to: to as u32 });
                }
            }
            // Phase 2: barrier rounds (members only).
            if in_barrier {
                for _ in 0..rounds {
                    steps.push(SoupStep::Barrier);
                }
            }
            // Phase 3: waits (on lower indices) and more busy work.
            for _ in 0..rng.range_u64(0, 2) {
                steps.push(Self::sample_busy(rng));
            }
            if rng.chance(0.3) {
                steps.push(SoupStep::SetPolicy(Self::sample_policy(rng, hpl)));
            }
            if rng.chance(0.3) {
                steps.push(SoupStep::ForkChild {
                    ns: rng.range_u64(100_000, 1_000_000),
                });
                steps.push(SoupStep::WaitChildren);
            }
            tasks.push(SoupTask { policy, pin, steps });
        }
        // Wire the waits to match phase-1 notifies exactly: the notify
        // side was already generated, so walk it and append one wait per
        // token on the receiving side.
        let notifies: Vec<(usize, usize)> = tasks
            .iter()
            .enumerate()
            .flat_map(|(i, t)| {
                t.steps
                    .iter()
                    .filter_map(move |s| match s {
                        SoupStep::Notify { to } => Some((i, *to as usize)),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        for (from, to) in notifies {
            let spin = rng.chance(0.5);
            let step = if spin {
                SoupStep::SpinWait {
                    from: from as u32,
                    spin_ns: rng.range_u64(50_000, 1_000_000),
                }
            } else {
                SoupStep::Wait { from: from as u32 }
            };
            // Waits go after any barrier and existing waits; inserting
            // before a trailing fork/reap pair keeps children last.
            let t = &mut tasks[to];
            let at = t
                .steps
                .iter()
                .position(|s| matches!(s, SoupStep::ForkChild { .. }))
                .unwrap_or(t.steps.len());
            t.steps.insert(at, step);
        }
        // Sometimes add a same-priority RR pair pinned to CPU 0 with
        // computes long enough to expire slices — exercises the
        // round-robin rotation invariant.
        if rng.chance(0.35) {
            let prio = rng.range_u64(30, 70) as u8;
            for _ in 0..2 {
                tasks.push(SoupTask {
                    policy: PolicyKind::Rr(prio),
                    pin: Some(0),
                    steps: vec![
                        SoupStep::Compute(rng.range_u64(150_000_000, 300_000_000)),
                        SoupStep::Compute(rng.range_u64(150_000_000, 300_000_000)),
                    ],
                });
            }
        }
        SoupSpec { tasks }
    }

    fn sample_busy(rng: &mut Rng) -> SoupStep {
        if rng.chance(0.7) {
            SoupStep::Compute(rng.range_u64(50_000, 3_000_000))
        } else {
            SoupStep::Sleep(rng.range_u64(10_000, 2_000_000))
        }
    }

    fn sample_policy(rng: &mut Rng, hpl: bool) -> PolicyKind {
        if hpl && rng.chance(0.3) {
            return PolicyKind::Hpc;
        }
        match rng.below(4) {
            0 => PolicyKind::Normal(rng.range_u64(0, 10) as i8 - 5),
            1 => PolicyKind::Batch(rng.range_u64(0, 6) as i8),
            2 => PolicyKind::Fifo(rng.range_u64(10, 90) as u8),
            _ => PolicyKind::Rr(rng.range_u64(10, 90) as u8),
        }
    }

    // -----------------------------------------------------------------
    // Replayable text form
    // -----------------------------------------------------------------

    /// Serialise to the replay artifact format: a line-based
    /// `key value` text document (`torture-scenario v1` header).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("torture-scenario v1\n");
        let _ = writeln!(s, "seed {}", self.seed);
        let _ = writeln!(s, "nodes {}", self.nodes);
        let topo = match self.topo {
            TopoKind::Smp(n) => format!("smp{n}"),
            TopoKind::Power6 => "power6".into(),
        };
        let _ = writeln!(s, "topo {topo}");
        let _ = writeln!(s, "switched {}", self.switched);
        let _ = writeln!(s, "hpl {}", self.hpl);
        let _ = writeln!(s, "tickless {}", self.tickless);
        let _ = writeln!(s, "noise_pct {}", self.noise_pct);
        let _ = writeln!(s, "irq {}", self.irq);
        let _ = writeln!(s, "parallel {}", self.parallel);
        let fault = match self.fault {
            Fault::None => "none",
            Fault::HpcWakeupMigrate => "hpc-wakeup-migrate",
        };
        let _ = writeln!(s, "fault {fault}");
        if !self.faults.is_none() {
            let _ = writeln!(s, "fault_seed {}", self.faults.seed);
            if let Some(l) = &self.faults.loss {
                let _ = writeln!(
                    s,
                    "fault_loss {} {} {}",
                    l.ppm,
                    l.rto.as_nanos(),
                    l.max_retries
                );
            }
            for w in &self.faults.degrade {
                let _ = writeln!(
                    s,
                    "fault_degrade {} {} {}",
                    w.from.as_nanos(),
                    w.to.as_nanos(),
                    w.factor
                );
            }
            for e in &self.faults.events {
                let kind = match e.kind {
                    NodeFault::Crash => "crash",
                    NodeFault::Drain => "drain",
                    NodeFault::Restart => "restart",
                };
                let _ = writeln!(s, "fault_node {kind} {} {}", e.node, e.at.as_nanos());
            }
        }
        match &self.workload {
            Workload::Mpi(m) => {
                let _ = writeln!(s, "workload mpi");
                let _ = writeln!(s, "ranks_per_node {}", m.ranks_per_node);
                let mode = match m.mode {
                    ModeKind::Cfs => "cfs".into(),
                    ModeKind::CfsNice(n) => format!("cfs-nice:{n}"),
                    ModeKind::Rt(p) => format!("rt:{p}"),
                    ModeKind::Hpc => "hpc".into(),
                    ModeKind::CfsPinned => "cfs-pinned".into(),
                };
                let _ = writeln!(s, "mode {mode}");
                for op in &m.ops {
                    let _ = writeln!(s, "op {}", op_to_text(op));
                }
            }
            Workload::Soup(soup) => {
                let _ = writeln!(s, "workload soup");
                for t in &soup.tasks {
                    let pol = policy_to_text(t.policy);
                    let pin = t.pin.map_or("-".into(), |c| c.to_string());
                    let steps: Vec<String> = t.steps.iter().map(step_to_text).collect();
                    let _ = writeln!(s, "task {pol} {pin} {}", steps.join(" "));
                }
            }
            Workload::Batch(b) => {
                let _ = writeln!(s, "workload batch");
                let policy = match b.policy {
                    BatchPolicyKind::Fcfs => "fcfs",
                    BatchPolicyKind::Easy => "easy",
                    BatchPolicyKind::Conservative => "conservative",
                    BatchPolicyKind::MultiQueue => "multiq",
                    BatchPolicyKind::FairShare => "fairshare",
                    BatchPolicyKind::Dfrs => "dfrs",
                };
                let _ = writeln!(s, "policy {policy}");
                if b.walltime {
                    let _ = writeln!(s, "walltime true");
                }
                if b.gang_epoch_us > 0 {
                    let _ = writeln!(s, "gang_epoch_us {}", b.gang_epoch_us);
                }
                match b.coord {
                    CoordKind::Off => {}
                    CoordKind::Kernel => {
                        let _ = writeln!(s, "coord kernel");
                    }
                    CoordKind::User => {
                        let _ = writeln!(s, "coord user");
                    }
                }
                for (j, w) in &b.job_weights {
                    let _ = writeln!(s, "jweight {j} {w}");
                }
                for j in &b.jobs {
                    let _ = writeln!(
                        s,
                        "bjob {} {} {} {} {} {} {} {} {} {}",
                        j.id,
                        j.submit_ns,
                        j.nodes,
                        j.ranks_per_node,
                        j.iters,
                        j.compute_ns,
                        j.bytes,
                        j.est_runtime_ns,
                        j.user,
                        j.class
                    );
                }
            }
        }
        s
    }

    /// Parse the replay artifact format. Returns a description of the
    /// first malformed line on error.
    pub fn from_text(text: &str) -> Result<Scenario, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some("torture-scenario v1") => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let mut sc = Scenario {
            seed: 0,
            nodes: 1,
            topo: TopoKind::Power6,
            switched: false,
            hpl: false,
            tickless: false,
            noise_pct: 0,
            irq: false,
            // Absent in pre-parallel artifacts; defaults to the
            // behaviour those artifacts were recorded under.
            parallel: false,
            fault: Fault::None,
            // Absent in pre-fault-layer artifacts; a healthy cluster.
            faults: FaultPlan::none(),
            workload: Workload::Soup(SoupSpec::default()),
        };
        let mut mpi: Option<MpiSpec> = None;
        let mut soup: Option<SoupSpec> = None;
        let mut batch: Option<BatchSpec> = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "seed" => sc.seed = parse_num(rest)?,
                "nodes" => sc.nodes = parse_num(rest)? as u32,
                "topo" => {
                    sc.topo = match rest {
                        "power6" => TopoKind::Power6,
                        s if s.starts_with("smp") => TopoKind::Smp(parse_num(&s[3..])? as u32),
                        s => return Err(format!("bad topo {s:?}")),
                    }
                }
                "switched" => sc.switched = parse_bool(rest)?,
                "hpl" => sc.hpl = parse_bool(rest)?,
                "tickless" => sc.tickless = parse_bool(rest)?,
                "noise_pct" => sc.noise_pct = parse_num(rest)? as u32,
                "irq" => sc.irq = parse_bool(rest)?,
                "parallel" => sc.parallel = parse_bool(rest)?,
                "fault" => {
                    sc.fault = match rest {
                        "none" => Fault::None,
                        "hpc-wakeup-migrate" => Fault::HpcWakeupMigrate,
                        s => return Err(format!("bad fault {s:?}")),
                    }
                }
                "fault_seed" => sc.faults.seed = parse_num(rest)?,
                "fault_loss" => {
                    let nums = rest
                        .split_whitespace()
                        .map(parse_num)
                        .collect::<Result<Vec<_>, _>>()?;
                    let [ppm, rto_ns, max_retries]: [u64; 3] = nums
                        .try_into()
                        .map_err(|_| format!("fault_loss needs 3 fields: {rest:?}"))?;
                    if ppm > 1_000_000 {
                        return Err(format!("fault_loss ppm {ppm} > 1000000"));
                    }
                    sc.faults.loss = Some(LossSpec {
                        ppm: ppm as u32,
                        rto: SimDuration::from_nanos(rto_ns),
                        max_retries: max_retries as u32,
                    });
                }
                "fault_degrade" => {
                    let nums = rest
                        .split_whitespace()
                        .map(parse_num)
                        .collect::<Result<Vec<_>, _>>()?;
                    let [from, to, factor]: [u64; 3] = nums
                        .try_into()
                        .map_err(|_| format!("fault_degrade needs 3 fields: {rest:?}"))?;
                    if from >= to || factor < 1 {
                        return Err(format!("fault_degrade: bad window {rest:?}"));
                    }
                    sc.faults.degrade.push(DegradeWindow {
                        from: SimTime::from_nanos(from),
                        to: SimTime::from_nanos(to),
                        factor: factor as u32,
                    });
                }
                "fault_node" => {
                    let mut parts = rest.split_whitespace();
                    let kind = match parts.next().ok_or("fault_node missing kind")? {
                        "crash" => NodeFault::Crash,
                        "drain" => NodeFault::Drain,
                        "restart" => NodeFault::Restart,
                        s => return Err(format!("bad fault_node kind {s:?}")),
                    };
                    let node = parse_num(parts.next().ok_or("fault_node missing node")?)? as usize;
                    let at = SimTime::from_nanos(parse_num(
                        parts.next().ok_or("fault_node missing time")?,
                    )?);
                    if parts.next().is_some() {
                        return Err(format!("fault_node: trailing tokens in {rest:?}"));
                    }
                    sc.faults.events.push(NodeEvent { at, node, kind });
                }
                "workload" => match rest {
                    "mpi" => {
                        mpi = Some(MpiSpec {
                            ranks_per_node: 1,
                            mode: ModeKind::Cfs,
                            ops: Vec::new(),
                        })
                    }
                    "soup" => soup = Some(SoupSpec::default()),
                    "batch" => {
                        batch = Some(BatchSpec {
                            policy: BatchPolicyKind::Fcfs,
                            walltime: false,
                            // Absent in pre-DFRS artifacts; gang off.
                            gang_epoch_us: 0,
                            // Absent in pre-coord artifacts; shares
                            // stay advisory and splits stay even.
                            coord: CoordKind::Off,
                            job_weights: Vec::new(),
                            jobs: Vec::new(),
                        })
                    }
                    s => return Err(format!("bad workload {s:?}")),
                },
                "policy" => {
                    batch
                        .as_mut()
                        .ok_or("policy outside batch workload")?
                        .policy = match rest {
                        "fcfs" => BatchPolicyKind::Fcfs,
                        "easy" => BatchPolicyKind::Easy,
                        "conservative" => BatchPolicyKind::Conservative,
                        "multiq" => BatchPolicyKind::MultiQueue,
                        "fairshare" => BatchPolicyKind::FairShare,
                        "dfrs" => BatchPolicyKind::Dfrs,
                        s => return Err(format!("bad batch policy {s:?}")),
                    };
                }
                "gang_epoch_us" => {
                    batch
                        .as_mut()
                        .ok_or("gang_epoch_us outside batch workload")?
                        .gang_epoch_us = parse_num(rest)?;
                }
                "coord" => {
                    batch.as_mut().ok_or("coord outside batch workload")?.coord = match rest {
                        "off" => CoordKind::Off,
                        "kernel" => CoordKind::Kernel,
                        "user" => CoordKind::User,
                        s => return Err(format!("bad coord {s:?}")),
                    };
                }
                "jweight" => {
                    let batch = batch.as_mut().ok_or("jweight outside batch workload")?;
                    let nums = rest
                        .split_whitespace()
                        .map(parse_num)
                        .collect::<Result<Vec<_>, _>>()?;
                    let [job, weight]: [u64; 2] = nums
                        .try_into()
                        .map_err(|_| format!("jweight needs 2 fields: {rest:?}"))?;
                    if weight == 0 {
                        return Err(format!("jweight for job {job} is zero"));
                    }
                    batch.job_weights.push((job as u32, weight as u32));
                }
                "walltime" => {
                    batch
                        .as_mut()
                        .ok_or("walltime outside batch workload")?
                        .walltime = match rest {
                        "true" => true,
                        "false" => false,
                        s => return Err(format!("bad walltime {s:?}")),
                    };
                }
                "bjob" => {
                    let batch = batch.as_mut().ok_or("bjob outside batch workload")?;
                    let mut nums = rest
                        .split_whitespace()
                        .map(parse_num)
                        .collect::<Result<Vec<_>, _>>()?;
                    // Pre-policy-zoo scenarios lack the trailing
                    // user/class pair; both default to 0.
                    if nums.len() == 8 {
                        nums.extend([0, 0]);
                    }
                    let [id, submit_ns, nodes, rpn, iters, compute_ns, bytes, est, user, class]:
                        [u64; 10] = nums
                        .try_into()
                        .map_err(|_| format!("bjob needs 8 or 10 fields: {rest:?}"))?;
                    if nodes == 0 || rpn == 0 || iters == 0 {
                        return Err(format!("bjob {id} has a zero dimension"));
                    }
                    batch.jobs.push(BatchJob {
                        id: id as u32,
                        submit_ns,
                        nodes: nodes as u32,
                        ranks_per_node: rpn as u32,
                        iters: iters as u32,
                        compute_ns,
                        bytes,
                        est_runtime_ns: est,
                        user: user as u32,
                        class: class as u32,
                    });
                }
                "ranks_per_node" => {
                    mpi.as_mut()
                        .ok_or("ranks_per_node outside mpi workload")?
                        .ranks_per_node = parse_num(rest)? as u32;
                }
                "mode" => {
                    mpi.as_mut().ok_or("mode outside mpi workload")?.mode = match rest {
                        "cfs" => ModeKind::Cfs,
                        "hpc" => ModeKind::Hpc,
                        "cfs-pinned" => ModeKind::CfsPinned,
                        s if s.starts_with("cfs-nice:") => ModeKind::CfsNice(parse_i8(&s[9..])?),
                        s if s.starts_with("rt:") => ModeKind::Rt(parse_num(&s[3..])? as u8),
                        s => return Err(format!("bad mode {s:?}")),
                    };
                }
                "op" => mpi
                    .as_mut()
                    .ok_or("op outside mpi workload")?
                    .ops
                    .push(op_from_text(rest)?),
                "task" => {
                    let soup = soup.as_mut().ok_or("task outside soup workload")?;
                    let mut parts = rest.split_whitespace();
                    let pol = policy_from_text(parts.next().ok_or("task missing policy")?)?;
                    let pin = match parts.next().ok_or("task missing pin")? {
                        "-" => None,
                        s => Some(parse_num(s)? as u32),
                    };
                    let steps = parts.map(step_from_text).collect::<Result<Vec<_>, _>>()?;
                    soup.tasks.push(SoupTask {
                        policy: pol,
                        pin,
                        steps,
                    });
                }
                k => return Err(format!("unknown key {k:?}")),
            }
        }
        sc.workload = match (mpi, soup, batch) {
            (Some(m), None, None) => Workload::Mpi(m),
            (None, Some(s), None) => Workload::Soup(s),
            (None, None, Some(b)) => Workload::Batch(b),
            _ => return Err("exactly one workload section required".into()),
        };
        Ok(sc)
    }
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad number {s:?}"))
}

fn parse_i8(s: &str) -> Result<i8, String> {
    s.parse().map_err(|_| format!("bad i8 {s:?}"))
}

fn parse_bool(s: &str) -> Result<bool, String> {
    match s {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(format!("bad bool {s:?}")),
    }
}

fn op_to_text(op: &OpKind) -> String {
    match op {
        OpKind::Compute(ns) => format!("compute:{ns}"),
        OpKind::Barrier => "barrier".into(),
        OpKind::Allreduce(b) => format!("allreduce:{b}"),
        OpKind::Alltoall(b) => format!("alltoall:{b}"),
        OpKind::NeighborExchange(b) => format!("neighbor:{b}"),
        OpKind::Bcast(b) => format!("bcast:{b}"),
        OpKind::Reduce(b) => format!("reduce:{b}"),
    }
}

fn op_from_text(s: &str) -> Result<OpKind, String> {
    if s == "barrier" {
        return Ok(OpKind::Barrier);
    }
    let (kind, arg) = s.split_once(':').ok_or(format!("bad op {s:?}"))?;
    let n = parse_num(arg)?;
    Ok(match kind {
        "compute" => OpKind::Compute(n),
        "allreduce" => OpKind::Allreduce(n),
        "alltoall" => OpKind::Alltoall(n),
        "neighbor" => OpKind::NeighborExchange(n),
        "bcast" => OpKind::Bcast(n),
        "reduce" => OpKind::Reduce(n),
        k => return Err(format!("bad op kind {k:?}")),
    })
}

fn policy_to_text(p: PolicyKind) -> String {
    match p {
        PolicyKind::Normal(n) => format!("normal:{n}"),
        PolicyKind::Batch(n) => format!("batch:{n}"),
        PolicyKind::Fifo(p) => format!("fifo:{p}"),
        PolicyKind::Rr(p) => format!("rr:{p}"),
        PolicyKind::Hpc => "hpc".into(),
    }
}

fn policy_from_text(s: &str) -> Result<PolicyKind, String> {
    if s == "hpc" {
        return Ok(PolicyKind::Hpc);
    }
    let (kind, arg) = s.split_once(':').ok_or(format!("bad policy {s:?}"))?;
    Ok(match kind {
        "normal" => PolicyKind::Normal(parse_i8(arg)?),
        "batch" => PolicyKind::Batch(parse_i8(arg)?),
        "fifo" => PolicyKind::Fifo(parse_num(arg)? as u8),
        "rr" => PolicyKind::Rr(parse_num(arg)? as u8),
        k => return Err(format!("bad policy kind {k:?}")),
    })
}

fn step_to_text(s: &SoupStep) -> String {
    match s {
        SoupStep::Compute(ns) => format!("c:{ns}"),
        SoupStep::Sleep(ns) => format!("s:{ns}"),
        SoupStep::Notify { to } => format!("n:{to}"),
        SoupStep::Wait { from } => format!("w:{from}"),
        SoupStep::SpinWait { from, spin_ns } => format!("sw:{from}:{spin_ns}"),
        SoupStep::Barrier => "b".into(),
        SoupStep::ForkChild { ns } => format!("f:{ns}"),
        SoupStep::WaitChildren => "wc".into(),
        SoupStep::SetPolicy(p) => format!("sp:{}", policy_to_text(*p)),
    }
}

fn step_from_text(s: &str) -> Result<SoupStep, String> {
    match s {
        "b" => return Ok(SoupStep::Barrier),
        "wc" => return Ok(SoupStep::WaitChildren),
        _ => {}
    }
    let (kind, arg) = s.split_once(':').ok_or(format!("bad step {s:?}"))?;
    Ok(match kind {
        "c" => SoupStep::Compute(parse_num(arg)?),
        "s" => SoupStep::Sleep(parse_num(arg)?),
        "n" => SoupStep::Notify {
            to: parse_num(arg)? as u32,
        },
        "w" => SoupStep::Wait {
            from: parse_num(arg)? as u32,
        },
        "sw" => {
            let (from, spin) = arg.split_once(':').ok_or(format!("bad step {s:?}"))?;
            SoupStep::SpinWait {
                from: parse_num(from)? as u32,
                spin_ns: parse_num(spin)?,
            }
        }
        "f" => SoupStep::ForkChild {
            ns: parse_num(arg)?,
        },
        "sp" => SoupStep::SetPolicy(policy_from_text(arg)?),
        k => return Err(format!("bad step kind {k:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        for i in 0..20 {
            assert_eq!(Scenario::sample(0xABCD, i), Scenario::sample(0xABCD, i));
        }
    }

    #[test]
    fn text_round_trips() {
        for i in 0..50 {
            let sc = Scenario::sample(0x5EED, i);
            let text = sc.to_text();
            let back = Scenario::from_text(&text)
                .unwrap_or_else(|e| panic!("scenario {i} failed to parse: {e}\n{text}"));
            assert_eq!(sc, back, "round-trip mismatch for scenario {i}");
        }
    }

    #[test]
    fn pre_parallel_artifacts_parse_with_parallel_off() {
        // Artifacts written before the `parallel` key existed must keep
        // replaying under the serial driver they were recorded with.
        let sc = Scenario::from_text("torture-scenario v1\nseed 3\nnodes 2\nworkload soup\n")
            .expect("legacy artifact parses");
        assert!(!sc.parallel);
    }

    #[test]
    fn parallel_is_sampled_only_on_multi_node_scenarios() {
        let mut seen_parallel = false;
        for i in 0..300 {
            let sc = Scenario::sample(0xBEEF, i);
            if sc.parallel {
                assert!(sc.nodes > 1, "parallel stepping needs a cluster");
                seen_parallel = true;
            }
        }
        assert!(seen_parallel, "sampler never exercises the parallel driver");
    }

    #[test]
    fn fault_plans_sample_only_where_they_are_survivable() {
        let mut seen_plan = false;
        let mut seen_crash = false;
        for i in 0..600 {
            let sc = Scenario::sample(0xFA17, i);
            if sc.faults.is_none() {
                continue;
            }
            seen_plan = true;
            assert!(sc.nodes > 1, "fault plans need a cluster");
            let crashes = sc
                .faults
                .events
                .iter()
                .any(|e| matches!(e.kind, NodeFault::Crash));
            if crashes {
                seen_crash = true;
                assert!(
                    matches!(sc.workload, Workload::Batch(_)),
                    "crash churn must ride on a batch workload"
                );
                assert!(sc.faults.has_restarts(), "every sampled crash is paired");
            }
        }
        assert!(seen_plan, "sampler never draws a fault plan");
        assert!(seen_crash, "sampler never draws crash churn");
    }

    #[test]
    fn fault_plan_keys_round_trip() {
        let mut sc = Scenario::sample(0x5EED, 0);
        sc.nodes = 3;
        sc.faults = FaultPlan::none()
            .with_seed(77)
            .with_loss(5_000, SimDuration::from_micros(40), 3)
            .degrade(SimTime::from_nanos(1_000), SimTime::from_nanos(9_000), 4)
            .crash(2, SimTime::from_nanos(5_000))
            .drain(1, SimTime::from_nanos(6_000))
            .restart(2, SimTime::from_nanos(7_000));
        let text = sc.to_text();
        let back = Scenario::from_text(&text).expect("faulted scenario parses");
        assert_eq!(back, sc);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn legacy_artifacts_default_to_a_healthy_cluster() {
        let sc = Scenario::from_text("torture-scenario v1\nseed 3\nnodes 2\nworkload soup\n")
            .expect("legacy artifact parses");
        assert!(sc.faults.is_none());
    }

    #[test]
    fn pre_coord_artifacts_default_to_advisory_shares() {
        // Artifacts written before the coordination keys existed must
        // replay with the advisory-share behaviour they were recorded
        // under: no coordinator, even splits.
        let sc = Scenario::from_text(
            "torture-scenario v1\nseed 3\nnodes 2\nworkload batch\n\
             policy dfrs\ngang_epoch_us 500\nbjob 0 0 1 1 1 500000 64 50000000 0 0\n",
        )
        .expect("legacy batch artifact parses");
        let Workload::Batch(b) = &sc.workload else {
            panic!("batch workload expected");
        };
        assert_eq!(b.coord, CoordKind::Off);
        assert!(b.job_weights.is_empty());
    }

    #[test]
    fn coord_keys_round_trip() {
        let mut sc = Scenario::sample(0x5EED, 0);
        sc.nodes = 2;
        sc.workload = Workload::Batch(BatchSpec {
            policy: BatchPolicyKind::Dfrs,
            walltime: false,
            gang_epoch_us: 500,
            coord: CoordKind::User,
            job_weights: vec![(0, 3), (1, 1)],
            jobs: vec![BatchJob {
                id: 0,
                submit_ns: 0,
                nodes: 1,
                ranks_per_node: 1,
                iters: 1,
                compute_ns: 500_000,
                bytes: 64,
                est_runtime_ns: 50_000_000,
                user: 0,
                class: 0,
            }],
        });
        let text = sc.to_text();
        let back = Scenario::from_text(&text).expect("coordinated scenario parses");
        assert_eq!(back, sc);
        assert_eq!(back.to_text(), text);
        assert!(Scenario::from_text(&text.replace("coord user", "coord bogus")).is_err());
        assert!(Scenario::from_text(&text.replace("jweight 0 3", "jweight 0 0")).is_err());
    }

    #[test]
    fn coordinators_ride_only_on_churn_free_dfrs_scenarios() {
        let (mut seen_kernel, mut seen_user, mut seen_weights) = (false, false, false);
        for i in 0..600 {
            let sc = Scenario::sample(0xC00D, i);
            let Workload::Batch(b) = &sc.workload else {
                continue;
            };
            if b.coord != CoordKind::Off || !b.job_weights.is_empty() {
                assert_eq!(
                    b.policy,
                    BatchPolicyKind::Dfrs,
                    "coordination rides only on the share-managing policy"
                );
            }
            if b.coord != CoordKind::Off {
                assert!(
                    sc.faults.events.is_empty(),
                    "node churn would orphan the coordinator"
                );
            }
            seen_kernel |= b.coord == CoordKind::Kernel;
            seen_user |= b.coord == CoordKind::User;
            seen_weights |= !b.job_weights.is_empty();
        }
        assert!(seen_kernel, "sampler never draws the kernel backend");
        assert!(seen_user, "sampler never draws the user-space backend");
        assert!(seen_weights, "sampler never skews the split");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Scenario::from_text("not a scenario").is_err());
        assert!(Scenario::from_text("torture-scenario v1\nbogus 1").is_err());
        assert!(Scenario::from_text("torture-scenario v1\nseed 1").is_err());
    }

    #[test]
    fn soup_waits_reference_lower_indices() {
        for i in 0..200 {
            let sc = Scenario::sample(0xF00D, i);
            if let Workload::Soup(soup) = &sc.workload {
                for (ti, t) in soup.tasks.iter().enumerate() {
                    for s in &t.steps {
                        match s {
                            SoupStep::Wait { from } | SoupStep::SpinWait { from, .. } => {
                                assert!((*from as usize) < ti, "wait on higher index")
                            }
                            SoupStep::Notify { to } => {
                                assert!((*to as usize) > ti, "notify to lower index")
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }
}
