//! Greedy failure shrinking.
//!
//! Given a scenario that fails [`check_scenario`], repeatedly try
//! simplifying transformations (fewer nodes, fewer/shorter tasks and
//! ops, less noise, smaller topology, fewer kernel features) and adopt
//! the first candidate that *still fails*, restarting the candidate
//! list from the simplified scenario. The result is a locally-minimal
//! reproducer: no single shrinking step keeps it failing.

use crate::runner::check_scenario;
use crate::scenario::{Fault, Scenario, SoupStep, TopoKind, Workload};

/// Upper bound on scenario re-runs during a shrink (each candidate
/// costs two full simulations).
const MAX_RUNS: u32 = 200;

/// Result of a shrink.
#[derive(Debug)]
pub struct Shrunk {
    /// The minimised still-failing scenario.
    pub scenario: Scenario,
    /// Failure messages of the minimised scenario.
    pub failures: Vec<String>,
    /// Shrinking steps adopted (human-readable).
    pub steps: Vec<&'static str>,
    /// Scenario runs spent.
    pub runs: u32,
}

/// Does the scenario schedule anything under `Policy::Hpc`?
fn uses_hpc(sc: &Scenario) -> bool {
    match &sc.workload {
        Workload::Mpi(m) => matches!(m.mode, crate::scenario::ModeKind::Hpc),
        Workload::Soup(s) => s.tasks.iter().any(|t| {
            matches!(t.policy, crate::scenario::PolicyKind::Hpc)
                || t.steps
                    .iter()
                    .any(|s| matches!(s, SoupStep::SetPolicy(crate::scenario::PolicyKind::Hpc)))
        }),
        // Batch jobs launch under Hpc exactly when the HPL class is on,
        // so dropping the class changes the workload's scheduling class
        // — never a vacuous simplification.
        Workload::Batch(_) => sc.hpl,
    }
}

/// All single-step simplifications of `sc`, most aggressive first.
/// Every candidate is strictly "smaller" by some measure, so shrinking
/// terminates. The HPL class stays on when the fault injector or an
/// HPC workload needs it (dropping it would vacuously "fix" the bug).
fn candidates(sc: &Scenario) -> Vec<(&'static str, Scenario)> {
    let mut out: Vec<(&'static str, Scenario)> = Vec::new();
    let mut push = |label: &'static str, c: Scenario| out.push((label, c));

    if sc.nodes > 1 {
        let mut c = sc.clone();
        c.nodes = if sc.nodes > 2 { 2 } else { 1 };
        push("reduce nodes", c);
    }
    match &sc.workload {
        Workload::Mpi(m) => {
            if m.ranks_per_node > 1 {
                let mut c = sc.clone();
                if let Workload::Mpi(m) = &mut c.workload {
                    m.ranks_per_node = (m.ranks_per_node / 2).max(1);
                }
                push("halve ranks per node", c);
            }
            if m.ops.len() > 1 {
                let mut c = sc.clone();
                if let Workload::Mpi(m) = &mut c.workload {
                    m.ops.truncate(m.ops.len() / 2);
                }
                push("truncate op list", c);
                let mut c = sc.clone();
                if let Workload::Mpi(m) = &mut c.workload {
                    m.ops.remove(0);
                }
                push("drop first op", c);
            }
            let mut c = sc.clone();
            let mut changed = false;
            if let Workload::Mpi(m) = &mut c.workload {
                for op in &mut m.ops {
                    if let crate::scenario::OpKind::Compute(ns) = op {
                        if *ns > 100_000 {
                            *ns /= 2;
                            changed = true;
                        }
                    }
                }
            }
            if changed {
                push("halve computes", c);
            }
        }
        Workload::Soup(s) => {
            for k in (0..s.tasks.len()).rev() {
                if s.tasks.len() > 1 {
                    let mut c = sc.clone();
                    if let Workload::Soup(s) = &mut c.workload {
                        drop_soup_task(s, k);
                    }
                    push("drop a soup task", c);
                }
            }
            let mut c = sc.clone();
            let mut changed = false;
            if let Workload::Soup(s) = &mut c.workload {
                for t in &mut s.tasks {
                    for step in &mut t.steps {
                        if let SoupStep::Compute(ns) | SoupStep::Sleep(ns) = step {
                            if *ns > 100_000 {
                                *ns /= 2;
                                changed = true;
                            }
                        }
                    }
                }
            }
            if changed {
                push("halve compute/sleep durations", c);
            }
            let mut c = sc.clone();
            let mut changed = false;
            if let Workload::Soup(s) = &mut c.workload {
                for t in &mut s.tasks {
                    let before = t.steps.len();
                    t.steps
                        .retain(|s| !matches!(s, SoupStep::Barrier | SoupStep::SetPolicy(_)));
                    changed |= t.steps.len() != before;
                }
            }
            if changed {
                push("strip barriers and setpolicy", c);
            }
        }
        Workload::Batch(b) => {
            for k in (0..b.jobs.len()).rev() {
                if b.jobs.len() > 1 {
                    let mut c = sc.clone();
                    if let Workload::Batch(b) = &mut c.workload {
                        b.jobs.remove(k);
                    }
                    push("drop a batch job", c);
                }
            }
            let mut c = sc.clone();
            let mut changed = false;
            if let Workload::Batch(b) = &mut c.workload {
                for j in &mut b.jobs {
                    if j.compute_ns > 100_000 {
                        j.compute_ns /= 2;
                        changed = true;
                    }
                }
            }
            if changed {
                push("halve batch computes", c);
            }
            if b.policy != crate::scenario::BatchPolicyKind::Fcfs {
                let mut c = sc.clone();
                if let Workload::Batch(b) = &mut c.workload {
                    b.policy = crate::scenario::BatchPolicyKind::Fcfs;
                }
                push("policy to fcfs", c);
            }
            if b.walltime {
                // Adopting this step means the bug is not in the kill
                // path — walltime enforcement was incidental.
                let mut c = sc.clone();
                if let Workload::Batch(b) = &mut c.workload {
                    b.walltime = false;
                }
                push("drop walltime", c);
            }
            if b.gang_epoch_us > 0 {
                // Adopting this step means the bug is not in gang
                // rotation — the epoch knob was incidental. The policy
                // line itself is never shrunk away here: a DFRS failure
                // must stay a DFRS failure unless the fcfs candidate
                // above still reproduces it.
                let mut c = sc.clone();
                if let Workload::Batch(b) = &mut c.workload {
                    b.gang_epoch_us = 0;
                }
                push("disable gang rotation", c);
            }
            if !b.job_weights.is_empty() {
                // Adopting this step means the bug is not in the
                // weighted share split — uniform shares reproduce it.
                let mut c = sc.clone();
                if let Workload::Batch(b) = &mut c.workload {
                    b.job_weights.clear();
                }
                push("drop job weights", c);
            }
            if b.coord != crate::scenario::CoordKind::Off {
                // Adopting this step means the bug is not in the
                // coordination runtime — advisory shares reproduce it.
                let mut c = sc.clone();
                if let Workload::Batch(b) = &mut c.workload {
                    b.coord = crate::scenario::CoordKind::Off;
                }
                push("coordinator off", c);
            }
        }
    }
    if sc.noise_pct > 0 {
        let mut c = sc.clone();
        c.noise_pct = 0;
        push("disable noise", c);
    }
    if sc.irq {
        let mut c = sc.clone();
        c.irq = false;
        push("disable irq storm", c);
    }
    if sc.tickless {
        let mut c = sc.clone();
        c.tickless = false;
        push("disable tickless", c);
    }
    if sc.switched {
        let mut c = sc.clone();
        c.switched = false;
        push("flat fabric", c);
    }
    if sc.parallel {
        // Adopting this step means the bug reproduces under the serial
        // driver too — i.e. it is a scheduler bug, not a pool bug.
        let mut c = sc.clone();
        c.parallel = false;
        push("disable parallel stepping", c);
    }
    if !sc.faults.is_none() {
        // Adopting this step means the bug reproduces on a healthy
        // cluster — the fault plan was incidental, not causal.
        let mut c = sc.clone();
        c.faults = hpl_cluster::FaultPlan::none();
        push("drop fault plan", c);
    }
    if sc.hpl && sc.fault == Fault::None && !uses_hpc(sc) {
        let mut c = sc.clone();
        c.hpl = false;
        push("disable hpl class", c);
    }
    if sc.topo == TopoKind::Power6 {
        let mut c = sc.clone();
        c.topo = TopoKind::Smp(4);
        push("shrink topology", c);
    } else if sc.topo == TopoKind::Smp(4) {
        let mut c = sc.clone();
        c.topo = TopoKind::Smp(2);
        push("shrink topology", c);
    }
    // Pins may now point past the shrunk topology, batch job shapes
    // past the shrunk cluster, and parallel stepping and fault events
    // past a single-node shrink; clamp them.
    for (_, c) in &mut out {
        c.parallel &= c.nodes > 1;
        if c.nodes == 1 {
            c.faults = hpl_cluster::FaultPlan::none();
        } else {
            c.faults.events.retain(|e| e.node < c.nodes as usize);
        }
        let n = c.ncpus();
        match &mut c.workload {
            Workload::Soup(s) => {
                for t in &mut s.tasks {
                    if let Some(pin) = &mut t.pin {
                        *pin %= n;
                    }
                }
            }
            Workload::Batch(b) => {
                for j in &mut b.jobs {
                    j.nodes = j.nodes.min(c.nodes);
                    j.ranks_per_node = j.ranks_per_node.min(n);
                }
            }
            Workload::Mpi(_) => {}
        }
    }
    out
}

/// Remove soup task `k`, dropping every step in other tasks that
/// references it (waits on its channels, notifies to it) and reindexing
/// references to tasks above `k`. Barrier parties recompute from
/// structure, so barrier steps stay consistent.
fn drop_soup_task(s: &mut crate::scenario::SoupSpec, k: usize) {
    s.tasks.remove(k);
    let k = k as u32;
    for t in &mut s.tasks {
        t.steps.retain(|step| match *step {
            SoupStep::Notify { to } => to != k,
            SoupStep::Wait { from } | SoupStep::SpinWait { from, .. } => from != k,
            _ => true,
        });
        for step in &mut t.steps {
            match step {
                SoupStep::Notify { to } if *to > k => *to -= 1,
                SoupStep::Wait { from } if *from > k => *from -= 1,
                SoupStep::SpinWait { from, .. } if *from > k => *from -= 1,
                _ => {}
            }
        }
    }
}

/// Greedily shrink a failing scenario. `sc` must currently fail
/// [`check_scenario`]; the returned scenario still fails it.
pub fn shrink(sc: &Scenario, mut on_step: impl FnMut(&'static str)) -> Shrunk {
    let mut current = sc.clone();
    let mut failures: Vec<String> = check_scenario(&current)
        .iter()
        .map(|f| f.to_string())
        .collect();
    let mut runs = 1;
    let mut steps = Vec::new();
    'outer: loop {
        for (label, cand) in candidates(&current) {
            if runs >= MAX_RUNS {
                break 'outer;
            }
            runs += 1;
            let cand_failures = check_scenario(&cand);
            if !cand_failures.is_empty() {
                current = cand;
                failures = cand_failures.iter().map(|f| f.to_string()).collect();
                steps.push(label);
                on_step(label);
                continue 'outer;
            }
        }
        break;
    }
    Shrunk {
        scenario: current,
        failures,
        steps,
        runs,
    }
}
