//! Batch-workload torture scenarios: the grammar samples them, the text
//! form replays them, and the full differential check (both event
//! loops, oracles attached, occupancy + reservation audits) holds.

use hpl_torture::{check_scenario, run_scenario, BatchPolicyKind, Scenario, Workload};

/// First sampled batch scenario of a seed stream.
fn first_batch(base_seed: u64) -> Scenario {
    (0..200)
        .map(|i| Scenario::sample(base_seed, i))
        .find(|sc| matches!(sc.workload, Workload::Batch(_)))
        .expect("sampler never produced a batch workload in 200 draws")
}

#[test]
fn sampler_produces_batch_scenarios_that_round_trip() {
    let sc = first_batch(0xBA7C5);
    let Workload::Batch(b) = &sc.workload else {
        unreachable!()
    };
    assert!((2..=4).contains(&b.jobs.len()), "{} jobs", b.jobs.len());
    for j in &b.jobs {
        assert!(j.nodes >= 1 && j.nodes <= sc.nodes);
        assert!(j.est_runtime_ns > j.iters as u64 * j.compute_ns);
    }
    let text = sc.to_text();
    let back = Scenario::from_text(&text).expect("batch scenario parses back");
    assert_eq!(sc, back);
}

#[test]
fn batch_scenario_passes_the_full_check() {
    let sc = first_batch(0xBA7C5);
    let failures = check_scenario(&sc);
    assert!(
        failures.is_empty(),
        "batch scenario failed: {:?}",
        failures.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn sampler_produces_dfrs_gang_scenarios_that_round_trip() {
    let sc = (0..400)
        .map(|i| Scenario::sample(0xD8F5, i))
        .find(|sc| {
            matches!(&sc.workload,
                Workload::Batch(b) if b.policy == BatchPolicyKind::Dfrs)
        })
        .expect("sampler never produced a dfrs workload in 400 draws");
    let Workload::Batch(b) = &sc.workload else {
        unreachable!()
    };
    assert!(
        b.gang_epoch_us > 0,
        "dfrs scenarios always arm gang rotation"
    );
    let text = sc.to_text();
    assert!(text.contains("policy dfrs"), "{text}");
    assert!(text.contains("gang_epoch_us"), "{text}");
    let back = Scenario::from_text(&text).expect("dfrs scenario parses back");
    assert_eq!(sc, back);
}

#[test]
fn dfrs_gang_scenario_passes_the_full_check() {
    // Two whole-cluster jobs submitted together: both land on both
    // nodes (DFRS allows two jobs per node), so gang rotation engages
    // and the dfrs share audit, occupancy-leak and cross-node
    // gang-alignment rules all run against a live rotation.
    let text = "\
torture-scenario v1
seed 41
nodes 2
topo smp2
switched false
hpl true
tickless false
noise_pct 0
irq false
parallel false
fault none
workload batch
policy dfrs
gang_epoch_us 500
bjob 0 0 2 1 4 1000000 64 60000000 0 0
bjob 1 0 2 1 4 1000000 64 60000000 1 0
";
    let sc = Scenario::from_text(text).expect("parses");
    assert_eq!(sc.to_text(), text);
    let failures = check_scenario(&sc);
    assert!(
        failures.is_empty(),
        "dfrs gang scenario failed: {:?}",
        failures.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn gang_epoch_is_inert_under_a_dedicated_policy() {
    // Same stream under FCFS with the epoch knob still armed: one job
    // per node means rotation can never engage, and the gang-inert
    // oracle rule would flag any activation.
    let text = "\
torture-scenario v1
seed 41
nodes 2
topo smp2
switched false
hpl true
tickless false
noise_pct 0
irq false
parallel false
fault none
workload batch
policy fcfs
gang_epoch_us 500
bjob 0 0 2 1 4 1000000 64 60000000 0 0
bjob 1 0 2 1 4 1000000 64 60000000 1 0
";
    let sc = Scenario::from_text(text).expect("parses");
    let failures = check_scenario(&sc);
    assert!(
        failures.is_empty(),
        "inert gang knob tripped the check: {:?}",
        failures.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn hand_written_batch_scenario_replays() {
    let text = "\
torture-scenario v1
seed 99
nodes 2
topo smp2
switched false
hpl true
tickless false
noise_pct 0
irq false
parallel false
fault none
workload batch
policy easy
bjob 0 0 2 1 2 1000000 64 60000000 1 0
bjob 1 1000000 1 1 2 1000000 64 60000000 0 1
";
    let sc = Scenario::from_text(text).expect("parses");
    assert_eq!(sc.to_text(), text);
    // The pre-policy-zoo 8-field bjob form (no user/class) still
    // parses, defaulting both to 0.
    let legacy = text
        .lines()
        .map(|l| {
            if let Some(stripped) = l.strip_prefix("bjob ") {
                let cut: Vec<&str> = stripped.split_whitespace().take(8).collect();
                format!("bjob {}", cut.join(" "))
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    let old = Scenario::from_text(&legacy).expect("8-field bjob parses");
    let hpl_torture::Workload::Batch(b) = &old.workload else {
        panic!("batch workload expected")
    };
    assert!(b.jobs.iter().all(|j| j.user == 0 && j.class == 0));
    let report = run_scenario(&sc, true, false);
    assert!(report.outcome.is_complete(), "outcome {:?}", report.outcome);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.exec_ns > 0, "makespan must be recorded");
}
