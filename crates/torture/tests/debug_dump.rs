//! Temporary debug helper: dump the event stream of a replay file.
//! Run with:
//!   TORTURE_DUMP=<artifact> cargo test -p hpl-torture --release \
//!     --test debug_dump -- --ignored --nocapture

use hpl_kernel::observe::{SchedEvent, SchedObserver};
use hpl_sim::SimTime;
use std::any::Any;

struct Dump;
impl SchedObserver for Dump {
    fn observe(&mut self, at: SimTime, ev: &SchedEvent) {
        if at >= SimTime::from_nanos(299_900_000) {
            println!("{at} {ev:?}");
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
#[ignore]
fn dump() {
    let path = std::env::var("TORTURE_DUMP").expect("set TORTURE_DUMP=<artifact>");
    let sc = hpl_torture::artifact::read_artifact(std::path::Path::new(&path)).unwrap();
    hpl_torture::runner::debug_run_single(&sc, false, Box::new(Dump));
}
