//! The modified `chrt` launcher.
//!
//! The paper's users move applications into the HPC class "by means of
//! the standard `sched_setscheduler()` system call or via our modified
//! version of `chrt`". `chrt` sets its *own* policy to `SCHED_HPC` and
//! then `exec`s the target command — so the target (typically `mpiexec`)
//! inherits the class, and every rank it forks is born into the HPC
//! class. "This introduces no run-time overhead because mpiexec only
//! forks the other MPI tasks and waits for them to finish" — but it does
//! account for one of the ~10 CPU migrations of Table Ib.

use hpl_kernel::{Policy, ProgCtx, Program, Step, TaskSpec};

/// A program that first performs `sched_setscheduler(self, policy)` and
/// then behaves as `inner` — the process-level model of
/// `chrt --policy <p> exec ...`.
pub struct ChrtProgram {
    policy: Policy,
    inner: Box<dyn Program>,
    policy_set: bool,
}

impl ChrtProgram {
    /// Wrap `inner` so it runs under `policy`.
    pub fn new(policy: Policy, inner: Box<dyn Program>) -> Self {
        ChrtProgram {
            policy,
            inner,
            policy_set: false,
        }
    }
}

impl Program for ChrtProgram {
    fn next_step(&mut self, ctx: &mut ProgCtx<'_>) -> Step {
        if !self.policy_set {
            self.policy_set = true;
            return Step::SetPolicy {
                target: None,
                policy: self.policy,
            };
        }
        self.inner.next_step(ctx)
    }

    fn describe(&self) -> &str {
        "chrt"
    }
}

/// Build the task spec for `chrt --hpc <payload>`: the task starts as a
/// normal CFS task (like the real `chrt` binary), switches itself into
/// the HPC class, and then executes the payload program.
pub fn chrt_spec(name: impl Into<String>, payload: TaskSpec) -> TaskSpec {
    let TaskSpec {
        program,
        affinity,
        tag,
        ..
    } = payload;
    let mut spec = TaskSpec::new(
        name,
        Policy::Normal { nice: 0 },
        Box::new(ChrtProgram::new(Policy::Hpc, program)),
    )
    .with_affinity(affinity);
    if let Some(t) = tag {
        spec = spec.with_tag(t);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpl_node_builder;
    use hpl_kernel::program::ScriptProgram;
    use hpl_kernel::TaskState;
    use hpl_sim::SimDuration;
    use hpl_topology::Topology;

    #[test]
    fn chrt_moves_task_into_hpc_class() {
        let mut node = hpl_node_builder(Topology::power6_js22())
            .with_seed(1)
            .build();
        let payload = TaskSpec::new(
            "app",
            Policy::Hpc, // ignored; chrt decides the birth policy
            ScriptProgram::boxed("app", vec![Step::Compute(SimDuration::from_millis(5))]),
        );
        let pid = node.spawn(chrt_spec("chrt", payload));
        // At spawn the task is CFS...
        node.run_for(SimDuration::from_micros(50));
        // ...after its first steps it is in the HPC class.
        node.run_for(SimDuration::from_millis(1));
        assert_eq!(node.tasks.get(pid).policy, Policy::Hpc);
        assert!(node.run_until_exit(pid, 1_000_000).is_complete());
        assert_eq!(node.tasks.get(pid).state, TaskState::Dead);
    }

    #[test]
    fn chrt_preserves_tag_and_affinity() {
        let payload =
            TaskSpec::new("app", Policy::Hpc, ScriptProgram::boxed("app", vec![])).with_tag(42);
        let spec = chrt_spec("chrt", payload);
        assert_eq!(spec.tag, Some(42));
        assert_eq!(spec.policy, Policy::Normal { nice: 0 });
    }
}
