//! Topology-aware fork-time placement.
//!
//! The only load balancing HPL performs happens when a task is created:
//! "HPL first balances the load between the two chips, then between the
//! cores in a chip, and finally between the hardware threads within a
//! core" — i.e. the placement order fills one hardware thread of every
//! core (spreading across sockets) before using any core's second
//! thread. On the POWER6, whose cores share no cache but whose SMT
//! threads share everything, this maximises per-task cache and pipeline
//! resources for up to `total_cores` tasks.

use hpl_kernel::Task;
use hpl_topology::{CpuId, Topology};

/// Count of HPC tasks currently assigned per CPU, as seen at fork time.
/// The caller supplies this from its runqueues.
pub type HpcLoad<'a> = &'a [u32];

/// Choose the CPU for a newly forked HPC task.
///
/// Selection minimises, in order:
/// 1. the number of HPC tasks on the candidate's **core**,
/// 2. the number of HPC tasks on the candidate's **socket**,
/// 3. the number of HPC tasks on the candidate **CPU** itself,
/// 4. the CPU id (determinism).
///
/// Only CPUs allowed by the task's affinity mask are considered; the
/// fallback (empty intersection) is the task's current CPU.
pub fn hpl_fork_placement(topo: &Topology, task: &Task, hpc_per_cpu: HpcLoad<'_>) -> CpuId {
    let ncpus = topo.total_cpus();
    debug_assert_eq!(hpc_per_cpu.len(), ncpus as usize);

    let core_load = |cpu: CpuId| -> u32 {
        topo.smt_siblings(cpu)
            .iter()
            .map(|c| hpc_per_cpu[c.index()])
            .sum()
    };
    let socket_load = |cpu: CpuId| -> u32 {
        topo.socket_cpus(cpu)
            .iter()
            .map(|c| hpc_per_cpu[c.index()])
            .sum()
    };

    let mut best: Option<(u32, u32, u32, CpuId)> = None;
    for raw in 0..ncpus {
        let cpu = CpuId(raw);
        if !task.can_run_on(cpu) {
            continue;
        }
        let key = (
            core_load(cpu),
            socket_load(cpu),
            hpc_per_cpu[cpu.index()],
            cpu,
        );
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best.map_or(task.cpu, |(_, _, _, cpu)| cpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_kernel::{Pid, Policy};
    use hpl_topology::CpuMask;

    fn task(affinity: CpuMask) -> Task {
        Task::new(Pid(0), "rank", Policy::Hpc, affinity)
    }

    /// Simulate placing `n` ranks one after another and return the CPUs.
    fn place_n(topo: &Topology, n: usize) -> Vec<u32> {
        let mut load = vec![0u32; topo.total_cpus() as usize];
        let t = task(topo.all_cpus());
        (0..n)
            .map(|_| {
                let cpu = hpl_fork_placement(topo, &t, &load);
                load[cpu.index()] += 1;
                cpu.0
            })
            .collect()
    }

    #[test]
    fn fills_one_thread_per_core_first() {
        let topo = Topology::power6_js22();
        let got = place_n(&topo, 8);
        // First four tasks: one per core, alternating sockets
        // (chips first, then cores, then threads).
        // CPU layout: socket0 = {0,1,2,3} (cores 0,1), socket1 = {4,5,6,7}.
        assert_eq!(got[0], 0); // socket0 core0 thread0
        assert_eq!(got[1], 4); // socket1 core2 thread0 (other chip!)
        assert_eq!(got[2], 2); // socket0 core1 thread0
        assert_eq!(got[3], 6); // socket1 core3 thread0
                               // All four cores used before any SMT sibling.
        let first_four: std::collections::HashSet<u32> = got[..4].iter().map(|&c| c / 2).collect();
        assert_eq!(first_four.len(), 4, "one task per core first");
        // Next four fill the second hardware threads.
        let second: Vec<u32> = got[4..].iter().map(|&c| c % 2).collect();
        assert_eq!(second, vec![1, 1, 1, 1]);
    }

    #[test]
    fn all_cpus_distinct_for_full_node() {
        let topo = Topology::power6_js22();
        let got = place_n(&topo, 8);
        let set: std::collections::HashSet<u32> = got.iter().copied().collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn ninth_task_doubles_up_least_loaded_core() {
        let topo = Topology::power6_js22();
        let got = place_n(&topo, 9);
        // Ninth lands somewhere already occupied, lowest-id core.
        assert_eq!(got[8], 0);
    }

    #[test]
    fn respects_affinity() {
        let topo = Topology::power6_js22();
        let load = vec![0; 8];
        let t = task(CpuMask::from_cpus([CpuId(5), CpuId(7)]));
        let got = hpl_fork_placement(&topo, &t, &load);
        assert_eq!(got, CpuId(5));
    }

    #[test]
    fn empty_affinity_intersection_falls_back() {
        let topo = Topology::power6_js22();
        let load = vec![0; 8];
        let mut t = task(CpuMask::EMPTY);
        t.cpu = CpuId(3);
        assert_eq!(hpl_fork_placement(&topo, &t, &load), CpuId(3));
    }

    #[test]
    fn works_on_flat_smp() {
        let topo = Topology::smp(4);
        let got = place_n(&topo, 4);
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn xeon_spreads_across_sockets() {
        let topo = Topology::xeon_2s4c2t();
        let got = place_n(&topo, 4);
        // Sockets have CPUs 0-7 and 8-15; expect alternation.
        assert_eq!(got[0], 0);
        assert_eq!(got[1], 8);
        assert!(got[2] < 8 && got[2] != 0);
        assert!(got[3] >= 8);
    }
}
