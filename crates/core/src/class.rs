//! The `SCHED_HPC` scheduling class.
//!
//! Registered between RT and CFS. Mechanically the class is deliberately
//! minimal — a per-CPU round-robin queue — because the policy work
//! happens elsewhere: placement at fork ([`crate::placement`]) and the
//! suppression of all dynamic balancing (kernel config). Its position in
//! the class list does the heavy lifting: while any HPC task is runnable
//! on a CPU, `pick_next` never reaches CFS, so daemons simply cannot
//! preempt or even run — they execute only "when there are no HPC tasks
//! running on a CPU" (§V).

use crate::placement::hpl_fork_placement;
use hpl_kernel::{ClassKind, LoadSnapshot, SchedClass, SchedCtx};
use hpl_kernel::{Pid, Task, TaskTable};
use hpl_sim::SimDuration;
use hpl_topology::CpuId;
use std::collections::VecDeque;

/// The HPL scheduling class: per-CPU round-robin of HPC tasks.
#[derive(Debug, Default)]
pub struct HplClass {
    rqs: Vec<VecDeque<Pid>>,
    fault_wakeup_migrate: bool,
    /// Gang rotation state pushed by the node's gang controller. While
    /// `Some(g)`, only tasks of gang `g` (or gangless tasks) may be
    /// picked; everyone else waits queued for their epoch. `None` (the
    /// default, and the permanent state when `gang_epoch` is unset)
    /// restores plain round-robin and its exact pick order.
    gang_active: Option<u64>,
}

impl HplClass {
    /// New, uninitialised class (the node calls [`SchedClass::init`]).
    pub fn new() -> Self {
        HplClass::default()
    }

    /// Deliberately broken wake placement for the `hpl-torture`
    /// self-test: every wakeup rotates the task to the next allowed CPU,
    /// violating the paper's "HPC tasks migrate only at fork" invariant.
    /// The torture harness injects this to prove its oracle catches a
    /// real scheduler bug and shrinks it to a replayable seed.
    pub fn with_fault_wakeup_migrate(mut self) -> Self {
        self.fault_wakeup_migrate = true;
        self
    }

    /// HPC tasks per CPU for placement: running, queued **and blocked**
    /// tasks all count toward their home CPU. Counting blocked tasks is
    /// what lets fork placement during MPI_Init (when earlier ranks are
    /// briefly asleep in connection setup) still reserve one hardware
    /// thread per rank — the paper's "one process per core" discipline.
    fn hpc_load(&self, tasks: &TaskTable, exclude: Pid) -> Vec<u32> {
        use hpl_kernel::task::BlockReason;
        use hpl_kernel::TaskState;
        let mut load = vec![0u32; self.rqs.len()];
        for t in tasks.iter() {
            // A task blocked waiting for its children (mpiexec in
            // waitpid) is passive for the rest of the job's life; its
            // CPU is fair game. Everything else — running, queued, or
            // briefly asleep in MPI_Init — keeps its reservation.
            let passive = matches!(
                t.state,
                TaskState::Dead | TaskState::Blocked(BlockReason::Children)
            );
            if t.pid != exclude && t.policy == hpl_kernel::Policy::Hpc && !passive {
                load[t.cpu.index()] += 1;
            }
        }
        load
    }

    /// May `task` run under the current gang rotation? Gangless tasks
    /// (mpiexec trees launched without enrollment) always may.
    fn gang_eligible(&self, task: &Task) -> bool {
        match self.gang_active {
            None => true,
            Some(g) => task.gang.is_none() || task.gang == Some(g),
        }
    }
}

impl SchedClass for HplClass {
    fn kind(&self) -> ClassKind {
        ClassKind::Hpc
    }

    fn init(&mut self, ncpus: usize) {
        self.rqs = (0..ncpus).map(|_| VecDeque::new()).collect();
    }

    fn enqueue(&mut self, cpu: CpuId, task: &mut Task, ctx: &SchedCtx<'_>, _wakeup: bool) {
        if task.time_slice.is_zero() {
            task.time_slice = ctx.cfg.hpc_rr_timeslice;
        }
        debug_assert!(!self.rqs[cpu.index()].contains(&task.pid));
        self.rqs[cpu.index()].push_back(task.pid);
    }

    fn dequeue(&mut self, cpu: CpuId, task: &mut Task, _ctx: &SchedCtx<'_>) {
        let rq = &mut self.rqs[cpu.index()];
        let before = rq.len();
        rq.retain(|&p| p != task.pid);
        debug_assert_eq!(rq.len() + 1, before, "{} not queued on {cpu}", task.pid);
    }

    fn pick_next(&mut self, cpu: CpuId, tasks: &TaskTable) -> Option<Pid> {
        if self.gang_active.is_none() {
            // No rotation: the exact historical pop-front path.
            return self.rqs[cpu.index()].pop_front();
        }
        let idx = self.rqs[cpu.index()]
            .iter()
            .position(|&p| self.gang_eligible(tasks.get(p)))?;
        self.rqs[cpu.index()].remove(idx)
    }

    fn put_prev(&mut self, cpu: CpuId, task: &mut Task, ctx: &SchedCtx<'_>) {
        let rq = &mut self.rqs[cpu.index()];
        if task.time_slice.is_zero() {
            // Round-robin expiry: tail, fresh slice.
            task.time_slice = ctx.cfg.hpc_rr_timeslice;
            rq.push_back(task.pid);
        } else {
            // Preempted by a higher class (RT): resume first.
            rq.push_front(task.pid);
        }
    }

    fn update_curr(&mut self, _cpu: CpuId, task: &mut Task, ran: SimDuration) {
        task.time_slice = task.time_slice.saturating_sub(ran);
    }

    fn task_tick(&mut self, cpu: CpuId, task: &mut Task, ctx: &SchedCtx<'_>) -> bool {
        if task.time_slice.is_zero() {
            if !self.rqs[cpu.index()].is_empty() {
                return true;
            }
            // Alone on the CPU (the expected case): just refresh.
            task.time_slice = ctx.cfg.hpc_rr_timeslice;
        }
        false
    }

    fn tick_skippable(&self, cpu: CpuId, _task: &Task) -> bool {
        // With an empty runqueue the tick can only refresh the lone
        // rank's timeslice — never request preemption — and the slice is
        // refreshed again on enqueue/put_prev anyway. This is the steady
        // state HPL is designed to reach (one rank per hardware thread),
        // so under `tickless_single_hpc` the node may batch these ticks.
        self.rqs[cpu.index()].is_empty()
    }

    fn wakeup_preempt(
        &self,
        _cpu: CpuId,
        _curr: &Task,
        _woken: &Task,
        _ctx: &SchedCtx<'_>,
    ) -> bool {
        // HPC tasks are peers: a waking rank never preempts another rank
        // (round-robin order decides).
        false
    }

    fn nr_queued(&self, cpu: CpuId) -> u32 {
        self.rqs[cpu.index()].len() as u32
    }

    fn queued_pids(&self, cpu: CpuId) -> Vec<Pid> {
        self.rqs[cpu.index()].iter().copied().collect()
    }

    fn select_cpu_fork(
        &mut self,
        task: &Task,
        _parent_cpu: CpuId,
        ctx: &SchedCtx<'_>,
        _snap: &LoadSnapshot,
        tasks: &TaskTable,
    ) -> CpuId {
        let load = self.hpc_load(tasks, task.pid);
        hpl_fork_placement(ctx.topo, task, &load)
    }

    fn select_cpu_wakeup(
        &mut self,
        task: &Task,
        ctx: &SchedCtx<'_>,
        _snap: &LoadSnapshot,
        tasks: &TaskTable,
    ) -> CpuId {
        // "Stay out of the way": a waking HPC task normally returns to
        // the CPU fork placement gave it, preserving its cache footprint.
        // The one exception is the paper's "initialization and
        // finalization" special case (§IV: "maybe two or three [HPC
        // tasks per CPU] in special cases such as initialization"): if
        // this task would wake onto a CPU already occupied by another
        // HPC task while some CPU has none — e.g. mpiexec's thread after
        // it blocked in waitpid — re-run the topology-aware placement.
        // Without this, the transient 9-tasks-on-8-threads layout of the
        // launch phase would persist for the whole run, because HPL
        // performs no dynamic balancing that could ever repair it.
        if self.fault_wakeup_migrate {
            // Injected bug (see `with_fault_wakeup_migrate`): bounce to
            // the next CPU in the affinity mask on every wakeup.
            let n = ctx.topo.total_cpus();
            for off in 1..=n {
                let cand = CpuId((task.cpu.0 + off) % n);
                if task.can_run_on(cand) {
                    return cand;
                }
            }
        }
        let load = self.hpc_load(tasks, task.pid);
        let prev = task.cpu;
        let core_load = |cpu: CpuId| -> u32 {
            ctx.topo
                .smt_siblings(cpu)
                .iter()
                .map(|c| load[c.index()])
                .sum()
        };
        // Contended: another HPC task shares this hardware thread, or —
        // while whole cores are still free — this core. "One process per
        // core when the number of HPC tasks is less than or equal to the
        // number of cores" (§IV).
        let free_core_exists = ctx
            .topo
            .all_cpus()
            .iter()
            .any(|c| task.can_run_on(c) && core_load(c) == 0);
        let contended = load[prev.index()] >= 1 || (free_core_exists && core_load(prev) >= 1);
        let free_exists = free_core_exists
            || (0..load.len()).any(|i| load[i] == 0 && task.can_run_on(CpuId(i as u32)));
        if contended && free_exists {
            crate::placement::hpl_fork_placement(ctx.topo, task, &load)
        } else {
            prev
        }
    }

    fn gang_epoch(&mut self, active: Option<u64>) -> bool {
        let changed = self.gang_active != active;
        self.gang_active = active;
        // Any switch can change which queued task is eligible (and can
        // strand the running task outside its epoch), so ask for a
        // reschedule whenever the value moved.
        changed
    }

    // No periodic_balance, idle_balance, or push_overload overrides: the
    // defaults return nothing, which *is* the HPL policy.
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_kernel::{KernelConfig, Policy, TaskState};
    use hpl_sim::SimTime;
    use hpl_topology::{CpuMask, DomainHierarchy, Topology};

    struct Fixture {
        cfg: KernelConfig,
        topo: Topology,
        domains: DomainHierarchy,
    }

    impl Fixture {
        fn new() -> Self {
            let topo = Topology::power6_js22();
            let domains = DomainHierarchy::build(&topo);
            Fixture {
                cfg: KernelConfig::hpl(),
                topo,
                domains,
            }
        }
        fn ctx(&self) -> SchedCtx<'_> {
            SchedCtx {
                now: SimTime::ZERO,
                cfg: &self.cfg,
                topo: &self.topo,
                domains: &self.domains,
            }
        }
    }

    fn hpc_task(tt: &mut TaskTable, name: &str) -> Pid {
        tt.alloc(|p| Task::new(p, name, Policy::Hpc, CpuMask::first_n(8)))
    }

    fn snapshot(n: usize) -> LoadSnapshot {
        LoadSnapshot {
            nr_running: vec![0; n],
            curr_kind: vec![None; n],
            curr_rt_prio: vec![0; n],
        }
    }

    #[test]
    fn round_robin_order() {
        let fx = Fixture::new();
        let mut hpl = HplClass::new();
        hpl.init(8);
        let mut tt = TaskTable::new();
        let a = hpc_task(&mut tt, "a");
        let b = hpc_task(&mut tt, "b");
        let ctx = fx.ctx();
        hpl.enqueue(CpuId(0), tt.get_mut(a), &ctx, false);
        hpl.enqueue(CpuId(0), tt.get_mut(b), &ctx, false);
        assert_eq!(hpl.pick_next(CpuId(0), &tt), Some(a));
        // Slice expired: goes to the tail.
        tt.get_mut(a).time_slice = SimDuration::ZERO;
        hpl.put_prev(CpuId(0), tt.get_mut(a), &ctx);
        assert_eq!(hpl.pick_next(CpuId(0), &tt), Some(b));
    }

    #[test]
    fn preempted_task_resumes_first() {
        let fx = Fixture::new();
        let mut hpl = HplClass::new();
        hpl.init(8);
        let mut tt = TaskTable::new();
        let a = hpc_task(&mut tt, "a");
        let b = hpc_task(&mut tt, "b");
        let ctx = fx.ctx();
        hpl.enqueue(CpuId(0), tt.get_mut(a), &ctx, false);
        hpl.enqueue(CpuId(0), tt.get_mut(b), &ctx, false);
        let first = hpl.pick_next(CpuId(0), &tt).unwrap();
        // Preempted by RT with slice remaining: back to the head.
        hpl.put_prev(CpuId(0), tt.get_mut(first), &ctx);
        assert_eq!(hpl.pick_next(CpuId(0), &tt), Some(first));
    }

    #[test]
    fn tick_reschedules_only_with_competition() {
        let fx = Fixture::new();
        let mut hpl = HplClass::new();
        hpl.init(8);
        let mut tt = TaskTable::new();
        let a = hpc_task(&mut tt, "a");
        let b = hpc_task(&mut tt, "b");
        let ctx = fx.ctx();
        tt.get_mut(a).time_slice = SimDuration::ZERO;
        // Alone: refreshed, no resched.
        assert!(!hpl.task_tick(CpuId(0), tt.get_mut(a), &ctx));
        assert_eq!(tt.get(a).time_slice, fx.cfg.hpc_rr_timeslice);
        // With a peer queued: resched.
        hpl.enqueue(CpuId(0), tt.get_mut(b), &ctx, false);
        tt.get_mut(a).time_slice = SimDuration::ZERO;
        assert!(hpl.task_tick(CpuId(0), tt.get_mut(a), &ctx));
    }

    #[test]
    fn no_wakeup_preemption_between_ranks() {
        let fx = Fixture::new();
        let hpl = HplClass::new();
        let mut tt = TaskTable::new();
        let a = hpc_task(&mut tt, "a");
        let b = hpc_task(&mut tt, "b");
        let ctx = fx.ctx();
        assert!(!hpl.wakeup_preempt(CpuId(0), tt.get(a), tt.get(b), &ctx));
    }

    #[test]
    fn fork_placement_is_topology_aware() {
        let fx = Fixture::new();
        let mut hpl = HplClass::new();
        hpl.init(8);
        let mut tt = TaskTable::new();
        let ctx = fx.ctx();
        let mut snap = snapshot(8);
        let mut placed = Vec::new();
        for i in 0..8 {
            let p = hpc_task(&mut tt, &format!("r{i}"));
            let cpu = hpl.select_cpu_fork(tt.get(p), CpuId(0), &ctx, &snap, &tt);
            placed.push(cpu.0);
            // Mark as running there so the next placement sees it.
            snap.curr_kind[cpu.index()] = Some(ClassKind::Hpc);
            snap.nr_running[cpu.index()] += 1;
            tt.get_mut(p).cpu = cpu;
            tt.get_mut(p).state = TaskState::Running;
        }
        // One per core before any second thread, spreading chips first.
        assert_eq!(placed[..4], [0, 4, 2, 6]);
        let threads: std::collections::HashSet<u32> = placed.iter().copied().collect();
        assert_eq!(threads.len(), 8);
    }

    #[test]
    fn wakeup_keeps_cpu() {
        let fx = Fixture::new();
        let mut hpl = HplClass::new();
        hpl.init(8);
        let mut tt = TaskTable::new();
        let a = hpc_task(&mut tt, "a");
        tt.get_mut(a).cpu = CpuId(5);
        let snap = snapshot(8);
        let ctx = fx.ctx();
        assert_eq!(hpl.select_cpu_wakeup(tt.get(a), &ctx, &snap, &tt), CpuId(5));
    }

    #[test]
    fn balance_hooks_do_nothing() {
        let fx = Fixture::new();
        let mut hpl = HplClass::new();
        hpl.init(8);
        let mut tt = TaskTable::new();
        let a = hpc_task(&mut tt, "a");
        let ctx = fx.ctx();
        tt.get_mut(a).cpu = CpuId(2);
        hpl.enqueue(CpuId(2), tt.get_mut(a), &ctx, false);
        let mut snap = snapshot(8);
        snap.nr_running[2] = 1;
        let mut plans = Vec::new();
        hpl.idle_balance(CpuId(0), &ctx, &snap, &tt, &mut plans);
        hpl.periodic_balance(CpuId(0), 0, &ctx, &snap, &tt, &mut plans);
        hpl.push_overload(CpuId(2), &ctx, &snap, &tt, &mut plans);
        assert!(plans.is_empty());
    }

    #[test]
    fn tick_skippable_iff_alone() {
        let fx = Fixture::new();
        let mut hpl = HplClass::new();
        hpl.init(8);
        let mut tt = TaskTable::new();
        let a = hpc_task(&mut tt, "a");
        let b = hpc_task(&mut tt, "b");
        let ctx = fx.ctx();
        assert!(hpl.tick_skippable(CpuId(0), tt.get(a)));
        hpl.enqueue(CpuId(0), tt.get_mut(b), &ctx, false);
        assert!(!hpl.tick_skippable(CpuId(0), tt.get(a)));
    }

    #[test]
    fn gang_rotation_filters_picks() {
        let fx = Fixture::new();
        let mut hpl = HplClass::new();
        hpl.init(8);
        let mut tt = TaskTable::new();
        let a = hpc_task(&mut tt, "a");
        let b = hpc_task(&mut tt, "b");
        let m = hpc_task(&mut tt, "m"); // gangless (mpiexec-style)
        tt.get_mut(a).gang = Some(1);
        tt.get_mut(b).gang = Some(2);
        let ctx = fx.ctx();
        hpl.enqueue(CpuId(0), tt.get_mut(a), &ctx, false);
        hpl.enqueue(CpuId(0), tt.get_mut(b), &ctx, false);
        hpl.enqueue(CpuId(0), tt.get_mut(m), &ctx, false);
        // Rotation announcing a change requests a reschedule; repeating
        // the same active gang does not.
        assert!(hpl.gang_epoch(Some(2)));
        assert!(!hpl.gang_epoch(Some(2)));
        // Gang 2's epoch: a (gang 1) is passed over, b runs first, and
        // the gangless task is always eligible.
        assert_eq!(hpl.pick_next(CpuId(0), &tt), Some(b));
        assert_eq!(hpl.pick_next(CpuId(0), &tt), Some(m));
        assert_eq!(hpl.pick_next(CpuId(0), &tt), None);
        assert_eq!(hpl.nr_queued(CpuId(0)), 1, "a stays queued for its turn");
        // Gang 1's epoch: a becomes pickable again.
        assert!(hpl.gang_epoch(Some(1)));
        assert_eq!(hpl.pick_next(CpuId(0), &tt), Some(a));
        // Rotation over: plain pop-front order.
        assert!(hpl.gang_epoch(None));
        hpl.enqueue(CpuId(0), tt.get_mut(b), &ctx, false);
        hpl.enqueue(CpuId(0), tt.get_mut(a), &ctx, false);
        assert_eq!(hpl.pick_next(CpuId(0), &tt), Some(b));
        assert_eq!(hpl.pick_next(CpuId(0), &tt), Some(a));
    }

    #[test]
    fn dequeue_removes() {
        let fx = Fixture::new();
        let mut hpl = HplClass::new();
        hpl.init(8);
        let mut tt = TaskTable::new();
        let a = hpc_task(&mut tt, "a");
        let ctx = fx.ctx();
        hpl.enqueue(CpuId(1), tt.get_mut(a), &ctx, false);
        assert_eq!(hpl.nr_queued(CpuId(1)), 1);
        assert_eq!(hpl.queued_pids(CpuId(1)), vec![a]);
        hpl.dequeue(CpuId(1), tt.get_mut(a), &ctx);
        assert_eq!(hpl.nr_queued(CpuId(1)), 0);
    }
}
