//! # hpl-core — the HPL scheduling class
//!
//! The paper's primary contribution: a new scheduling class, `SCHED_HPC`,
//! registered **between** the Real-Time and CFS classes. Because the
//! Scheduler Core walks classes in priority order, registering here gives
//! the paper's central guarantee for free: *no CFS task (user or kernel
//! daemon) is ever selected while a runnable HPC task exists on that CPU*
//! — while RT tasks (e.g. the migration kernel threads) retain priority
//! over HPC work.
//!
//! Design decisions, straight from §IV of the paper:
//!
//! * **Simple round-robin run queue.** "Since HPC systems usually run at
//!   most one task per core or hardware thread [...] a complex algorithm
//!   to select the next task to run is not warranted."
//! * **Load balancing only at `fork()`**, and topology-aware: one task
//!   per core first (spreading across chips), then the second hardware
//!   thread of each core. See [`placement`].
//! * **No dynamic balancing, for any class**, while HPC tasks run: both
//!   the direct cost (balancer invocations) and the indirect cost (cache
//!   losses) exceed the benefit on a machine whose cores share no cache.
//!   This is a kernel-config policy ([`hpl_kernel::BalanceMode::None`])
//!   rather than a class hook, exactly as the paper describes disabling
//!   balancing globally.
//! * **`chrt` integration.** Applications enter the class through the
//!   standard `sched_setscheduler` path; [`chrt`] provides the modified
//!   launcher the paper uses (`chrt --hpc mpiexec ...`), which also puts
//!   `mpiexec` itself in the HPC class.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrt;
pub mod class;
pub mod placement;

pub use chrt::chrt_spec;
pub use class::HplClass;
pub use placement::hpl_fork_placement;

use hpl_kernel::{KernelConfig, NodeBuilder};
use hpl_topology::Topology;

/// Convenience: a node builder pre-configured the HPL way — HPC class
/// registered between RT and CFS, and dynamic load balancing disabled for
/// every scheduling class.
pub fn hpl_node_builder(topo: Topology) -> NodeBuilder {
    NodeBuilder::new(topo)
        .with_config(KernelConfig::hpl())
        .with_hpc_class(Box::new(HplClass::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_kernel::{ClassKind, SchedClass};

    #[test]
    fn builder_registers_hpc_class() {
        let node = hpl_node_builder(Topology::power6_js22()).build();
        assert!(node.supports_policy(hpl_kernel::Policy::Hpc));
        assert_eq!(node.cfg.balance, hpl_kernel::BalanceMode::None);
    }

    #[test]
    fn class_kind_is_hpc() {
        assert_eq!(HplClass::new().kind(), ClassKind::Hpc);
    }
}
