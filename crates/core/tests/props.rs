//! Property tests for the HPL scheduling class: the class-priority
//! guarantee and the placement invariants, for arbitrary task mixes.

use hpl_core::{hpl_fork_placement, HplClass};
use hpl_kernel::class::class_of_policy;
use hpl_kernel::program::ScriptProgram;
use hpl_kernel::{
    ClassKind, KernelConfig, NodeBuilder, Pid, Policy, Step, Task, TaskSpec, TaskState,
};
use hpl_sim::SimDuration;
use hpl_topology::{CpuMask, Topology};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SpecGen {
    policy_sel: u8,
    work_us: u64,
    sleep_us: u64,
}

fn spec_strategy() -> impl Strategy<Value = SpecGen> {
    (0u8..4, 50u64..5000, 0u64..2000).prop_map(|(policy_sel, work_us, sleep_us)| SpecGen {
        policy_sel,
        work_us,
        sleep_us,
    })
}

fn build_spec(g: &SpecGen, idx: usize) -> TaskSpec {
    let policy = match g.policy_sel {
        0 => Policy::Normal { nice: 0 },
        1 => Policy::Normal { nice: 10 },
        2 => Policy::Fifo(40),
        _ => Policy::Hpc,
    };
    let mut steps = Vec::new();
    if g.sleep_us > 0 {
        steps.push(Step::Sleep(SimDuration::from_micros(g.sleep_us)));
    }
    steps.push(Step::Compute(SimDuration::from_micros(g.work_us)));
    TaskSpec::new(format!("t{idx}"), policy, ScriptProgram::boxed("w", steps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Class priority invariant: at every event of a random run, no CPU
    /// runs a CFS task while an HPC task waits runnable on that CPU.
    #[test]
    fn cfs_never_runs_over_runnable_hpc(specs in proptest::collection::vec(spec_strategy(), 2..10)) {
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_config(KernelConfig::hpl())
            .with_hpc_class(Box::new(HplClass::new()))
            .with_seed(7)
            .build();
        let pids: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, g)| node.spawn(build_spec(g, i)))
            .collect();
        let mut budget = 300_000u32;
        while pids.iter().any(|&p| node.tasks.get(p).state != TaskState::Dead) {
            prop_assert!(node.step(), "queue drained early");
            budget -= 1;
            prop_assert!(budget > 0, "run did not converge");
            for cpu in node.topo.all_cpus().iter() {
                let Some(curr) = node.current(cpu) else { continue };
                let curr_kind = class_of_policy(node.tasks.get(curr).policy);
                if curr_kind == ClassKind::Fair {
                    let hpc_waiting = node.tasks.iter().any(|t| {
                        t.policy == Policy::Hpc
                            && t.state == TaskState::Runnable
                            && t.cpu == cpu
                    });
                    prop_assert!(
                        !hpc_waiting,
                        "CFS task running on {cpu} while HPC tasks wait"
                    );
                }
            }
        }
    }

    /// Fork placement always returns a CPU inside the affinity mask (or
    /// the task's own CPU when the mask excludes everything on the
    /// machine), for any load vector.
    #[test]
    fn placement_respects_affinity(
        affinity_bits in 0u64..256,
        loads in proptest::collection::vec(0u32..5, 8..=8)
    ) {
        let topo = Topology::power6_js22();
        let mask = CpuMask::from_bits(affinity_bits & 0xFF);
        let task = Task::new(Pid(0), "t", Policy::Hpc, mask);
        let got = hpl_fork_placement(&topo, &task, &loads);
        if mask.is_empty() {
            prop_assert_eq!(got, task.cpu);
        } else {
            prop_assert!(mask.contains(got), "{got} outside {mask}");
        }
    }

    /// Placement is "greedy balanced": the chosen CPU's core never holds
    /// strictly more HPC tasks than some other core (cores first, the
    /// paper's rule).
    #[test]
    fn placement_prefers_least_loaded_core(
        loads in proptest::collection::vec(0u32..4, 8..=8)
    ) {
        let topo = Topology::power6_js22();
        let task = Task::new(Pid(0), "t", Policy::Hpc, CpuMask::first_n(8));
        let got = hpl_fork_placement(&topo, &task, &loads);
        let core_load = |core: u32| -> u32 {
            loads[(core * 2) as usize] + loads[(core * 2 + 1) as usize]
        };
        let chosen = core_load(topo.core_of(got));
        for core in 0..4 {
            prop_assert!(
                chosen <= core_load(core),
                "chose core with load {chosen}, but core {core} has {}",
                core_load(core)
            );
        }
    }

    /// Filling an empty machine with N <= cores tasks uses distinct cores;
    /// with N <= cpus tasks, distinct CPUs — for any machine shape.
    #[test]
    fn placement_spreads_maximally(
        sockets in 1u32..4,
        cores in 1u32..4,
        threads in 1u32..3
    ) {
        let topo = Topology::new("prop", sockets, cores, threads, vec![]);
        let total = topo.total_cpus();
        let task = Task::new(Pid(0), "t", Policy::Hpc, topo.all_cpus());
        let mut loads = vec![0u32; total as usize];
        let mut cpus = Vec::new();
        for _ in 0..total {
            let cpu = hpl_fork_placement(&topo, &task, &loads);
            loads[cpu.index()] += 1;
            cpus.push(cpu);
        }
        // All CPUs distinct.
        let set: std::collections::HashSet<_> = cpus.iter().collect();
        prop_assert_eq!(set.len(), total as usize);
        // The first `total_cores` placements hit distinct cores.
        let first_cores: std::collections::HashSet<_> = cpus
            .iter()
            .take(topo.total_cores() as usize)
            .map(|&c| topo.core_of(c))
            .collect();
        prop_assert_eq!(first_cores.len(), topo.total_cores() as usize);
    }

    /// Round-robin fairness within the class: two equal HPC tasks pinned
    /// to one CPU split it within one RR timeslice of each other.
    #[test]
    fn round_robin_is_fair(work_ms in 150u64..400) {
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_config(KernelConfig::hpl())
            .with_hpc_class(Box::new(HplClass::new()))
            .with_seed(3)
            .build();
        let pin = CpuMask::single(hpl_topology::CpuId(0));
        let mk = |name: &str| {
            TaskSpec::new(
                name,
                Policy::Hpc,
                ScriptProgram::boxed(
                    "w",
                    vec![Step::Compute(SimDuration::from_millis(work_ms))],
                ),
            )
            .with_affinity(pin)
        };
        let a = node.spawn(mk("a"));
        let b = node.spawn(mk("b"));
        node.run_for(SimDuration::from_millis(work_ms));
        let ra = node.tasks.get(a).total_runtime.as_secs_f64();
        let rb = node.tasks.get(b).total_runtime.as_secs_f64();
        let slice = KernelConfig::hpl().hpc_rr_timeslice.as_secs_f64();
        prop_assert!(
            (ra - rb).abs() <= slice + 1e-6,
            "round-robin imbalance: {ra} vs {rb}"
        );
        assert!(node.run_until_exit(a, 2_000_000_000).is_complete());
        assert!(node.run_until_exit(b, 2_000_000_000).is_complete());
    }
}
