//! Two-level scheduling sweep: batch allocation policies over CFS and
//! HPL kernels.
//!
//! Runs one seeded synthetic job stream through every (allocation
//! policy, kernel flavour) cell on the same co-simulated cluster shape:
//! FCFS, EASY backfilling and 2-jobs-per-node oversubscription, each
//! under the standard-Linux CFS kernel (noisy daemons contending with
//! ranks) and the HPL kernel (`SCHED_HPC` ranks above the noise). Per
//! cell it reports mean wait, mean/max bounded slowdown, utilization
//! and makespan from the engine's [`BatchReport`].
//!
//! Gated claims (non-smoke): the run is deterministic (same seed, same
//! report, bit for bit), no cell violates its policy's occupancy limit,
//! EASY does not raise mean wait over FCFS on the same kernel, and the
//! HPL kernel does not stretch the makespan over CFS under the same
//! policy.
//!
//! Writes `BENCH_batch.json` in the current directory.
//!
//! Usage: `batch [--quick|--smoke] [--out PATH]`

use hpl_batch::{
    AllocPolicy, BatchReport, BatchRun, BatchTrace, EasyBackfill, Fcfs, Oversubscribed,
};
use hpl_cluster::{Cluster, Interconnect, NetConfig};
use hpl_core::HplClass;
use hpl_kernel::noise::NoiseProfile;
use hpl_kernel::{KernelConfig, NodeBuilder};
use hpl_mpi::SchedMode;
use hpl_sim::{Rng, SimDuration};
use hpl_topology::Topology;

const CPUS_PER_NODE: u32 = 2;

fn build_cluster(nodes: u32, hpc: bool, seed: u64) -> Cluster {
    let mut cluster = Cluster::builder()
        .nodes_with(nodes as usize, move |i| {
            let kc = if hpc {
                KernelConfig::hpl()
            } else {
                KernelConfig::default()
            };
            let mut b = NodeBuilder::new(Topology::smp(CPUS_PER_NODE))
                .with_config(kc)
                .with_noise(NoiseProfile::standard(CPUS_PER_NODE))
                .with_seed(Rng::for_run(seed, i as u64).next_u64());
            if hpc {
                b = b.with_hpc_class(Box::new(HplClass::new()));
            }
            b.build()
        })
        .fabric(Interconnect::flat(nodes as usize, NetConfig::default()))
        .build();
    for i in 0..nodes as usize {
        cluster.node_mut(i).run_for(SimDuration::from_millis(300));
    }
    cluster
}

fn make_policy(name: &str) -> Box<dyn AllocPolicy> {
    match name {
        "fcfs" => Box::new(Fcfs),
        "easy" => Box::new(EasyBackfill::new()),
        "oversub" => Box::new(Oversubscribed),
        other => panic!("unknown policy {other}"),
    }
}

fn run_cell(trace: &BatchTrace, policy: &str, hpc: bool, nodes: u32, seed: u64) -> BatchReport {
    let mut cluster = build_cluster(nodes, hpc, seed);
    BatchRun::new(trace)
        .mode(if hpc { SchedMode::Hpc } else { SchedMode::Cfs })
        .run(&mut cluster, make_policy(policy).as_mut())
        .unwrap_or_else(|o| panic!("batch cell {policy}/{hpc} did not complete: {o:?}"))
}

struct Cell {
    policy: &'static str,
    kernel: &'static str,
    report: BatchReport,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_batch.json".into());

    let (nodes, njobs): (u32, u32) = if smoke {
        (2, 4)
    } else if quick {
        (4, 12)
    } else {
        (4, 24)
    };
    let flavour = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    let seed = 0xBA7C;
    let trace = BatchTrace::synthetic(seed, njobs, nodes);
    eprintln!("batch bench ({flavour}): {nodes} nodes, {njobs} jobs, seed {seed:#x}");

    let policies: &[&'static str] = if smoke {
        &["fcfs", "easy"]
    } else {
        &["fcfs", "easy", "oversub"]
    };
    let mut cells = Vec::new();
    for &policy in policies {
        for (kernel, hpc) in [("cfs", false), ("hpl", true)] {
            let report = run_cell(&trace, policy, hpc, nodes, seed);
            eprintln!(
                "{policy:>7}/{kernel}: wait {:>8.3}ms | slowdown {:>6.2} (max {:>6.2}) | \
                 util {:>5.3} | makespan {:>8.3}ms | depth {}",
                report.mean_wait.as_secs_f64() * 1e3,
                report.mean_bounded_slowdown,
                report.max_bounded_slowdown(),
                report.utilization,
                report.makespan.as_secs_f64() * 1e3,
                report.max_queue_depth
            );
            cells.push(Cell {
                policy,
                kernel,
                report,
            });
        }
    }

    // Claim 1: determinism — replaying one cell reproduces its report.
    let replay = run_cell(&trace, "easy", true, nodes, seed);
    let deterministic = cells
        .iter()
        .find(|c| c.policy == "easy" && c.kernel == "hpl")
        .map(|c| c.report == replay)
        .unwrap_or(false);

    // Claim 2: no cell exceeds its policy's occupancy limit.
    let occupancy_ok = cells.iter().all(|c| c.report.occupancy_violations == 0);

    // Claim 3: EASY does not raise mean wait over FCFS on either kernel.
    let wait_of = |policy: &str, kernel: &str| {
        cells
            .iter()
            .find(|c| c.policy == policy && c.kernel == kernel)
            .map(|c| c.report.mean_wait.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    let easy_ok = ["cfs", "hpl"].iter().all(|k| {
        let (f, e) = (wait_of("fcfs", k), wait_of("easy", k));
        e <= f * 1.05 + 1e-3
    });

    // Claim 4: on *dedicated* nodes the HPL kernel does not stretch the
    // makespan over CFS (shielded ranks finish no later). The claim is
    // deliberately not extended to the oversubscribed policy: with two
    // jobs per node the HPL class's run-to-block scheduling serialises
    // co-resident jobs where CFS timeslices them fairly, and HPL's
    // makespan is legitimately longer — that contrast is the point of
    // including the cell.
    let makespan_of = |policy: &str, kernel: &str| {
        cells
            .iter()
            .find(|c| c.policy == policy && c.kernel == kernel)
            .map(|c| c.report.makespan.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    let hpl_ok = ["fcfs", "easy"]
        .iter()
        .all(|p| makespan_of(p, "hpl") <= makespan_of(p, "cfs") * 1.05);

    eprintln!(
        "deterministic {deterministic} | occupancy_ok {occupancy_ok} | \
         easy_wait_ok {easy_ok} | hpl_makespan_ok {hpl_ok}"
    );

    let mut json = String::from("{\n  \"bench\": \"batch\",\n");
    json.push_str(&format!("  \"flavour\": \"{flavour}\",\n"));
    json.push_str(&format!(
        "  \"nodes\": {nodes},\n  \"jobs\": {njobs},\n  \"seed\": {seed},\n"
    ));
    json.push_str(&format!("  \"deterministic\": {deterministic},\n"));
    json.push_str(&format!("  \"occupancy_ok\": {occupancy_ok},\n"));
    json.push_str(&format!("  \"easy_wait_ok\": {easy_ok},\n"));
    json.push_str(&format!("  \"hpl_makespan_ok\": {hpl_ok},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"kernel\": \"{}\", \"mean_wait_ms\": {:.6}, \
             \"mean_bounded_slowdown\": {:.4}, \"max_bounded_slowdown\": {:.4}, \
             \"utilization\": {:.4}, \"makespan_ms\": {:.6}, \"max_queue_depth\": {}, \
             \"max_node_occupancy\": {}}}{}\n",
            c.policy,
            c.kernel,
            c.report.mean_wait.as_secs_f64() * 1e3,
            c.report.mean_bounded_slowdown,
            c.report.max_bounded_slowdown(),
            c.report.utilization,
            c.report.makespan.as_secs_f64() * 1e3,
            c.report.max_queue_depth,
            c.report.max_node_occupancy,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write bench json");
    eprintln!("wrote {out}");

    // Smoke runs gate only on "the sweep completes"; the comparative
    // claims need the full job stream to be meaningful.
    let claims_hold = deterministic && occupancy_ok && easy_ok && hpl_ok;
    if !smoke && !claims_hold {
        eprintln!("FAIL: batch sweep claims do not hold");
        std::process::exit(1);
    }
}
