//! Two-level scheduling sweep: batch allocation policies over CFS and
//! HPL kernels, plus a production-workload (SWF) policy-zoo sweep.
//!
//! Part 1 (synthetic): one seeded synthetic job stream through every
//! (allocation policy, kernel flavour) cell on the same co-simulated
//! cluster shape: FCFS, EASY backfilling and 2-jobs-per-node
//! oversubscription, each under the standard-Linux CFS kernel (noisy
//! daemons contending with ranks) and the HPL kernel (`SCHED_HPC`
//! ranks above the noise). Per cell it reports mean wait, mean/max
//! bounded slowdown, utilization and makespan from the engine's
//! [`BatchReport`].
//!
//! Part 2 (SWF): the vendored Parallel-Workloads-Archive-style fixture
//! (or `--trace FILE`) is parsed, mapped and replayed under the full
//! policy zoo — FCFS, EASY, conservative backfilling, multi-queue with
//! aging, and fair share — on the HPL kernel, plus one walltime-
//! enforcement cell under honest (undershooting) user estimates.
//!
//! Part 1 also sweeps the gang-rotation cells: `oversub` and `dfrs`
//! under the HPL kernel with `KernelConfig::gang_epoch` set, so
//! co-resident jobs rotate in synchronized epochs instead of
//! serialising behind the HPL class's run-to-block order.
//!
//! Part 3 (capacity): the mapped SWF slice is tiled into a
//! thousands-of-jobs workload and replayed on a 128-node cluster with
//! pooled window stepping — bit-exact replay pinned at the 512-job
//! sub-scale (twice), the 2048-job headline run once under a host
//! wall-clock ceiling. Skipped under `--smoke`; `--quick` runs only
//! the sub-scale pair.
//!
//! Gated claims (non-smoke): the synthetic run is deterministic, no
//! cell violates its policy's occupancy limit, EASY does not raise
//! mean wait over FCFS, the HPL kernel does not stretch the makespan
//! over CFS on dedicated nodes, DFRS keeps mean bounded slowdown at or
//! below EASY's, gang rotation closes the oversub×HPL makespan gap to
//! within 20% of CFS (the cell Claim 4 deliberately could not cover),
//! and the DFRS cell replays bit for bit with zero share-conservation
//! violations; and on the SWF sweep — bit-exact replay, zero
//! conservative reservation violations, fair-share user-slowdown
//! spread no wider than FCFS's, serial-vs-pooled bit equality on an
//! SWF cell, and walltime kills that fire without losing jobs or
//! leaking occupancy; and on the capacity cell — replay-pair bit
//! equality, clean occupancy and zero lost jobs at both scales, and
//! host wall ceilings (300 s per sub-scale run, 2400 s headline).
//!
//! Writes `BENCH_batch.json` in the current directory.
//!
//! Usage: `batch [--quick|--smoke|--swf-smoke|--dfrs-smoke] [--trace FILE] [--out PATH]`

use hpl_batch::{
    AllocPolicy, BatchReport, BatchRun, BatchTrace, ConservativeBackfill, Dfrs, EasyBackfill,
    FairShare, Fcfs, MultiQueue, Oversubscribed, SwfMap, SwfTrace, TraceTransform,
};
use hpl_cluster::{Cluster, CosimConfig, Interconnect, NetConfig};
use hpl_core::HplClass;
use hpl_kernel::noise::NoiseProfile;
use hpl_kernel::{KernelConfig, NodeBuilder};
use hpl_mpi::SchedMode;
use hpl_sim::{Rng, SimDuration};
use hpl_topology::Topology;

const CPUS_PER_NODE: u32 = 2;

/// Gang-rotation epoch for the gang cells (see
/// `KernelConfig::gang_epoch`).
const GANG_EPOCH: SimDuration = SimDuration::from_micros(500);

/// DFRS reallocation period.
const DFRS_PERIOD: SimDuration = SimDuration::from_millis(1);

/// The vendored 200-job SWF fixture (also used by the crate tests).
const SWF_FIXTURE: &str = include_str!("../../../batch/tests/data/sp2_sample.swf");

fn build_cluster(nodes: u32, hpc: bool, seed: u64, cosim: CosimConfig) -> Cluster {
    build_gang_cluster(nodes, hpc, seed, cosim, None)
}

fn build_gang_cluster(
    nodes: u32,
    hpc: bool,
    seed: u64,
    cosim: CosimConfig,
    gang: Option<SimDuration>,
) -> Cluster {
    let mut cluster = Cluster::builder()
        .nodes_with(nodes as usize, move |i| {
            let mut kc = if hpc {
                KernelConfig::hpl()
            } else {
                KernelConfig::default()
            };
            kc.gang_epoch = gang;
            let mut b = NodeBuilder::new(Topology::smp(CPUS_PER_NODE))
                .with_config(kc)
                .with_noise(NoiseProfile::standard(CPUS_PER_NODE))
                .with_seed(Rng::for_run(seed, i as u64).next_u64());
            if hpc {
                b = b.with_hpc_class(Box::new(HplClass::new()));
            }
            b.build()
        })
        .fabric(Interconnect::flat(nodes as usize, NetConfig::default()))
        .cosim(cosim)
        .build();
    for i in 0..nodes as usize {
        cluster.node_mut(i).run_for(SimDuration::from_millis(300));
    }
    cluster
}

fn make_policy(name: &str, seed: u64) -> Box<dyn AllocPolicy> {
    match name {
        "fcfs" => Box::new(Fcfs),
        "easy" => Box::new(EasyBackfill::new()),
        "oversub" => Box::new(Oversubscribed),
        "dfrs" => Box::new(Dfrs::new(DFRS_PERIOD, seed)),
        "conservative" => Box::new(ConservativeBackfill::new()),
        "multiq" => Box::new(MultiQueue::default()),
        "fairshare" => Box::new(FairShare::new()),
        other => panic!("unknown policy {other}"),
    }
}

fn run_cell(trace: &BatchTrace, policy: &str, hpc: bool, nodes: u32, seed: u64) -> BatchReport {
    run_gang_cell(trace, policy, hpc, nodes, seed, None).0
}

/// Run one cell, optionally with gang rotation, returning the report
/// plus the DFRS share-violation count (0 for other policies).
fn run_gang_cell(
    trace: &BatchTrace,
    policy: &str,
    hpc: bool,
    nodes: u32,
    seed: u64,
    gang: Option<SimDuration>,
) -> (BatchReport, u64) {
    let mut cluster = build_gang_cluster(nodes, hpc, seed, CosimConfig::serial(), gang);
    let mode = if hpc { SchedMode::Hpc } else { SchedMode::Cfs };
    if policy == "dfrs" {
        let mut p = Dfrs::new(DFRS_PERIOD, seed);
        let report = BatchRun::new(trace)
            .mode(mode)
            .run(&mut cluster, &mut p)
            .unwrap_or_else(|o| panic!("batch cell dfrs/{hpc} did not complete: {o:?}"));
        (report, p.share_violations())
    } else {
        let report = BatchRun::new(trace)
            .mode(mode)
            .run(&mut cluster, make_policy(policy, seed).as_mut())
            .unwrap_or_else(|o| panic!("batch cell {policy}/{hpc} did not complete: {o:?}"));
        (report, 0)
    }
}

struct Cell {
    policy: &'static str,
    kernel: &'static str,
    report: BatchReport,
}

/// Max − min of per-user mean bounded slowdown: the fairness spread a
/// fair-share policy should narrow relative to FCFS.
fn user_slowdown_spread(r: &BatchReport) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for u in &r.user_stats {
        lo = lo.min(u.mean_bounded_slowdown);
        hi = hi.max(u.mean_bounded_slowdown);
    }
    if r.user_stats.is_empty() {
        0.0
    } else {
        hi - lo
    }
}

fn cell_json(policy: &str, r: &BatchReport, last: bool) -> String {
    format!(
        "    {{\"policy\": \"{}\", \"mean_wait_ms\": {:.6}, \
         \"mean_bounded_slowdown\": {:.4}, \"max_bounded_slowdown\": {:.4}, \
         \"utilization\": {:.4}, \"makespan_ms\": {:.6}, \"max_queue_depth\": {}, \
         \"jobs_killed\": {}, \"user_slowdown_spread\": {:.4}}}{}\n",
        policy,
        r.mean_wait.as_secs_f64() * 1e3,
        r.mean_bounded_slowdown,
        r.max_bounded_slowdown(),
        r.utilization,
        r.makespan.as_secs_f64() * 1e3,
        r.max_queue_depth,
        r.jobs_killed,
        user_slowdown_spread(r),
        if last { "" } else { "," }
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let swf_smoke = args.iter().any(|a| a == "--swf-smoke");
    let dfrs_smoke = args.iter().any(|a| a == "--dfrs-smoke");
    let trace_file = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned());
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_batch.json".into());

    let seed = 0xBA7C;

    // ---------- DFRS smoke: gang cell twice → bit-exact → exit ----------
    if dfrs_smoke {
        let nodes = 4u32;
        let trace = BatchTrace::synthetic(seed, 12, nodes);
        eprintln!(
            "dfrs smoke: {nodes} nodes, {} jobs, gang epoch {:?}, period {:?}",
            trace.jobs.len(),
            GANG_EPOCH,
            DFRS_PERIOD
        );
        let (a, va) = run_gang_cell(&trace, "dfrs", true, nodes, seed, Some(GANG_EPOCH));
        let (b, _) = run_gang_cell(&trace, "dfrs", true, nodes, seed, Some(GANG_EPOCH));
        eprintln!(
            "         dfrs: wait {:>8.3}ms | slowdown {:>6.2} | util {:>5.3} | makespan {:>8.3}ms",
            a.mean_wait.as_secs_f64() * 1e3,
            a.mean_bounded_slowdown,
            a.utilization,
            a.makespan.as_secs_f64() * 1e3,
        );
        let mut ok = true;
        if a != b {
            eprintln!("FAIL: dfrs gang replay diverged");
            ok = false;
        }
        if va > 0 {
            eprintln!("FAIL: {va} share-conservation violations");
            ok = false;
        }
        if a.occupancy_violations > 0 || a.jobs_lost > 0 {
            eprintln!(
                "FAIL: occupancy_violations {} jobs_lost {}",
                a.occupancy_violations, a.jobs_lost
            );
            ok = false;
        }
        if a.utilization > 1.0 {
            eprintln!("FAIL: utilization {} exceeds capacity", a.utilization);
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        eprintln!("dfrs smoke: bit-exact replay, shares conserved, occupancy clean");
        return;
    }

    // ---------- SWF source ----------
    let swf_text = match &trace_file {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read --trace {path}: {e}")),
        None => SWF_FIXTURE.to_string(),
    };
    let swf = SwfTrace::from_text(&swf_text).unwrap_or_else(|e| panic!("SWF parse error: {e}"));
    let swf_source = trace_file.as_deref().unwrap_or("vendored sp2_sample.swf");

    // ---------- SWF smoke: parse → run the zoo → audit → exit ----------
    if swf_smoke {
        let nodes = 8u32;
        let take = 50usize;
        let (mapped, dropped) = swf.to_batch(&SwfMap::for_cluster(nodes).ns_per_sec(2_000.0));
        let trace = TraceTransform::new()
            .take(take)
            .arrival_scale(0.1)
            .apply(&mapped);
        eprintln!(
            "swf smoke: {} of {} jobs ({dropped} dropped in mapping), {nodes} nodes",
            trace.jobs.len(),
            swf.jobs.len()
        );
        let mut ok = true;
        for policy in ["conservative", "multiq", "fairshare"] {
            let report = match policy {
                "conservative" => {
                    let mut p = ConservativeBackfill::new();
                    let mut cluster = build_cluster(nodes, true, seed, CosimConfig::serial());
                    let r = BatchRun::new(&trace)
                        .run(&mut cluster, &mut p)
                        .expect("swf smoke cell completes");
                    if p.reservation_violations() > 0 {
                        eprintln!(
                            "FAIL: {} conservative reservation violations",
                            p.reservation_violations()
                        );
                        ok = false;
                    }
                    r
                }
                "fairshare" => {
                    let mut p = FairShare::new();
                    let mut cluster = build_cluster(nodes, true, seed, CosimConfig::serial());
                    let r = BatchRun::new(&trace)
                        .run(&mut cluster, &mut p)
                        .expect("swf smoke cell completes");
                    if p.share_violations() > 0 {
                        eprintln!("FAIL: {} fair-share order violations", p.share_violations());
                        ok = false;
                    }
                    r
                }
                _ => run_cell(&trace, policy, true, nodes, seed),
            };
            if report.occupancy_violations > 0 || report.jobs_lost > 0 {
                eprintln!(
                    "FAIL: {policy} occupancy_violations {} jobs_lost {}",
                    report.occupancy_violations, report.jobs_lost
                );
                ok = false;
            }
            eprintln!(
                "{policy:>13}: wait {:>8.3}ms | slowdown {:>6.2} | util {:>5.3} | makespan {:>8.3}ms",
                report.mean_wait.as_secs_f64() * 1e3,
                report.mean_bounded_slowdown,
                report.utilization,
                report.makespan.as_secs_f64() * 1e3,
            );
        }
        if !ok {
            eprintln!("FAIL: swf smoke invariants violated");
            std::process::exit(1);
        }
        eprintln!("swf smoke: zero invariant violations across the policy zoo");
        return;
    }

    // ---------- Part 1: synthetic sweep (unchanged cells) ----------
    let (nodes, njobs): (u32, u32) = if smoke {
        (2, 4)
    } else if quick {
        (4, 12)
    } else {
        (4, 24)
    };
    let flavour = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    let trace = BatchTrace::synthetic(seed, njobs, nodes);
    eprintln!("batch bench ({flavour}): {nodes} nodes, {njobs} jobs, seed {seed:#x}");

    let policies: &[&'static str] = if smoke {
        &["fcfs", "easy"]
    } else {
        &["fcfs", "easy", "oversub"]
    };
    let mut cells = Vec::new();
    for &policy in policies {
        for (kernel, hpc) in [("cfs", false), ("hpl", true)] {
            let report = run_cell(&trace, policy, hpc, nodes, seed);
            eprintln!(
                "{policy:>7}/{kernel}: wait {:>8.3}ms | slowdown {:>6.2} (max {:>6.2}) | \
                 util {:>5.3} | makespan {:>8.3}ms | depth {}",
                report.mean_wait.as_secs_f64() * 1e3,
                report.mean_bounded_slowdown,
                report.max_bounded_slowdown(),
                report.utilization,
                report.makespan.as_secs_f64() * 1e3,
                report.max_queue_depth
            );
            cells.push(Cell {
                policy,
                kernel,
                report,
            });
        }
    }

    // Gang-rotation cells: oversubscription and DFRS on the HPL kernel
    // with the gang epoch armed, so co-resident jobs rotate instead of
    // serialising.
    let mut dfrs_share_violations = 0u64;
    if !smoke {
        for policy in ["oversub", "dfrs"] {
            let (report, sv) = run_gang_cell(&trace, policy, true, nodes, seed, Some(GANG_EPOCH));
            eprintln!(
                "{policy:>7}/hpl-gang: wait {:>8.3}ms | slowdown {:>6.2} (max {:>6.2}) | \
                 util {:>5.3} | makespan {:>8.3}ms | depth {}",
                report.mean_wait.as_secs_f64() * 1e3,
                report.mean_bounded_slowdown,
                report.max_bounded_slowdown(),
                report.utilization,
                report.makespan.as_secs_f64() * 1e3,
                report.max_queue_depth
            );
            if policy == "dfrs" {
                dfrs_share_violations = sv;
            }
            cells.push(Cell {
                policy,
                kernel: "hpl-gang",
                report,
            });
        }
    }

    // Claim 1: determinism — replaying one cell reproduces its report.
    let replay = run_cell(&trace, "easy", true, nodes, seed);
    let deterministic = cells
        .iter()
        .find(|c| c.policy == "easy" && c.kernel == "hpl")
        .map(|c| c.report == replay)
        .unwrap_or(false);

    // Claim 2: no cell exceeds its policy's occupancy limit.
    let occupancy_ok = cells.iter().all(|c| c.report.occupancy_violations == 0);

    // Claim 3: EASY does not raise mean wait over FCFS on either kernel.
    let wait_of = |policy: &str, kernel: &str| {
        cells
            .iter()
            .find(|c| c.policy == policy && c.kernel == kernel)
            .map(|c| c.report.mean_wait.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    let easy_ok = ["cfs", "hpl"].iter().all(|k| {
        let (f, e) = (wait_of("fcfs", k), wait_of("easy", k));
        e <= f * 1.05 + 1e-3
    });

    // Claim 4: on *dedicated* nodes the HPL kernel does not stretch the
    // makespan over CFS (shielded ranks finish no later). The claim is
    // deliberately not extended to the oversubscribed policy: with two
    // jobs per node the HPL class's run-to-block scheduling serialises
    // co-resident jobs where CFS timeslices them fairly, and HPL's
    // makespan is legitimately longer — that contrast is the point of
    // including the cell.
    let makespan_of = |policy: &str, kernel: &str| {
        cells
            .iter()
            .find(|c| c.policy == policy && c.kernel == kernel)
            .map(|c| c.report.makespan.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    let hpl_ok = ["fcfs", "easy"]
        .iter()
        .all(|p| makespan_of(p, "hpl") <= makespan_of(p, "cfs") * 1.05);

    // Claim 5: DFRS under gang rotation keeps mean bounded slowdown at
    // or below EASY's on the HPL kernel — the fractional policy's
    // shorter waits must not be eaten by co-residency stretch.
    let slowdown_of = |policy: &str, kernel: &str| {
        cells
            .iter()
            .find(|c| c.policy == policy && c.kernel == kernel)
            .map(|c| c.report.mean_bounded_slowdown)
            .unwrap_or(f64::NAN)
    };
    let dfrs_slowdown_ok =
        smoke || slowdown_of("dfrs", "hpl-gang") <= slowdown_of("easy", "hpl") * 1.05;

    // Claim 6: gang rotation closes the oversub×HPL gap Claim 4 could
    // not cover: with synchronized epochs the HPL kernel's
    // 2-jobs-per-node makespan lands within 20% of CFS on the same
    // stream (without rotation the HPL class serialises co-residents).
    let oversub_gang_ok =
        smoke || makespan_of("oversub", "hpl-gang") <= makespan_of("oversub", "cfs") * 1.2;

    // Claim 7: the DFRS gang cell replays bit for bit and conserved
    // per-node shares at every reallocation.
    let dfrs_deterministic = smoke || {
        let (replay, _) = run_gang_cell(&trace, "dfrs", true, nodes, seed, Some(GANG_EPOCH));
        dfrs_share_violations == 0
            && cells
                .iter()
                .find(|c| c.policy == "dfrs" && c.kernel == "hpl-gang")
                .map(|c| c.report == replay)
                .unwrap_or(false)
    };

    eprintln!(
        "deterministic {deterministic} | occupancy_ok {occupancy_ok} | \
         easy_wait_ok {easy_ok} | hpl_makespan_ok {hpl_ok} | \
         dfrs_slowdown_ok {dfrs_slowdown_ok} | oversub_gang_ok {oversub_gang_ok} | \
         dfrs_deterministic {dfrs_deterministic}"
    );

    // ---------- Part 2: SWF policy-zoo sweep (HPL kernel) ----------
    let (swf_nodes, swf_take): (u32, usize) = if smoke {
        (4, 12)
    } else if quick {
        (8, 40)
    } else {
        (8, 80)
    };
    let swf_seed = seed ^ 0x5F;
    let (mapped, swf_dropped) = swf.to_batch(&SwfMap::for_cluster(swf_nodes).ns_per_sec(2_000.0));
    let swf_trace = TraceTransform::new()
        .take(swf_take)
        .arrival_scale(0.1)
        .apply(&mapped);
    eprintln!(
        "swf sweep: {} ({} of {} jobs, {swf_dropped} dropped), {swf_nodes} nodes",
        swf_source,
        swf_trace.jobs.len(),
        swf.jobs.len()
    );

    let zoo: &[&'static str] = &["fcfs", "easy", "conservative", "multiq", "fairshare"];
    let mut swf_cells: Vec<(&'static str, BatchReport)> = Vec::new();
    let mut conservative_violations = u64::MAX;
    for &policy in zoo {
        let report = if policy == "conservative" {
            let mut p = ConservativeBackfill::new();
            let mut cluster = build_cluster(swf_nodes, true, swf_seed, CosimConfig::serial());
            let r = BatchRun::new(&swf_trace)
                .run(&mut cluster, &mut p)
                .expect("swf cell completes");
            conservative_violations = p.reservation_violations();
            r
        } else {
            run_cell(&swf_trace, policy, true, swf_nodes, swf_seed)
        };
        eprintln!(
            "{policy:>13}/swf: wait {:>8.3}ms | slowdown {:>6.2} | util {:>5.3} | \
             makespan {:>8.3}ms | spread {:>6.2}",
            report.mean_wait.as_secs_f64() * 1e3,
            report.mean_bounded_slowdown,
            report.utilization,
            report.makespan.as_secs_f64() * 1e3,
            user_slowdown_spread(&report)
        );
        swf_cells.push((policy, report));
    }

    // SWF claim 1: bit-exact replay across reps.
    let rep = run_cell(&swf_trace, "fcfs", true, swf_nodes, swf_seed);
    let swf_deterministic = swf_cells
        .iter()
        .find(|(p, _)| *p == "fcfs")
        .map(|(_, r)| *r == rep)
        .unwrap_or(false);

    // SWF claim 2: conservative admissions never delayed an earlier
    // reservation.
    let swf_conservative_ok = conservative_violations == 0;

    // SWF claim 3: fair share does not widen the per-user slowdown
    // spread relative to FCFS on the same stream.
    let spread_of = |name: &str| {
        swf_cells
            .iter()
            .find(|(p, _)| *p == name)
            .map(|(_, r)| user_slowdown_spread(r))
            .unwrap_or(f64::NAN)
    };
    let swf_fairshare_ok = spread_of("fairshare") <= spread_of("fcfs") * 1.05 + 1e-6;

    // SWF claim 4: pooled windows reproduce the serial SWF report bit
    // for bit (the cross-event-loop equality on a production stream).
    let pooled = {
        let cosim = CosimConfig::parallel().with_threads(2).with_min_active(2);
        let mut cluster = build_cluster(swf_nodes, true, swf_seed, cosim);
        BatchRun::new(&swf_trace)
            .run(&mut cluster, &mut ConservativeBackfill::new())
            .expect("pooled swf cell completes")
    };
    let swf_pooled_equal = swf_cells
        .iter()
        .find(|(p, _)| *p == "conservative")
        .map(|(_, r)| *r == pooled)
        .unwrap_or(false);

    // SWF claim 5: under honest estimates with walltime enforcement,
    // kills fire, nothing is lost, and occupancy stays clean.
    let (honest_mapped, _) =
        swf.to_batch(&SwfMap::for_cluster(swf_nodes).ns_per_sec(2_000.0).honest());
    let honest_trace = TraceTransform::new()
        .take(swf_take)
        .arrival_scale(0.1)
        .apply(&honest_mapped);
    let walltime_report = {
        let mut cluster = build_cluster(swf_nodes, true, swf_seed, CosimConfig::serial());
        BatchRun::new(&honest_trace)
            .walltime(1.0)
            .run(&mut cluster, &mut Fcfs)
            .expect("walltime swf cell completes")
    };
    eprintln!(
        "     walltime/swf: {} of {} jobs killed | wait {:>8.3}ms | util {:>5.3}",
        walltime_report.jobs_killed,
        honest_trace.jobs.len(),
        walltime_report.mean_wait.as_secs_f64() * 1e3,
        walltime_report.utilization
    );
    let swf_walltime_ok = walltime_report.jobs_killed > 0
        && (walltime_report.jobs_killed as usize) < honest_trace.jobs.len()
        && walltime_report.jobs_lost == 0
        && walltime_report.occupancy_violations == 0;

    let swf_occupancy_ok = swf_cells.iter().all(|(_, r)| r.occupancy_violations == 0)
        && swf_cells.iter().all(|(_, r)| r.jobs_lost == 0);

    eprintln!(
        "swf_deterministic {swf_deterministic} | swf_conservative_ok {swf_conservative_ok} | \
         swf_fairshare_ok {swf_fairshare_ok} | swf_pooled_equal {swf_pooled_equal} | \
         swf_walltime_ok {swf_walltime_ok} | swf_occupancy_ok {swf_occupancy_ok}"
    );

    // ---------- Part 3: capacity cell (tiled SWF, 128 nodes) ----------
    // The headline scale point: the short SWF fragment is tiled end to
    // end into a capacity workload — thousands of jobs carrying the
    // *original trace's* arrival statistics — and replayed on a
    // 128-node cluster under EASY backfilling with pooled window
    // stepping. Gated on a bit-exact replay pair at the 512-job
    // sub-scale, clean occupancy and zero lost jobs at both scales;
    // host wall-clock per run is recorded (and sanity-capped) so
    // capacity regressions show up in the artifact, not just in CI
    // latency.
    let capacity = if smoke {
        None
    } else {
        let run_capacity = |cap_nodes: u32, cap_take: usize, cap_tile: u32| {
            let (cap_mapped, cap_dropped) =
                swf.to_batch(&SwfMap::for_cluster(cap_nodes).ns_per_sec(2_000.0));
            // Runtimes and arrivals are compressed by the same factor
            // on top of the usual 10x arrival squeeze: pure time
            // compression preserves offered load, utilization and
            // queue dynamics while cutting the event volume to
            // something a capacity cell can replay.
            let cap_trace = TraceTransform::new()
                .take(cap_take)
                .arrival_scale(0.1 * 0.2)
                .runtime_scale(0.2)
                .tile(cap_tile)
                .apply(&cap_mapped);
            eprintln!(
                "capacity cell: {} jobs ({cap_take} x {cap_tile} tiles, {cap_dropped} dropped), \
                 {cap_nodes} nodes, easy/hpl, pooled",
                cap_trace.jobs.len()
            );
            let cosim = CosimConfig::parallel().with_threads(4).with_min_active(2);
            let mut cluster = build_cluster(cap_nodes, true, seed ^ 0xCAB, cosim);
            let start = std::time::Instant::now();
            let report = BatchRun::new(&cap_trace)
                .run(&mut cluster, &mut EasyBackfill::new())
                .expect("capacity cell completes");
            (cap_trace.jobs.len(), report, start.elapsed().as_secs_f64())
        };
        // Bit-exact replay is pinned at the 512-job sub-scale (run
        // twice); the 2048-job headline cell runs ONCE under a wall
        // ceiling — a second full-scale replay would double a
        // many-minute cell to re-prove a determinism property the
        // sub-scale pair and the SWF serial-vs-pooled gate already
        // cover.
        let (det_jobs, det_a, det_wall_a) = run_capacity(64, 64, 8);
        let (_, det_b, det_wall_b) = run_capacity(64, 64, 8);
        eprintln!(
            "capacity replay pair ({det_jobs} jobs, 64 nodes): wall {det_wall_a:.2}s/{det_wall_b:.2}s | {}",
            if det_a == det_b { "bit-exact" } else { "DIVERGED" }
        );
        let headline = if quick {
            None
        } else {
            let (cap_jobs, cap_r, cap_wall) = run_capacity(128, 128, 16);
            eprintln!(
                "capacity headline: {cap_jobs} jobs | makespan {:>10.3}ms | util {:>5.3} | \
                 depth {} | wall {cap_wall:.2}s",
                cap_r.makespan.as_secs_f64() * 1e3,
                cap_r.utilization,
                cap_r.max_queue_depth,
            );
            Some((cap_jobs, cap_r, cap_wall))
        };
        Some((det_jobs, det_a, det_b, det_wall_a, det_wall_b, headline))
    };
    let clean = |r: &BatchReport| r.jobs_lost == 0 && r.occupancy_violations == 0;
    let capacity_ok = capacity.as_ref().is_none_or(|(_, da, db, dwa, dwb, head)| {
        da == db
            && clean(da)
            && da.max_queue_depth > 0
            && dwa.max(*dwb) < 300.0
            && head
                .as_ref()
                .is_none_or(|(_, r, w)| clean(r) && r.max_queue_depth > 0 && *w < 2400.0)
    });
    if capacity.is_some() {
        eprintln!("capacity_ok {capacity_ok}");
    }

    // ---------- JSON ----------
    let mut json = String::from("{\n  \"bench\": \"batch\",\n");
    json.push_str(&format!("  \"flavour\": \"{flavour}\",\n"));
    json.push_str(&format!(
        "  \"nodes\": {nodes},\n  \"jobs\": {njobs},\n  \"seed\": {seed},\n"
    ));
    json.push_str(&format!("  \"deterministic\": {deterministic},\n"));
    json.push_str(&format!("  \"occupancy_ok\": {occupancy_ok},\n"));
    json.push_str(&format!("  \"easy_wait_ok\": {easy_ok},\n"));
    json.push_str(&format!("  \"hpl_makespan_ok\": {hpl_ok},\n"));
    json.push_str(&format!("  \"dfrs_slowdown_ok\": {dfrs_slowdown_ok},\n"));
    json.push_str(&format!("  \"oversub_gang_ok\": {oversub_gang_ok},\n"));
    json.push_str(&format!(
        "  \"dfrs_deterministic\": {dfrs_deterministic},\n"
    ));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"kernel\": \"{}\", \"mean_wait_ms\": {:.6}, \
             \"mean_bounded_slowdown\": {:.4}, \"max_bounded_slowdown\": {:.4}, \
             \"utilization\": {:.4}, \"makespan_ms\": {:.6}, \"max_queue_depth\": {}, \
             \"max_node_occupancy\": {}}}{}\n",
            c.policy,
            c.kernel,
            c.report.mean_wait.as_secs_f64() * 1e3,
            c.report.mean_bounded_slowdown,
            c.report.max_bounded_slowdown(),
            c.report.utilization,
            c.report.makespan.as_secs_f64() * 1e3,
            c.report.max_queue_depth,
            c.report.max_node_occupancy,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"swf\": {\n");
    json.push_str(&format!("    \"source\": \"{swf_source}\",\n"));
    json.push_str(&format!(
        "    \"nodes\": {swf_nodes},\n    \"jobs\": {},\n    \"dropped\": {swf_dropped},\n",
        swf_trace.jobs.len()
    ));
    json.push_str(&format!("    \"deterministic\": {swf_deterministic},\n"));
    json.push_str(&format!(
        "    \"conservative_reservations_ok\": {swf_conservative_ok},\n"
    ));
    json.push_str(&format!(
        "    \"fairshare_spread_ok\": {swf_fairshare_ok},\n"
    ));
    json.push_str(&format!("    \"pooled_equal\": {swf_pooled_equal},\n"));
    json.push_str(&format!("    \"walltime_ok\": {swf_walltime_ok},\n"));
    json.push_str(&format!("    \"occupancy_ok\": {swf_occupancy_ok},\n"));
    json.push_str("    \"cells\": [\n");
    for (p, r) in &swf_cells {
        json.push_str(&cell_json(p, r, false));
    }
    json.push_str(&cell_json("walltime-fcfs", &walltime_report, true));
    json.push_str("    ]\n  }");
    if let Some((det_jobs, da, db, dwa, dwb, head)) = &capacity {
        json.push_str(&format!(
            ",\n  \"capacity\": {{\n    \"policy\": \"easy\",\n    \
             \"replay\": {{\"nodes\": 64, \"jobs\": {det_jobs}, \
             \"makespan_ms\": {:.6}, \"utilization\": {:.4}, \"max_queue_depth\": {}, \
             \"wall_s\": [{dwa:.3}, {dwb:.3}], \"bit_exact\": {}}}",
            da.makespan.as_secs_f64() * 1e3,
            da.utilization,
            da.max_queue_depth,
            da == db
        ));
        match head {
            Some((cap_jobs, r, w)) => json.push_str(&format!(
                ",\n    \"headline\": {{\"nodes\": 128, \"jobs\": {cap_jobs}, \
                 \"makespan_ms\": {:.6}, \"utilization\": {:.4}, \"max_queue_depth\": {}, \
                 \"wall_s\": {w:.3}}}",
                r.makespan.as_secs_f64() * 1e3,
                r.utilization,
                r.max_queue_depth,
            )),
            None => json.push_str(",\n    \"headline\": null"),
        }
        json.push_str(&format!(",\n    \"ok\": {capacity_ok}\n  }}"));
    }
    json.push_str("\n}\n");
    std::fs::write(&out, json).expect("write bench json");
    eprintln!("wrote {out}");

    // Smoke runs gate only on "the sweep completes"; the comparative
    // claims need the full job stream to be meaningful.
    let claims_hold = deterministic
        && occupancy_ok
        && easy_ok
        && hpl_ok
        && dfrs_slowdown_ok
        && oversub_gang_ok
        && dfrs_deterministic
        && swf_deterministic
        && swf_conservative_ok
        && swf_fairshare_ok
        && swf_pooled_equal
        && swf_walltime_ok
        && swf_occupancy_ok
        && capacity_ok;
    if !smoke && !claims_hold {
        eprintln!("FAIL: batch sweep claims do not hold");
        std::process::exit(1);
    }
}
