//! Fault/churn sweep: batch scheduling under deterministic node
//! crashes.
//!
//! Runs one seeded synthetic job stream through FCFS and EASY
//! backfilling on the HPL kernel while a [`FaultPlan`] crashes (and
//! later restarts) a rising number of nodes mid-stream. Jobs checkpoint
//! every iteration, so a crashed job is requeued and *resumes* from its
//! last committed checkpoint on the next allocation. Per cell it
//! reports the engine's [`BatchReport`] plus the crash/requeue counts.
//!
//! Gated claims (non-smoke):
//!
//! * determinism — replaying the crashiest FCFS cell reproduces its
//!   report bit for bit;
//! * no job is ever lost to a crash (`jobs_lost == 0` everywhere);
//! * no allocation round exceeds its policy's occupancy limit, crashes
//!   or not;
//! * churn is actually exercised (crashy cells requeue at least one
//!   job);
//! * bounded slowdown degrades gracefully: each crashy cell stays
//!   within `GRACE`x its policy's fault-free slowdown.
//!
//! Writes `BENCH_faults.json` in the current directory.
//!
//! Usage: `faults [--quick|--smoke] [--out PATH]`

use hpl_batch::{
    AllocPolicy, BatchReport, BatchRun, BatchTrace, CheckpointSpec, EasyBackfill, Fcfs,
};
use hpl_cluster::{Cluster, FaultPlan, Interconnect, NetConfig};
use hpl_core::HplClass;
use hpl_kernel::noise::NoiseProfile;
use hpl_kernel::{KernelConfig, NodeBuilder};
use hpl_mpi::SchedMode;
use hpl_sim::{Rng, SimDuration, SimTime};
use hpl_topology::Topology;

const CPUS_PER_NODE: u32 = 2;
const WARMUP_MS: u64 = 300;
/// Downtime between each crash and its restart.
const OUTAGE_MS: u64 = 15;
/// A crashy cell's mean bounded slowdown may not exceed `GRACE` times
/// the same policy's fault-free slowdown.
const GRACE: f64 = 3.0;

fn ms(v: u64) -> SimTime {
    SimTime::from_nanos(v * 1_000_000)
}

/// `crashes` crash/restart pairs, staggered through the job stream on
/// distinct non-zero nodes.
fn fault_plan(crashes: u32, nodes: u32) -> FaultPlan {
    let mut plan = FaultPlan::none().with_seed(0xFA);
    for k in 0..crashes {
        let node = (k % (nodes - 1)) as usize + 1;
        let down = WARMUP_MS + 80 + 140 * k as u64;
        plan = plan
            .crash(node, ms(down))
            .restart(node, ms(down + OUTAGE_MS));
    }
    plan
}

fn build_cluster(nodes: u32, seed: u64, plan: FaultPlan) -> Cluster {
    let mut cluster = Cluster::builder()
        .nodes_with(nodes as usize, move |i| {
            NodeBuilder::new(Topology::smp(CPUS_PER_NODE))
                .with_config(KernelConfig::hpl())
                .with_noise(NoiseProfile::standard(CPUS_PER_NODE))
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .with_hpc_class(Box::new(HplClass::new()))
                .build()
        })
        .fabric(Interconnect::flat(nodes as usize, NetConfig::default()))
        .faults(plan)
        .build();
    for i in 0..nodes as usize {
        cluster
            .node_mut(i)
            .run_for(SimDuration::from_millis(WARMUP_MS));
    }
    cluster
}

fn make_policy(name: &str) -> Box<dyn AllocPolicy> {
    match name {
        "fcfs" => Box::new(Fcfs),
        "easy" => Box::new(EasyBackfill::new()),
        other => panic!("unknown policy {other}"),
    }
}

fn run_cell(trace: &BatchTrace, policy: &str, crashes: u32, nodes: u32, seed: u64) -> BatchReport {
    let mut cluster = build_cluster(nodes, seed, fault_plan(crashes, nodes));
    BatchRun::new(trace)
        .mode(SchedMode::Hpc)
        .checkpoint(CheckpointSpec {
            every_iters: 1,
            cost: SimDuration::from_micros(150),
            restore: SimDuration::from_micros(400),
        })
        .run(&mut cluster, make_policy(policy).as_mut())
        .unwrap_or_else(|o| panic!("fault cell {policy}/x{crashes} did not complete: {o:?}"))
}

struct Cell {
    policy: &'static str,
    crashes: u32,
    report: BatchReport,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_faults.json".into());

    let (nodes, njobs, crash_counts): (u32, u32, &[u32]) = if smoke {
        (2, 4, &[0, 1])
    } else if quick {
        (4, 12, &[0, 1])
    } else {
        (4, 24, &[0, 1, 2])
    };
    let flavour = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    let seed = 0xBA7C;
    let trace = BatchTrace::synthetic(seed, njobs, nodes);
    eprintln!(
        "faults bench ({flavour}): {nodes} nodes, {njobs} jobs, crash sweep {crash_counts:?}, \
         seed {seed:#x}"
    );

    let mut cells = Vec::new();
    for &policy in &["fcfs", "easy"] {
        for &crashes in crash_counts {
            let report = run_cell(&trace, policy, crashes, nodes, seed);
            eprintln!(
                "{policy:>5}/x{crashes}: wait {:>8.3}ms | slowdown {:>6.2} | requeues {} | \
                 lost {} | makespan {:>8.3}ms",
                report.mean_wait.as_secs_f64() * 1e3,
                report.mean_bounded_slowdown,
                report.requeues,
                report.jobs_lost,
                report.makespan.as_secs_f64() * 1e3,
            );
            cells.push(Cell {
                policy,
                crashes,
                report,
            });
        }
    }

    let max_crashes = *crash_counts.last().expect("non-empty sweep");

    // Claim 1: determinism — replaying the crashiest FCFS cell
    // reproduces its report bit for bit.
    let replay = run_cell(&trace, "fcfs", max_crashes, nodes, seed);
    let deterministic = cells
        .iter()
        .find(|c| c.policy == "fcfs" && c.crashes == max_crashes)
        .map(|c| c.report == replay)
        .unwrap_or(false);

    // Claim 2: a crash may delay a job, never lose one.
    let lost_ok = cells
        .iter()
        .all(|c| c.report.jobs_lost == 0 && c.report.outcomes.len() == njobs as usize);

    // Claim 3: occupancy limits hold under churn.
    let occupancy_ok = cells.iter().all(|c| c.report.occupancy_violations == 0);

    // Claim 4: the crashes actually hit running jobs (otherwise the
    // sweep proves nothing).
    let churn_ok = cells
        .iter()
        .all(|c| c.crashes == 0 || c.report.requeues > 0);

    // Claim 5: graceful degradation — each crashy cell stays within
    // GRACE x its policy's fault-free slowdown.
    let slowdown_of = |policy: &str, crashes: u32| {
        cells
            .iter()
            .find(|c| c.policy == policy && c.crashes == crashes)
            .map(|c| c.report.mean_bounded_slowdown)
            .unwrap_or(f64::NAN)
    };
    let graceful = ["fcfs", "easy"].iter().all(|p| {
        let base = slowdown_of(p, 0);
        crash_counts
            .iter()
            .all(|&k| slowdown_of(p, k) <= base * GRACE + 1e-9)
    });

    eprintln!(
        "deterministic {deterministic} | lost_ok {lost_ok} | occupancy_ok {occupancy_ok} | \
         churn_ok {churn_ok} | graceful {graceful}"
    );

    let mut json = String::from("{\n  \"bench\": \"faults\",\n");
    json.push_str(&format!("  \"flavour\": \"{flavour}\",\n"));
    json.push_str(&format!(
        "  \"nodes\": {nodes},\n  \"jobs\": {njobs},\n  \"seed\": {seed},\n"
    ));
    json.push_str(&format!("  \"grace_factor\": {GRACE},\n"));
    json.push_str(&format!("  \"deterministic\": {deterministic},\n"));
    json.push_str(&format!("  \"lost_ok\": {lost_ok},\n"));
    json.push_str(&format!("  \"occupancy_ok\": {occupancy_ok},\n"));
    json.push_str(&format!("  \"churn_ok\": {churn_ok},\n"));
    json.push_str(&format!("  \"graceful\": {graceful},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"crashes\": {}, \"mean_wait_ms\": {:.6}, \
             \"mean_bounded_slowdown\": {:.4}, \"max_bounded_slowdown\": {:.4}, \
             \"utilization\": {:.4}, \"makespan_ms\": {:.6}, \"requeues\": {}, \
             \"jobs_lost\": {}, \"occupancy_violations\": {}}}{}\n",
            c.policy,
            c.crashes,
            c.report.mean_wait.as_secs_f64() * 1e3,
            c.report.mean_bounded_slowdown,
            c.report.max_bounded_slowdown(),
            c.report.utilization,
            c.report.makespan.as_secs_f64() * 1e3,
            c.report.requeues,
            c.report.jobs_lost,
            c.report.occupancy_violations,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write bench json");
    eprintln!("wrote {out}");

    // Smoke runs gate only on "the sweep completes"; the comparative
    // claims need the full job stream to be meaningful.
    let claims_hold = deterministic && lost_ok && occupancy_ok && churn_ok && graceful;
    if !smoke && !claims_hold {
        eprintln!("FAIL: fault sweep claims do not hold");
        std::process::exit(1);
    }
}
