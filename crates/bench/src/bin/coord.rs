//! Coordination-backend sweep: fractional CPU shares realized by the
//! weighted kernel gang slicer and by the user-space lease arbiter,
//! measured differentially on the same co-simulated cluster.
//!
//! Every skew claim is **differential** — a 750/250 split measured
//! against a 500/500 control of the very same cluster, jobs and seed —
//! because even the equal rotation realizes asymmetric allocations on
//! a real workload (spin phases, SMT co-run stretching, barrier
//! convoys). What the share table must demonstrably move is the
//! *relative* allocation and the completion order, not an absolute
//! 3:1 ledger split. The measured jobs are compute-bound with a 5 us
//! spin limit so progress tracks CPU share rather than rotation
//! latency (see `tests/coord.rs` for the full hygiene rationale).
//!
//! Gated claims (non-smoke):
//! * an all-equal explicit share table is byte-identical to the
//!   legacy unweighted rotation (same exec times, state fingerprint
//!   and event count) — the weighted path is a pure generalization;
//! * under the kernel backend, 750/250 speeds the heavy job up and
//!   slows the light job down relative to the control, and shifts the
//!   co-resident busy-time ledger towards the heavy gang by >= 1.5x;
//! * the user-space backend skews completion with **no** kernel gang
//!   support — the heavy job speeds up and the heavy-to-light
//!   completion gap widens over the control — and its arbiter visibly
//!   grants (leases, blocks and grants all non-zero). The light job's
//!   *absolute* completion is deliberately not gated: once the heavy
//!   job finishes early, the light job runs uncontended and can beat
//!   its own control;
//! * the cooperative backend's coordination tax is bounded: its
//!   skewed-run span stays within 2.5x of the kernel slicer's on the
//!   same stream (and is not mysteriously faster than 0.4x);
//! * both backends replay bit for bit across serial and 2-thread
//!   pooled window stepping.
//!
//! Writes `BENCH_coord.json` in the current directory.
//!
//! Usage: `coord [--quick|--smoke] [--out PATH]`

use hpl_cluster::{Cluster, CosimConfig, Interconnect, JobCoordinator, NetConfig, Placement};
use hpl_coord::{CoordBackend, CoordRuntime};
use hpl_core::hpl_node_builder;
use hpl_kernel::observe::{MetricsSink, ObserverId};
use hpl_kernel::KernelConfig;
use hpl_mpi::{JobSpec, MpiConfig, MpiOp, SchedMode};
use hpl_sim::{Rng, SimDuration};
use hpl_topology::Topology;

const RANKS_PER_NODE: u32 = 2;
const EPOCH: SimDuration = SimDuration::from_micros(500);
/// Gang ids are the jobs' id bases.
const HEAVY: u64 = 0;
const LIGHT: u64 = 10_000;

/// A compute-bound job: no cross-node synchronisation between bursts,
/// so a gang's rate of progress is exactly its CPU-share fraction. The
/// spin limit is cut to 5 us so waits block instead of busy-polling,
/// and the compute volume dwarfs the share-independent MPI_Init phase.
fn compute_job(base: u64, nodes: u32, bursts: u32) -> JobSpec {
    let cfg = MpiConfig {
        spin_limit: SimDuration::from_micros(5),
        ..MpiConfig::default()
    };
    JobSpec::new(
        nodes * RANKS_PER_NODE,
        JobSpec::repeat(
            bursts,
            &[MpiOp::Compute {
                mean: SimDuration::from_micros(600),
            }],
        ),
    )
    .with_nodes(nodes)
    .with_id_base(base)
    .with_config(cfg)
}

/// Quiet cluster with a metrics sink per node, warmed past boot
/// transients. `gang` selects whether the kernel itself has gang
/// scheduling configured (the user-space backend must work without).
fn cluster(seed: u64, nodes: u32, gang: bool, cosim: CosimConfig) -> (Cluster, Vec<ObserverId>) {
    let mut kcfg = KernelConfig::hpl();
    if gang {
        kcfg.gang_epoch = Some(EPOCH);
    }
    let mut cluster = Cluster::builder()
        .nodes_with(nodes as usize, move |i| {
            hpl_node_builder(Topology::smp(RANKS_PER_NODE))
                .with_config(kcfg.clone())
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .build()
        })
        .fabric(Interconnect::flat(nodes as usize, NetConfig::default()))
        .cosim(cosim)
        .build();
    let mut ids = Vec::new();
    for i in 0..nodes as usize {
        let node = cluster.node_mut(i);
        ids.push(node.attach_observer(Box::new(MetricsSink::new())));
        node.run_for(SimDuration::from_millis(50));
    }
    (cluster, ids)
}

/// Sum a gang's attributed busy time across every node's sink.
fn busy(cluster: &Cluster, ids: &[ObserverId], gang: u64) -> u64 {
    ids.iter()
        .enumerate()
        .map(|(i, &id)| {
            cluster
                .node(i)
                .observer::<MetricsSink>(id)
                .expect("metrics sink resolves")
                .metrics()
                .gang_busy_ns(gang)
        })
        .sum()
}

/// One measured coordinated run of two co-resident compute jobs under
/// `backend` with the given share split.
struct RunStats {
    exec_heavy: u64,
    exec_light: u64,
    busy_heavy: u64,
    busy_light: u64,
    leases: u64,
    blocks: u64,
    grants: u64,
    fingerprint: u64,
    events: u64,
}

fn coord_run(
    seed: u64,
    nodes: u32,
    bursts: u32,
    backend: CoordBackend,
    heavy_share: u32,
    light_share: u32,
    cosim: CosimConfig,
) -> RunStats {
    let gang = backend == CoordBackend::KernelWeighted;
    let (mut c, ids) = cluster(seed, nodes, gang, cosim);
    let mut rt = match backend {
        CoordBackend::KernelWeighted => CoordRuntime::kernel_weighted(EPOCH),
        CoordBackend::UserSpace => CoordRuntime::user_space(EPOCH),
    };
    rt.install(&mut c);
    let a = rt.launch(
        &mut c,
        &compute_job(HEAVY, nodes, bursts),
        SchedMode::Hpc,
        Placement::All,
    );
    let b = rt.launch(
        &mut c,
        &compute_job(LIGHT, nodes, bursts),
        SchedMode::Hpc,
        Placement::All,
    );
    for n in 0..nodes as usize {
        rt.set_share(&mut c, n, HEAVY, heavy_share);
        rt.set_share(&mut c, n, LIGHT, light_share);
    }
    let exec_heavy = c.run_to_completion(&a, 600_000_000).as_nanos();
    // Busy times snapshotted at the heavy job's completion, so the
    // ledger covers only genuinely co-resident time.
    let busy_heavy = busy(&c, &ids, HEAVY);
    let busy_light = busy(&c, &ids, LIGHT);
    let exec_light = c.run_to_completion(&b, 600_000_000).as_nanos();
    let stats = rt.total_stats();
    RunStats {
        exec_heavy,
        exec_light,
        busy_heavy,
        busy_light,
        leases: stats.leases,
        blocks: stats.blocks,
        grants: stats.grants,
        fingerprint: c.state_fingerprint(),
        events: c.events_processed(),
    }
}

/// The equal-identity leg: the same pair of jobs with *no* coordinator
/// at all vs an explicit all-equal share table — both must degenerate
/// to the identical legacy rotation.
fn legacy_run(seed: u64, nodes: u32, bursts: u32, explicit_shares: bool) -> (u64, u64, u64, u64) {
    let (mut c, _ids) = cluster(seed, nodes, true, CosimConfig::serial());
    let a = c.launch(
        &compute_job(HEAVY, nodes, bursts),
        SchedMode::Hpc,
        Placement::All,
    );
    let b = c.launch(
        &compute_job(LIGHT, nodes, bursts),
        SchedMode::Hpc,
        Placement::All,
    );
    if explicit_shares {
        for n in 0..nodes as usize {
            c.set_gang_share(n, HEAVY, 1000);
            c.set_gang_share(n, LIGHT, 1000);
        }
    }
    let ea = c.run_to_completion(&a, 600_000_000).as_nanos();
    let eb = c.run_to_completion(&b, 600_000_000).as_nanos();
    (ea, eb, c.state_fingerprint(), c.events_processed())
}

fn backend_name(b: CoordBackend) -> &'static str {
    match b {
        CoordBackend::KernelWeighted => "kernel",
        CoordBackend::UserSpace => "user",
    }
}

fn cell_json(backend: CoordBackend, split: &str, r: &RunStats, last: bool) -> String {
    format!(
        "    {{\"backend\": \"{}\", \"split\": \"{}\", \"exec_heavy_ms\": {:.6}, \
         \"exec_light_ms\": {:.6}, \"busy_heavy_ms\": {:.6}, \"busy_light_ms\": {:.6}, \
         \"leases\": {}, \"blocks\": {}, \"grants\": {}}}{}\n",
        backend_name(backend),
        split,
        r.exec_heavy as f64 / 1e6,
        r.exec_light as f64 / 1e6,
        r.busy_heavy as f64 / 1e6,
        r.busy_light as f64 / 1e6,
        r.leases,
        r.blocks,
        r.grants,
        if last { "" } else { "," }
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_coord.json".into());

    let seed = 0xC0D0u64;
    let (nodes, bursts): (u32, u32) = if smoke {
        (2, 8)
    } else if quick {
        (2, 24)
    } else {
        (4, 48)
    };
    let flavour = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    eprintln!(
        "coord bench ({flavour}): {nodes} nodes x {RANKS_PER_NODE} ranks, \
         {bursts} bursts, epoch {EPOCH:?}, seed {seed:#x}"
    );

    // ---------- equal-identity leg ----------
    let implicit = legacy_run(seed, nodes, bursts, false);
    let explicit = legacy_run(seed, nodes, bursts, true);
    let equal_identity_ok = implicit == explicit && implicit.0 > 0 && implicit.1 > 0;
    eprintln!(
        "equal-identity: implicit fp {:#018x} ev {} | explicit fp {:#018x} ev {} | {}",
        implicit.2,
        implicit.3,
        explicit.2,
        explicit.3,
        if equal_identity_ok {
            "IDENTICAL"
        } else {
            "DIVERGED"
        }
    );

    // ---------- control + skew cells, both backends ----------
    let backends = [CoordBackend::KernelWeighted, CoordBackend::UserSpace];
    let mut cells: Vec<(CoordBackend, &'static str, RunStats)> = Vec::new();
    for &backend in &backends {
        for (split, h, l) in [("500/500", 500u32, 500u32), ("750/250", 750, 250)] {
            let r = coord_run(seed, nodes, bursts, backend, h, l, CosimConfig::serial());
            eprintln!(
                "{:>6}/{split}: heavy {:>9.3}ms light {:>9.3}ms | busy {:>8.3}/{:<8.3}ms | \
                 leases {:>4} blocks {:>4} grants {:>4}",
                backend_name(backend),
                r.exec_heavy as f64 / 1e6,
                r.exec_light as f64 / 1e6,
                r.busy_heavy as f64 / 1e6,
                r.busy_light as f64 / 1e6,
                r.leases,
                r.blocks,
                r.grants
            );
            cells.push((backend, split, r));
        }
    }
    let cell = |b: CoordBackend, s: &str| {
        cells
            .iter()
            .find(|(cb, cs, _)| *cb == b && *cs == s)
            .map(|(_, _, r)| r)
            .expect("cell present")
    };

    // Claim: the kernel slicer moves completion the right way on both
    // sides of the split and shifts the co-resident busy ledger towards
    // the heavy gang by at least 1.5x relative to the control.
    let (keq, ksk) = (
        cell(CoordBackend::KernelWeighted, "500/500"),
        cell(CoordBackend::KernelWeighted, "750/250"),
    );
    let kernel_skew_ok = ksk.exec_heavy < keq.exec_heavy
        && ksk.exec_light > keq.exec_light
        && ksk.busy_heavy * keq.busy_light > keq.busy_heavy * ksk.busy_light * 3 / 2;

    // Claim: the user-space arbiter skews completion with no kernel
    // gang support, and visibly grants. The differential is the heavy
    // job's speedup plus a widened heavy-to-light completion gap — not
    // the light job's absolute completion, which can legitimately
    // *improve* under skew (the heavy job leaves early, and the light
    // job's uncontended tail runs without co-run stretch).
    let (ueq, usk) = (
        cell(CoordBackend::UserSpace, "500/500"),
        cell(CoordBackend::UserSpace, "750/250"),
    );
    let gap = |r: &RunStats| r.exec_light as i128 - r.exec_heavy as i128;
    let user_skew_ok = usk.exec_heavy < ueq.exec_heavy
        && gap(usk) > gap(ueq)
        && usk.leases > 0
        && usk.blocks > 0
        && usk.grants > 0;

    // Claim: the cooperative backend's coordination tax is bounded —
    // the skewed run's span (slower of the two jobs) stays within
    // [0.4x, 2.5x] of the kernel slicer's. Phase-granular yielding
    // tracks the slice schedule only approximately, so some stretch is
    // expected; an order-of-magnitude gap would mean the arbiter is
    // serialising (or not arbitrating at all).
    let span = |r: &RunStats| r.exec_heavy.max(r.exec_light) as f64;
    let band = span(usk) / span(ksk);
    let backend_band_ok = (0.4..=2.5).contains(&band);
    eprintln!("user/kernel span ratio on 750/250: {band:.3}");

    // Claim: both backends replay bit for bit under pooled stepping.
    let mut replay_ok = true;
    for &backend in &backends {
        let pooled = coord_run(
            seed,
            nodes,
            bursts,
            backend,
            750,
            250,
            CosimConfig::parallel().with_threads(2).with_min_active(2),
        );
        let serial = cell(backend, "750/250");
        let same = pooled.exec_heavy == serial.exec_heavy
            && pooled.exec_light == serial.exec_light
            && pooled.fingerprint == serial.fingerprint
            && pooled.events == serial.events;
        if !same {
            eprintln!(
                "FAIL: {} backend diverged under pooled stepping",
                backend_name(backend)
            );
            replay_ok = false;
        }
    }

    eprintln!(
        "equal_identity_ok {equal_identity_ok} | kernel_skew_ok {kernel_skew_ok} | \
         user_skew_ok {user_skew_ok} | backend_band_ok {backend_band_ok} | \
         replay_ok {replay_ok}"
    );

    // ---------- JSON ----------
    let mut json = String::from("{\n  \"bench\": \"coord\",\n");
    json.push_str(&format!("  \"flavour\": \"{flavour}\",\n"));
    json.push_str(&format!(
        "  \"nodes\": {nodes},\n  \"ranks_per_node\": {RANKS_PER_NODE},\n  \
         \"bursts\": {bursts},\n  \"epoch_us\": {},\n  \"seed\": {seed},\n",
        EPOCH.as_nanos() / 1_000
    ));
    json.push_str(&format!("  \"equal_identity_ok\": {equal_identity_ok},\n"));
    json.push_str(&format!("  \"kernel_skew_ok\": {kernel_skew_ok},\n"));
    json.push_str(&format!("  \"user_skew_ok\": {user_skew_ok},\n"));
    json.push_str(&format!(
        "  \"backend_band\": {band:.4},\n  \"backend_band_ok\": {backend_band_ok},\n"
    ));
    json.push_str(&format!("  \"replay_ok\": {replay_ok},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, (b, s, r)) in cells.iter().enumerate() {
        json.push_str(&cell_json(*b, s, r, i + 1 == cells.len()));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write bench json");
    eprintln!("wrote {out}");

    // Smoke gates only on "the sweep completes and replays"; the
    // comparative bands need the full burst volume to be meaningful.
    let claims_hold =
        equal_identity_ok && kernel_skew_ok && user_skew_ok && backend_band_ok && replay_ok;
    if smoke {
        if !(equal_identity_ok && replay_ok) {
            eprintln!("FAIL: coord smoke invariants violated");
            std::process::exit(1);
        }
    } else if !claims_hold {
        eprintln!("FAIL: coord sweep claims do not hold");
        std::process::exit(1);
    }
}
