//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--reps N] [--seed S] [--out DIR]
//!
//! experiments:
//!   fig1        preemption-delay timeline (Figure 1 mechanism)
//!   fig2        ep.A.8 time histogram, standard Linux (Figure 2)
//!   fig3a       time vs CPU migrations scatter (Figure 3a)
//!   fig3b       time vs context switches scatter (Figure 3b)
//!   fig4        ep.A.8 time histogram, RT scheduler (Figure 4)
//!   table1a     scheduler noise counters, standard Linux (Table Ia)
//!   table1b     scheduler noise counters, HPL (Table Ib)
//!   table2      execution times std vs HPL (Table II)
//!   compare     paper-vs-measured side-by-side (all three tables)
//!   ablate      scheduler-variant ablations (extension)
//!   noise-sweep injection sensitivity (extension)
//!   resonance   multi-node amplification (extension)
//!   energy      power-dimension accounting (extension)
//!   scaling     strong-scaling study (extension)
//!   topo-ablate migration cost vs cache sharing (extension)
//!   lwk         HPL vs idealised lightweight kernel (extension)
//!   coschedule  two jobs sharing one node (extension)
//!   uls         user-level scheduler comparison (extension)
//!   irq         interrupt-noise boundary study (extension)
//!   all         everything above, in order
//! ```
//!
//! The paper uses 1000 repetitions; the default here is 100 (pass
//! `--reps 1000` to match — statistics converge long before that).

use hpl_bench::experiments::{self, ExpOpts, Fig3Panel};

fn usage() -> ! {
    eprintln!(
        "usage: repro <fig1|fig2|...|table2|ablate|noise-sweep|resonance|energy|scaling|all> \
         [--reps N] [--seed S] [--out DIR]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut opts = ExpOpts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                opts.reps = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                opts.out_dir = Some(args.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            name if which.is_none() && !name.starts_with('-') => {
                which = Some(name.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    let which = which.unwrap_or_else(|| usage());
    if opts.reps == 0 {
        eprintln!("error: --reps must be at least 1");
        std::process::exit(2);
    }

    let run = |name: &str, opts: &ExpOpts| -> String {
        let start = std::time::Instant::now();
        let body = match name {
            "fig1" => experiments::fig1(opts),
            "fig2" => experiments::fig2(opts),
            "fig3a" => experiments::fig3(opts, Fig3Panel::Migrations),
            "fig3b" => experiments::fig3(opts, Fig3Panel::Switches),
            "fig4" => experiments::fig4(opts),
            "table1a" => experiments::table1(opts, false),
            "table1b" => experiments::table1(opts, true),
            "table2" => experiments::table2(opts),
            "compare" => experiments::compare(opts),
            "ablate" => experiments::ablate(opts),
            "noise-sweep" => experiments::noise_sweep(opts),
            "resonance" => experiments::resonance(opts),
            "energy" => experiments::energy(opts),
            "scaling" => experiments::scaling(opts),
            "topo-ablate" => experiments::topo_ablate(opts),
            "lwk" => experiments::lwk(opts),
            "coschedule" => experiments::coschedule(opts),
            "uls" => experiments::uls(opts),
            "irq" => experiments::irq(opts),
            _ => usage(),
        };
        format!(
            "{body}\n[{name}: {:.1}s wall, reps={}, seed={}]\n",
            start.elapsed().as_secs_f64(),
            opts.reps,
            opts.seed
        )
    };

    if which == "all" {
        for name in [
            "fig1",
            "fig2",
            "fig3a",
            "fig3b",
            "fig4",
            "table1a",
            "table1b",
            "table2",
            "compare",
            "ablate",
            "noise-sweep",
            "resonance",
            "energy",
            "scaling",
            "topo-ablate",
            "lwk",
            "coschedule",
            "uls",
            "irq",
        ] {
            println!("{:=^78}", format!(" {name} "));
            println!("{}", run(name, &opts));
        }
    } else {
        println!("{}", run(&which, &opts));
    }
}
