//! Quick calibration probe: ep.A.8 and cg.A.8 under Std/RT/HPL.
use hpl_bench::report::summary_line;
use hpl_bench::{run_many, RunConfig, Scheduler};
use hpl_mpi::SchedMode;
use hpl_workloads::{nas_job, NasBenchmark, NasClass};

fn main() {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let bench: String = std::env::args().nth(2).unwrap_or_else(|| "ep".into());
    let b = match bench.as_str() {
        "cg" => NasBenchmark::Cg,
        "ep" => NasBenchmark::Ep,
        "ft" => NasBenchmark::Ft,
        "is" => NasBenchmark::Is,
        "lu" => NasBenchmark::Lu,
        _ => NasBenchmark::Mg,
    };
    for (name, sched, mode) in [
        ("std-cfs", Scheduler::StandardLinux, SchedMode::Cfs),
        (
            "std-rt",
            Scheduler::StandardLinux,
            SchedMode::Rt { prio: 50 },
        ),
        ("hpl", Scheduler::Hpl, SchedMode::Hpc),
    ] {
        let mut cfg = RunConfig::new(
            format!("{bench}.A.8-{name}"),
            nas_job(b, NasClass::A, 8),
            mode,
            sched,
        )
        .with_reps(reps);
        if std::env::args().nth(3).as_deref() == Some("quiet") {
            cfg = cfg.with_noise(hpl_bench::NoiseKind::Quiet);
        }
        let t0 = std::time::Instant::now();
        let table = run_many(&cfg);
        let wall = t0.elapsed().as_secs_f64();
        println!("=== {bench}.A.8 {name} ({reps} reps, {wall:.1}s wall) ===");
        println!("{}", summary_line("time (s)", &table.time_summary()));
        println!("{}", summary_line("migrations", &table.migration_summary()));
        println!("{}", summary_line("ctx switches", &table.switch_summary()));
        println!(
            "corr(time,mig)={:.3} corr(time,cs)={:.3}",
            table.time_migration_correlation(),
            table.time_switch_correlation()
        );
    }
}
