//! Offline event-loop performance regression harness.
//!
//! Measures simulated-events-per-second for the event-loop fast path
//! (timer-wheel ticks + quiescence fast-forward) against the reference
//! heap-of-everything path, over three workload shapes:
//!
//! * `idle-daemons` — an unloaded node running only its daemon
//!   population; almost every event is a periodic tick, so this is the
//!   fast path's bread and butter.
//! * `idle-quiet` — an unloaded node with no daemons at all (the LWK /
//!   CNK regime the paper benchmarks against): the event stream is pure
//!   ticks and fast-forward batches entire windows arithmetically.
//! * `hpl-tickless` — an HPC job on the HPL + tickless kernel; lone-HPC
//!   quiescence lets whole compute phases fast-forward.
//! * `std-cfs-busy` — a CFS job on standard Linux with balancing on;
//!   the fast path's worst case, here to prove no regression.
//!
//! Both paths count *simulated* events identically (a batched tick is
//! still an event), so the speedup is pure wall-clock. Each sweep also
//! cross-checks the final state fingerprint between the two paths —
//! the speedup only counts if the results are byte-identical.
//!
//! Writes `BENCH_eventloop.json` in the current directory. No criterion,
//! no network: plain `Instant` timing, hand-rolled JSON.
//!
//! Usage: `eventloop [--quick|--smoke] [--out PATH]`
//!
//! `--smoke` is for CI gates: a seconds-long run that still exercises
//! every sweep and the fast-vs-reference fingerprint cross-check, but
//! whose timings are too short to mean anything.

use hpl_core::HplClass;
use hpl_kernel::noise::NoiseProfile;
use hpl_kernel::{KernelConfig, Node, NodeBuilder};
use hpl_mpi::{launch, JobSpec, MpiOp, SchedMode};
use hpl_sim::SimDuration;
use hpl_topology::Topology;
use std::time::Instant;

fn build(mut kc: KernelConfig, hpc_class: bool, quiet: bool, fast: bool, seed: u64) -> Node {
    kc.fast_event_loop = fast;
    let noise = if quiet {
        NoiseProfile::quiet()
    } else {
        NoiseProfile::standard(8)
    };
    let mut b = NodeBuilder::new(Topology::power6_js22())
        .with_config(kc)
        .with_noise(noise)
        .with_seed(seed);
    if hpc_class {
        b = b.with_hpc_class(Box::new(HplClass::new()));
    }
    b.build()
}

fn job(iters: u32) -> JobSpec {
    JobSpec::new(
        8,
        JobSpec::repeat(
            iters,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(4),
                },
                MpiOp::Barrier,
            ],
        ),
    )
}

/// One timed run: (simulated events, wall seconds, state fingerprint).
struct Obs {
    events: u64,
    wall_s: f64,
    fingerprint: u64,
}

fn idle_run(fast: bool, quiet: bool, millis: u64, seed: u64) -> Obs {
    let mut node = build(KernelConfig::default(), false, quiet, fast, seed);
    let t0 = Instant::now();
    node.run_for(SimDuration::from_millis(millis));
    Obs {
        events: node.events_processed(),
        wall_s: t0.elapsed().as_secs_f64(),
        fingerprint: node.state_fingerprint(),
    }
}

fn job_run(
    kc: KernelConfig,
    hpc_class: bool,
    quiet: bool,
    mode: SchedMode,
    fast: bool,
    reps: u64,
    iters: u32,
) -> Obs {
    let (mut events, mut fp) = (0u64, 0u64);
    let t0 = Instant::now();
    for rep in 0..reps {
        let mut node = build(kc.clone(), hpc_class, quiet, fast, 0x5EED ^ rep);
        node.run_for(SimDuration::from_millis(300));
        let handle = launch(&mut node, &job(iters), mode);
        handle.run_to_completion(&mut node, 4_000_000_000);
        events += node.events_processed();
        fp ^= node.state_fingerprint().rotate_left((rep % 64) as u32);
    }
    Obs {
        events,
        wall_s: t0.elapsed().as_secs_f64(),
        fingerprint: fp,
    }
}

struct Sweep {
    name: &'static str,
    /// Whether the workload is quiescence-dominated, i.e. actually
    /// bound by the event loop rather than by dispatch work that is
    /// identical on both paths. The headline speedup averages these;
    /// the rest are no-regression guards.
    loop_bound: bool,
    fast: Obs,
    reference: Obs,
}

impl Sweep {
    fn speedup(&self) -> f64 {
        self.reference.wall_s / self.fast.wall_s
    }
}

/// Run a measurement twice and keep the best wall time (standard
/// min-of-N to shed scheduler/allocator noise); the simulated side must
/// be bit-identical across runs or the measurement itself is broken.
fn best(f: impl Fn() -> Obs) -> Obs {
    let a = f();
    let b = f();
    assert_eq!(a.events, b.events, "non-deterministic event count");
    assert_eq!(a.fingerprint, b.fingerprint, "non-deterministic state");
    Obs {
        events: a.events,
        wall_s: a.wall_s.min(b.wall_s),
        fingerprint: a.fingerprint,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_eventloop.json".into());

    let (idle_ms, reps, iters) = if smoke {
        (2_000, 1, 30)
    } else if quick {
        (40_000, 2, 120)
    } else {
        (120_000, 4, 300)
    };
    let tickless = || {
        let mut kc = KernelConfig::hpl();
        kc.tickless_single_hpc = true;
        kc
    };

    let flavour = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    eprintln!("eventloop bench ({flavour}): idle {idle_ms} ms, {reps} reps x {iters} iters");

    let sweeps = [
        Sweep {
            name: "idle-daemons",
            loop_bound: true,
            fast: best(|| idle_run(true, false, idle_ms, 42)),
            reference: best(|| idle_run(false, false, idle_ms, 42)),
        },
        Sweep {
            name: "idle-quiet",
            loop_bound: true,
            fast: best(|| idle_run(true, true, idle_ms, 42)),
            reference: best(|| idle_run(false, true, idle_ms, 42)),
        },
        Sweep {
            name: "lwk-quiet",
            loop_bound: false,
            fast: best(|| job_run(tickless(), true, true, SchedMode::Hpc, true, reps, iters)),
            reference: best(|| job_run(tickless(), true, true, SchedMode::Hpc, false, reps, iters)),
        },
        Sweep {
            name: "hpl-tickless",
            loop_bound: false,
            fast: best(|| job_run(tickless(), true, false, SchedMode::Hpc, true, reps, iters)),
            reference: best(|| {
                job_run(tickless(), true, false, SchedMode::Hpc, false, reps, iters)
            }),
        },
        Sweep {
            name: "std-cfs-busy",
            loop_bound: false,
            fast: best(|| {
                job_run(
                    KernelConfig::default(),
                    false,
                    false,
                    SchedMode::Cfs,
                    true,
                    reps,
                    iters,
                )
            }),
            reference: best(|| {
                job_run(
                    KernelConfig::default(),
                    false,
                    false,
                    SchedMode::Cfs,
                    false,
                    reps,
                    iters,
                )
            }),
        },
    ];

    let mut ok = true;
    for s in &sweeps {
        if s.fast.fingerprint != s.reference.fingerprint || s.fast.events != s.reference.events {
            eprintln!(
                "FAIL {}: fast path diverged (events {} vs {}, fp {:016x} vs {:016x})",
                s.name,
                s.fast.events,
                s.reference.events,
                s.fast.fingerprint,
                s.reference.fingerprint
            );
            ok = false;
        }
        eprintln!(
            "{:>14}: {:>12} events | fast {:>8.3}s ({:>11.0} ev/s) | ref {:>8.3}s ({:>11.0} ev/s) | speedup {:.2}x",
            s.name,
            s.fast.events,
            s.fast.wall_s,
            s.fast.events as f64 / s.fast.wall_s,
            s.reference.wall_s,
            s.reference.events as f64 / s.reference.wall_s,
            s.speedup()
        );
    }
    let geomean = |pick: &dyn Fn(&Sweep) -> bool| {
        let picked: Vec<f64> = sweeps
            .iter()
            .filter(|s| pick(s))
            .map(|s| s.speedup().ln())
            .collect();
        (picked.iter().sum::<f64>() / picked.len() as f64).exp()
    };
    // Headline: the loop-bound sweeps, where events/sec measures the
    // event loop itself. The busy sweeps spend their wall time in
    // dispatch work identical on both paths; they guard regressions.
    let headline = geomean(&|s: &Sweep| s.loop_bound);
    let overall = geomean(&|_| true);
    eprintln!(
        "loop-bound speedup: {headline:.2}x | all-sweep geomean: {overall:.2}x | identical results: {ok}"
    );

    let mut json = String::from("{\n  \"bench\": \"eventloop\",\n");
    json.push_str(&format!("  \"flavour\": \"{flavour}\",\n"));
    json.push_str(&format!("  \"identical_results\": {ok},\n"));
    json.push_str(&format!("  \"loop_bound_speedup\": {headline:.4},\n"));
    json.push_str(&format!("  \"geomean_speedup_all\": {overall:.4},\n"));
    json.push_str("  \"sweeps\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"loop_bound\": {}, \"events\": {}, \"fast_wall_s\": {:.6}, \"ref_wall_s\": {:.6}, \"fast_events_per_s\": {:.0}, \"ref_events_per_s\": {:.0}, \"speedup\": {:.4}}}{}\n",
            s.name,
            s.loop_bound,
            s.fast.events,
            s.fast.wall_s,
            s.reference.wall_s,
            s.fast.events as f64 / s.fast.wall_s,
            s.reference.events as f64 / s.reference.wall_s,
            s.speedup(),
            if i + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write bench json");
    eprintln!("wrote {out}");
    if !ok {
        std::process::exit(1);
    }
}
