//! Mechanistic cluster amplification sweep (the Petrini curve).
//!
//! Co-simulates N kernel nodes under one lockstep driver, running the
//! same bulk-synchronous job (compute + Allreduce per iteration) under
//! the standard-Linux CFS kernel and the HPL kernel, with per-node OS
//! noise. For each node count the *noise amplification* is the noisy
//! execution time over the noise-free (quiet daemons) execution time on
//! the same cluster — network and launch overheads cancel, leaving the
//! pure max-over-nodes resonance effect the paper's §II describes.
//!
//! Each mechanistic curve is cross-checked against the analytic
//! [`ResonanceModel`] built from per-phase durations measured on a
//! single node: the analytic slowdown must move in the same direction as
//! the mechanistic one at every node count (CFS climbs, HPL stays
//! near-flat).
//!
//! Writes `BENCH_cluster.json` in the current directory.
//!
//! Usage: `cluster [--quick|--smoke] [--out PATH]`

use hpl_cluster::{Cluster, EmpiricalDist, Interconnect, NetConfig, ResonanceModel};
use hpl_core::HplClass;
use hpl_kernel::noise::NoiseProfile;
use hpl_kernel::{KernelConfig, NodeBuilder, TaskState};
use hpl_mpi::{launch, JobSpec, MpiOp, SchedMode};
use hpl_sim::{Rng, SimDuration};
use hpl_topology::Topology;

const RANKS_PER_NODE: u32 = 8;

fn job(nodes: u32, iters: u32) -> JobSpec {
    JobSpec::new(
        nodes * RANKS_PER_NODE,
        JobSpec::repeat(
            iters,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(3),
                },
                MpiOp::Allreduce { bytes: 64 },
            ],
        ),
    )
    .with_nodes(nodes)
}

fn build_cluster(nodes: u32, hpc: bool, noisy: bool, seed: u64) -> Cluster {
    let built = (0..nodes)
        .map(|i| {
            let kc = if hpc {
                KernelConfig::hpl()
            } else {
                KernelConfig::default()
            };
            let noise = if noisy {
                NoiseProfile::standard(RANKS_PER_NODE)
            } else {
                NoiseProfile::quiet()
            };
            let mut b = NodeBuilder::new(Topology::power6_js22())
                .with_config(kc)
                .with_noise(noise)
                .with_seed(Rng::for_run(seed, i as u64).next_u64());
            if hpc {
                b = b.with_hpc_class(Box::new(HplClass::new()));
            }
            b.build()
        })
        .collect();
    Cluster::new(
        built,
        Interconnect::flat(nodes as usize, NetConfig::default()),
    )
}

/// Mean execution time (seconds) of the job on an N-node cluster.
fn cluster_exec(nodes: u32, hpc: bool, noisy: bool, iters: u32, reps: u32, seed: u64) -> f64 {
    let mode = if hpc { SchedMode::Hpc } else { SchedMode::Cfs };
    let mut total = 0.0;
    for rep in 0..reps {
        let mut cluster = build_cluster(nodes, hpc, noisy, seed ^ (rep as u64) << 16);
        // Warm each node's daemon population up independently — legal
        // before launch_job, when no cross-node traffic can exist yet.
        for i in 0..nodes as usize {
            cluster.node_mut(i).run_for(SimDuration::from_millis(300));
        }
        let handle = cluster.launch_job(&job(nodes, iters), mode);
        let exec = cluster.run_to_completion(&handle, 400_000_000 * nodes as u64);
        total += exec.as_secs_f64();
    }
    total / reps as f64
}

/// Per-phase durations on one node, by watching the job barrier
/// generation tick over — the input for the analytic model.
fn measure_phases(hpc: bool, iters: u32, reps: u32, seed: u64) -> Vec<f64> {
    let mode = if hpc { SchedMode::Hpc } else { SchedMode::Cfs };
    let mut samples = Vec::new();
    for rep in 0..reps {
        let mut cluster = build_cluster(1, hpc, true, seed ^ (rep as u64) << 16);
        let node = cluster.node_mut(0);
        node.run_for(SimDuration::from_millis(300));
        let job = job(1, iters);
        let barrier = job.barrier_id();
        let handle = launch(node, &job, mode);
        let mut last_gen = node.sync.barrier_generation(barrier);
        let mut last_t = node.now();
        while node.tasks.get(handle.perf_pid).state != TaskState::Dead {
            assert!(node.step(), "single-node probe deadlocked");
            let gen = node.sync.barrier_generation(barrier);
            if gen > last_gen {
                // Skip the init barrier (generation 0 -> 1): it brackets
                // launch, not a compute phase.
                if last_gen > 0 {
                    samples.push(node.now().since(last_t).as_secs_f64());
                }
                last_gen = gen;
                last_t = node.now();
            }
        }
    }
    samples
}

struct Point {
    nodes: u32,
    noisy_s: f64,
    quiet_s: f64,
    mech_slowdown: f64,
    analytic_slowdown: f64,
}

struct Curve {
    mode: &'static str,
    points: Vec<Point>,
    direction_ok: bool,
}

/// Mechanistic and analytic curves must agree in *direction* at every
/// step: where the analytic slowdown climbs by more than `flat`, the
/// mechanistic one must not fall by more than `tol`, and vice versa.
fn directions_agree(points: &[Point]) -> bool {
    let flat = 0.02;
    let tol = 0.05;
    points.windows(2).all(|w| {
        let da = w[1].analytic_slowdown - w[0].analytic_slowdown;
        let dm = w[1].mech_slowdown - w[0].mech_slowdown;
        if da > flat {
            dm > -tol
        } else if da < -flat {
            dm < tol
        } else {
            true
        }
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_cluster.json".into());

    let (node_counts, iters, reps): (&[u32], u32, u32) = if smoke {
        (&[1, 2, 4], 8, 1)
    } else if quick {
        (&[1, 2, 4, 8], 20, 2)
    } else {
        (&[1, 2, 4, 8, 16], 30, 3)
    };
    let flavour = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    eprintln!("cluster bench ({flavour}): nodes {node_counts:?}, {iters} iters x {reps} reps");

    let mut curves = Vec::new();
    for (mode, hpc) in [("cfs", false), ("hpc", true)] {
        let phases = measure_phases(hpc, iters, reps.max(2), 0xC1A5);
        let model = ResonanceModel::new(
            EmpiricalDist::try_new(phases).expect("phase probe produced samples"),
            iters,
        );
        let ideal = model.ideal_time();
        let mut points = Vec::new();
        for &n in node_counts {
            let noisy_s = cluster_exec(n, hpc, true, iters, reps, 0xBA5E);
            let quiet_s = cluster_exec(n, hpc, false, iters, reps, 0xBA5E);
            let mech_slowdown = noisy_s / quiet_s;
            let analytic_slowdown = model.expected_time_analytic(n) / ideal;
            eprintln!(
                "{mode:>4} n={n:>2}: noisy {noisy_s:>8.4}s | quiet {quiet_s:>8.4}s | \
                 slowdown {mech_slowdown:>6.3} | analytic {analytic_slowdown:>6.3}"
            );
            points.push(Point {
                nodes: n,
                noisy_s,
                quiet_s,
                mech_slowdown,
                analytic_slowdown,
            });
        }
        let direction_ok = directions_agree(&points);
        curves.push(Curve {
            mode,
            points,
            direction_ok,
        });
    }

    let amplification = |c: &Curve| -> f64 {
        c.points.last().expect("points").mech_slowdown / c.points[0].mech_slowdown
    };
    let cfs_amp = amplification(&curves[0]);
    let hpc_amp = amplification(&curves[1]);
    // The headline resonance claim: noise amplification grows with node
    // count under CFS and stays near-flat under the HPL scheduler.
    let resonance_ok = cfs_amp > hpc_amp && curves.iter().all(|c| c.direction_ok);
    eprintln!(
        "cfs amplification {cfs_amp:.3} | hpc amplification {hpc_amp:.3} | resonance_ok {resonance_ok}"
    );

    let mut json = String::from("{\n  \"bench\": \"cluster\",\n");
    json.push_str(&format!("  \"flavour\": \"{flavour}\",\n"));
    json.push_str(&format!("  \"iters\": {iters},\n  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"cfs_amplification\": {cfs_amp:.4},\n"));
    json.push_str(&format!("  \"hpc_amplification\": {hpc_amp:.4},\n"));
    json.push_str(&format!("  \"resonance_ok\": {resonance_ok},\n"));
    json.push_str("  \"curves\": [\n");
    for (ci, c) in curves.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"direction_ok\": {}, \"points\": [\n",
            c.mode, c.direction_ok
        ));
        for (i, p) in c.points.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"nodes\": {}, \"noisy_s\": {:.6}, \"quiet_s\": {:.6}, \"slowdown\": {:.4}, \"analytic_slowdown\": {:.4}}}{}\n",
                p.nodes,
                p.noisy_s,
                p.quiet_s,
                p.mech_slowdown,
                p.analytic_slowdown,
                if i + 1 < c.points.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if ci + 1 < curves.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write bench json");
    eprintln!("wrote {out}");
    // Smoke runs are too short for the curves to be meaningful; the gate
    // there is "multi-node co-simulation completes at all".
    if !smoke && !resonance_ok {
        eprintln!("FAIL: mechanistic curves do not reproduce noise resonance");
        std::process::exit(1);
    }
}
