//! Mechanistic cluster amplification sweep (the Petrini curve).
//!
//! Co-simulates N kernel nodes under one lockstep driver, running the
//! same bulk-synchronous job (compute + Allreduce per iteration) under
//! the standard-Linux CFS kernel and the HPL kernel, with per-node OS
//! noise. For each node count the *noise amplification* is the noisy
//! execution time over the noise-free (quiet daemons) execution time on
//! the same cluster — network and launch overheads cancel, leaving the
//! pure max-over-nodes resonance effect the paper's §II describes.
//!
//! Each mechanistic curve is cross-checked against the analytic
//! [`ResonanceModel`] built from per-phase durations measured on a
//! single node: the analytic slowdown must move in the same direction as
//! the mechanistic one at every node count (CFS climbs, HPL stays
//! near-flat).
//!
//! A second section benchmarks the **parallel lockstep driver**: a
//! weak-scaling sweep (64 / 256 / 1024 nodes) of the same
//! bulk-synchronous job, stepped once serially and once on the host
//! thread pool. The sweep reports host wall-clock speedup per cell and
//! asserts the two runs are **bit-identical** (fingerprint, execution
//! time, event count, interconnect counters). The speedup figure is
//! meaningful only on a multi-core host — `host_threads` is recorded
//! alongside so a single-core CI number is never mistaken for a regression.
//!
//! Writes `BENCH_cluster.json` in the current directory.
//!
//! Usage: `cluster [--quick|--smoke] [--out PATH]`

use hpl_cluster::{
    Cluster, CosimConfig, EmpiricalDist, Interconnect, NetConfig, Placement, ResonanceModel,
};
use hpl_core::HplClass;
use hpl_kernel::noise::NoiseProfile;
use hpl_kernel::{KernelConfig, NodeBuilder, TaskState};
use hpl_mpi::{launch, JobSpec, MpiOp, SchedMode};
use hpl_sim::{Rng, SimDuration};
use hpl_topology::Topology;

const RANKS_PER_NODE: u32 = 8;

fn job(nodes: u32, iters: u32) -> JobSpec {
    JobSpec::new(
        nodes * RANKS_PER_NODE,
        JobSpec::repeat(
            iters,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(3),
                },
                MpiOp::Allreduce { bytes: 64 },
            ],
        ),
    )
    .with_nodes(nodes)
}

fn build_cluster(nodes: u32, hpc: bool, noisy: bool, seed: u64) -> Cluster {
    Cluster::builder()
        .nodes_with(nodes as usize, move |i| {
            let kc = if hpc {
                KernelConfig::hpl()
            } else {
                KernelConfig::default()
            };
            let noise = if noisy {
                NoiseProfile::standard(RANKS_PER_NODE)
            } else {
                NoiseProfile::quiet()
            };
            let mut b = NodeBuilder::new(Topology::power6_js22())
                .with_config(kc)
                .with_noise(noise)
                .with_seed(Rng::for_run(seed, i as u64).next_u64());
            if hpc {
                b = b.with_hpc_class(Box::new(HplClass::new()));
            }
            b.build()
        })
        .fabric(Interconnect::flat(nodes as usize, NetConfig::default()))
        .build()
}

/// Mean execution time (seconds) of the job on an N-node cluster.
fn cluster_exec(nodes: u32, hpc: bool, noisy: bool, iters: u32, reps: u32, seed: u64) -> f64 {
    let mode = if hpc { SchedMode::Hpc } else { SchedMode::Cfs };
    let mut total = 0.0;
    for rep in 0..reps {
        let mut cluster = build_cluster(nodes, hpc, noisy, seed ^ (rep as u64) << 16);
        // Warm each node's daemon population up independently — legal
        // before launch, when no cross-node traffic can exist yet.
        for i in 0..nodes as usize {
            cluster.node_mut(i).run_for(SimDuration::from_millis(300));
        }
        let handle = cluster.launch(&job(nodes, iters), mode, Placement::All);
        let exec = cluster.run_to_completion(&handle, 400_000_000 * nodes as u64);
        total += exec.as_secs_f64();
    }
    total / reps as f64
}

/// Per-phase durations on one node, by watching the job barrier
/// generation tick over — the input for the analytic model.
fn measure_phases(hpc: bool, iters: u32, reps: u32, seed: u64) -> Vec<f64> {
    let mode = if hpc { SchedMode::Hpc } else { SchedMode::Cfs };
    let mut samples = Vec::new();
    for rep in 0..reps {
        let mut cluster = build_cluster(1, hpc, true, seed ^ (rep as u64) << 16);
        let node = cluster.node_mut(0);
        node.run_for(SimDuration::from_millis(300));
        let job = job(1, iters);
        let barrier = job.barrier_id();
        let handle = launch(node, &job, mode);
        let mut last_gen = node.sync.barrier_generation(barrier);
        let mut last_t = node.now();
        while node.tasks.get(handle.perf_pid).state != TaskState::Dead {
            assert!(node.step(), "single-node probe deadlocked");
            let gen = node.sync.barrier_generation(barrier);
            if gen > last_gen {
                // Skip the init barrier (generation 0 -> 1): it brackets
                // launch, not a compute phase.
                if last_gen > 0 {
                    samples.push(node.now().since(last_t).as_secs_f64());
                }
                last_gen = gen;
                last_t = node.now();
            }
        }
    }
    samples
}

struct Point {
    nodes: u32,
    noisy_s: f64,
    quiet_s: f64,
    mech_slowdown: f64,
    analytic_slowdown: f64,
}

// ---------------------------------------------------------------------
// Weak-scaling sweep of the parallel lockstep driver
// ---------------------------------------------------------------------

/// Ranks per node in the weak-scaling cells (small nodes, many of them).
const WEAK_RANKS: u32 = 2;

struct WeakPoint {
    nodes: u32,
    serial_wall_s: f64,
    parallel_wall_s: f64,
    speedup: f64,
    exec_s: f64,
    events: u64,
    bit_identical: bool,
}

fn weak_job(nodes: u32, iters: u32) -> JobSpec {
    JobSpec::new(
        nodes * WEAK_RANKS,
        JobSpec::repeat(
            iters,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_micros(200),
                },
                MpiOp::Allreduce { bytes: 64 },
            ],
        ),
    )
    .with_nodes(nodes)
}

fn weak_cluster(nodes: u32, seed: u64, cosim: CosimConfig) -> Cluster {
    let mut cluster = Cluster::builder()
        .nodes_with(nodes as usize, move |i| {
            NodeBuilder::new(Topology::smp(WEAK_RANKS))
                .with_config(KernelConfig::hpl())
                .with_noise(NoiseProfile::standard(WEAK_RANKS).scaled(0.25))
                .with_seed(Rng::for_run(seed, i as u64).next_u64())
                .with_hpc_class(Box::new(HplClass::new()))
                .build()
        })
        .fabric(Interconnect::flat(nodes as usize, NetConfig::default()))
        .cosim(cosim)
        .build();
    for i in 0..nodes as usize {
        cluster.node_mut(i).run_for(SimDuration::from_millis(20));
    }
    cluster
}

/// Run one weak-scaling cell under `cosim`; returns (host wall seconds,
/// execution seconds, fingerprint, events, net messages, net bytes).
fn weak_run(
    nodes: u32,
    iters: u32,
    seed: u64,
    cosim: CosimConfig,
) -> (f64, f64, u64, u64, u64, u64) {
    let mut cluster = weak_cluster(nodes, seed, cosim);
    let handle = cluster.launch(&weak_job(nodes, iters), SchedMode::Hpc, Placement::All);
    let t0 = std::time::Instant::now();
    let exec = cluster.run_to_completion(&handle, 100_000_000 * nodes as u64);
    let wall = t0.elapsed().as_secs_f64();
    (
        wall,
        exec.as_secs_f64(),
        cluster.state_fingerprint(),
        cluster.events_processed(),
        cluster.net().messages(),
        cluster.net().bytes(),
    )
}

/// One weak-scaling cell: serial vs pooled stepping of the same job,
/// demanding bit-identical simulated results.
fn weak_cell(nodes: u32, iters: u32, threads: usize) -> WeakPoint {
    let seed = 0x5CA1E ^ (nodes as u64) << 20;
    let (ser_wall, ser_exec, ser_fp, ser_ev, ser_msg, ser_bytes) =
        weak_run(nodes, iters, seed, CosimConfig::serial());
    let par_cfg = CosimConfig::parallel().with_threads(threads);
    let (par_wall, par_exec, par_fp, par_ev, par_msg, par_bytes) =
        weak_run(nodes, iters, seed, par_cfg);
    let bit_identical = (ser_exec, ser_fp, ser_ev, ser_msg, ser_bytes)
        == (par_exec, par_fp, par_ev, par_msg, par_bytes);
    WeakPoint {
        nodes,
        serial_wall_s: ser_wall,
        parallel_wall_s: par_wall,
        speedup: ser_wall / par_wall,
        exec_s: ser_exec,
        events: ser_ev,
        bit_identical,
    }
}

struct Curve {
    mode: &'static str,
    points: Vec<Point>,
    direction_ok: bool,
}

/// Mechanistic and analytic curves must agree in *direction* at every
/// step: where the analytic slowdown climbs by more than `flat`, the
/// mechanistic one must not fall by more than `tol`, and vice versa.
fn directions_agree(points: &[Point]) -> bool {
    let flat = 0.02;
    let tol = 0.05;
    points.windows(2).all(|w| {
        let da = w[1].analytic_slowdown - w[0].analytic_slowdown;
        let dm = w[1].mech_slowdown - w[0].mech_slowdown;
        if da > flat {
            dm > -tol
        } else if da < -flat {
            dm < tol
        } else {
            true
        }
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_cluster.json".into());

    let (node_counts, iters, reps): (&[u32], u32, u32) = if smoke {
        (&[1, 2, 4], 8, 1)
    } else if quick {
        (&[1, 2, 4, 8], 20, 2)
    } else {
        (&[1, 2, 4, 8, 16], 30, 3)
    };
    let flavour = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    eprintln!("cluster bench ({flavour}): nodes {node_counts:?}, {iters} iters x {reps} reps");

    let mut curves = Vec::new();
    for (mode, hpc) in [("cfs", false), ("hpc", true)] {
        let phases = measure_phases(hpc, iters, reps.max(2), 0xC1A5);
        let model = ResonanceModel::new(
            EmpiricalDist::try_new(phases).expect("phase probe produced samples"),
            iters,
        );
        let ideal = model.ideal_time();
        let mut points = Vec::new();
        for &n in node_counts {
            let noisy_s = cluster_exec(n, hpc, true, iters, reps, 0xBA5E);
            let quiet_s = cluster_exec(n, hpc, false, iters, reps, 0xBA5E);
            let mech_slowdown = noisy_s / quiet_s;
            let analytic_slowdown = model.expected_time_analytic(n) / ideal;
            eprintln!(
                "{mode:>4} n={n:>2}: noisy {noisy_s:>8.4}s | quiet {quiet_s:>8.4}s | \
                 slowdown {mech_slowdown:>6.3} | analytic {analytic_slowdown:>6.3}"
            );
            points.push(Point {
                nodes: n,
                noisy_s,
                quiet_s,
                mech_slowdown,
                analytic_slowdown,
            });
        }
        let direction_ok = directions_agree(&points);
        curves.push(Curve {
            mode,
            points,
            direction_ok,
        });
    }

    // Weak-scaling sweep of the parallel driver: scale the cluster,
    // hold per-node work fixed, race the serial driver against the
    // pooled one on the same seeds.
    let (weak_cells, weak_iters): (&[u32], u32) = if smoke {
        (&[8, 16], 2)
    } else if quick {
        (&[64, 128], 3)
    } else {
        (&[64, 256, 1024], 3)
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    // At least two stepping threads even on a single-core host, so the
    // bit-equality claim always covers real cross-thread execution.
    let weak_threads = host_threads.max(2);
    eprintln!(
        "weak scaling: cells {weak_cells:?}, {weak_iters} iters, \
         {weak_threads} stepping threads (host has {host_threads})"
    );
    let mut weak_points = Vec::new();
    for &n in weak_cells {
        let p = weak_cell(n, weak_iters, weak_threads);
        eprintln!(
            "weak n={:>5}: serial {:>7.3}s | parallel {:>7.3}s | speedup {:>5.2}x | \
             sim exec {:.4}s | {} events | bit_identical {}",
            p.nodes,
            p.serial_wall_s,
            p.parallel_wall_s,
            p.speedup,
            p.exec_s,
            p.events,
            p.bit_identical
        );
        weak_points.push(p);
    }
    let weak_identical = weak_points.iter().all(|p| p.bit_identical);
    // The >= 2x speedup claim applies on multi-core hosts; a pool of
    // oversubscribed threads on one core can only measure overhead.
    let speedup_meaningful = host_threads >= 2;
    let weak_speedup_ok = !speedup_meaningful
        || weak_points
            .iter()
            .filter(|p| p.nodes >= 256)
            .all(|p| p.speedup >= 2.0);

    let amplification = |c: &Curve| -> f64 {
        c.points.last().expect("points").mech_slowdown / c.points[0].mech_slowdown
    };
    let cfs_amp = amplification(&curves[0]);
    let hpc_amp = amplification(&curves[1]);
    // The headline resonance claim: noise amplification grows with node
    // count under CFS and stays near-flat under the HPL scheduler.
    let resonance_ok = cfs_amp > hpc_amp && curves.iter().all(|c| c.direction_ok);
    eprintln!(
        "cfs amplification {cfs_amp:.3} | hpc amplification {hpc_amp:.3} | resonance_ok {resonance_ok}"
    );

    let mut json = String::from("{\n  \"bench\": \"cluster\",\n");
    json.push_str(&format!("  \"flavour\": \"{flavour}\",\n"));
    json.push_str(&format!("  \"iters\": {iters},\n  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"cfs_amplification\": {cfs_amp:.4},\n"));
    json.push_str(&format!("  \"hpc_amplification\": {hpc_amp:.4},\n"));
    json.push_str(&format!("  \"resonance_ok\": {resonance_ok},\n"));
    json.push_str("  \"curves\": [\n");
    for (ci, c) in curves.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"direction_ok\": {}, \"points\": [\n",
            c.mode, c.direction_ok
        ));
        for (i, p) in c.points.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"nodes\": {}, \"noisy_s\": {:.6}, \"quiet_s\": {:.6}, \"slowdown\": {:.4}, \"analytic_slowdown\": {:.4}}}{}\n",
                p.nodes,
                p.noisy_s,
                p.quiet_s,
                p.mech_slowdown,
                p.analytic_slowdown,
                if i + 1 < c.points.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if ci + 1 < curves.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"weak_scaling\": {\n");
    json.push_str(&format!("    \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("    \"stepping_threads\": {weak_threads},\n"));
    json.push_str(&format!("    \"iters\": {weak_iters},\n"));
    json.push_str(&format!("    \"bit_identical\": {weak_identical},\n"));
    json.push_str(&format!(
        "    \"speedup_meaningful\": {speedup_meaningful},\n"
    ));
    json.push_str(&format!("    \"speedup_ok\": {weak_speedup_ok},\n"));
    json.push_str("    \"points\": [\n");
    for (i, p) in weak_points.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"nodes\": {}, \"serial_wall_s\": {:.4}, \"parallel_wall_s\": {:.4}, \
             \"speedup\": {:.3}, \"exec_s\": {:.6}, \"events\": {}, \"bit_identical\": {}}}{}\n",
            p.nodes,
            p.serial_wall_s,
            p.parallel_wall_s,
            p.speedup,
            p.exec_s,
            p.events,
            p.bit_identical,
            if i + 1 < weak_points.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write(&out, json).expect("write bench json");
    eprintln!("wrote {out}");
    if !weak_identical {
        eprintln!("FAIL: parallel stepping diverged from the serial driver");
        std::process::exit(1);
    }
    if !weak_speedup_ok {
        eprintln!("FAIL: pooled stepping under 2x at >= 256 nodes on a multi-core host");
        std::process::exit(1);
    }
    // Smoke runs are too short for the curves to be meaningful; the gate
    // there is "multi-node co-simulation completes at all".
    if !smoke && !resonance_ok {
        eprintln!("FAIL: mechanistic curves do not reproduce noise resonance");
        std::process::exit(1);
    }
}
