//! Repetition driver.
//!
//! One *repetition* reproduces the paper's measurement procedure: boot a
//! node with its daemon population, let it settle, start `perf
//! stat -a` (open a [`PerfSession`]), launch the application through the
//! mode-appropriate launcher stack, run to completion, close the window,
//! and record `(execution time, migrations, context switches, …)`.
//! Repetitions are deterministic in `(base_seed, rep_index)` and
//! independent, so they parallelise over host threads with results
//! identical to a serial run.

use hpl_kernel::noise::NoiseProfile;
use hpl_kernel::{KernelConfig, Node, NodeBuilder};
use hpl_mpi::{launch, JobSpec, SchedMode};
use hpl_perf::{PerfSession, RunRecord, RunTable};
use hpl_sim::{Rng, SimDuration};
use hpl_topology::Topology;

/// Which kernel the node boots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Unmodified Linux: RT + CFS + Idle, full load balancing.
    StandardLinux,
    /// HPL: HPC class between RT and CFS, all dynamic balancing off.
    Hpl,
    /// Ablation: the HPC class registered but dynamic balancing left on
    /// (isolates the class-priority effect from the balancing effect).
    HplBalanceOn,
    /// Ablation: HPL plus NETTICK-style tickless operation for lone HPC
    /// tasks (the paper's projected further improvement).
    HplTickless,
    /// An idealised lightweight kernel in the CNK mould: the HPC class,
    /// no balancing, tickless, and (by convention — pair it with
    /// [`NoiseKind::Quiet`]) no daemons at all. The yardstick for the
    /// paper's "monolithic kernel that behaves like a micro-kernel"
    /// claim.
    Lwk,
}

/// Which daemon population the node runs.
#[derive(Debug, Clone)]
pub enum NoiseKind {
    /// The calibrated 2010-era population.
    Standard,
    /// No daemons at all (idealised floor).
    Quiet,
    /// Standard scaled by a factor (sensitivity sweeps).
    Scaled(f64),
    /// Ferreira-style injection: per-CPU daemons with fixed
    /// period/duration.
    Injection {
        /// Injection period.
        period: SimDuration,
        /// Injection duration per event.
        duration: SimDuration,
    },
}

impl NoiseKind {
    fn profile(&self, ncpus: u32) -> NoiseProfile {
        match self {
            NoiseKind::Standard => NoiseProfile::standard(ncpus),
            NoiseKind::Quiet => NoiseProfile::quiet(),
            NoiseKind::Scaled(f) => NoiseProfile::standard(ncpus).scaled(*f),
            NoiseKind::Injection { period, duration } => {
                hpl_workloads::micro::injection_profile(ncpus, *period, *duration)
            }
        }
    }
}

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Label for reports (e.g. `cg.A.8`).
    pub label: String,
    /// The MPI job.
    pub job: JobSpec,
    /// Launch mode (CFS / RT / HPC / pinned).
    pub mode: SchedMode,
    /// Kernel flavour.
    pub scheduler: Scheduler,
    /// Daemon population.
    pub noise: NoiseKind,
    /// Repetitions (the paper uses 1000).
    pub reps: u32,
    /// Base seed; rep `i` uses stream `(base_seed, i)`.
    pub base_seed: u64,
    /// Machine model.
    pub topo: Topology,
    /// Settle time before the measurement window opens.
    pub warmup: SimDuration,
    /// Event-loop fast path (timer wheel + quiescence fast-forward).
    /// On by default; regression tests flip it off to prove the fast
    /// and reference paths produce byte-identical records.
    pub fast_event_loop: bool,
    /// Attach a metrics-registry observer to every repetition and carry
    /// the collected [`hpl_perf::SchedMetrics`] in each
    /// [`RunRecord::metrics`]. Off by default: observers do not perturb
    /// the simulation, but the registry costs a little time per event.
    pub collect_metrics: bool,
}

impl RunConfig {
    /// Standard defaults on the paper's machine.
    pub fn new(
        label: impl Into<String>,
        job: JobSpec,
        mode: SchedMode,
        scheduler: Scheduler,
    ) -> Self {
        RunConfig {
            label: label.into(),
            job,
            mode,
            scheduler,
            noise: NoiseKind::Standard,
            reps: 100,
            base_seed: 0x5EED,
            topo: Topology::power6_js22(),
            warmup: SimDuration::from_millis(400),
            fast_event_loop: true,
            collect_metrics: false,
        }
    }

    /// Set repetitions.
    pub fn with_reps(mut self, reps: u32) -> Self {
        self.reps = reps;
        self
    }

    /// Set base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Set noise kind.
    pub fn with_noise(mut self, noise: NoiseKind) -> Self {
        self.noise = noise;
        self
    }

    /// Toggle the event-loop fast path (reference path when `false`).
    pub fn with_fast_event_loop(mut self, fast: bool) -> Self {
        self.fast_event_loop = fast;
        self
    }

    /// Collect observer metrics (timeslice / off-CPU latency / migration
    /// inter-arrival histograms and decision counters) on every rep.
    pub fn with_metrics(mut self, collect: bool) -> Self {
        self.collect_metrics = collect;
        self
    }
}

fn build_node(cfg: &RunConfig, seed: u64) -> Node {
    let noise = cfg.noise.profile(cfg.topo.total_cpus());
    let (mut kc, hpc_class) = match cfg.scheduler {
        Scheduler::StandardLinux => (KernelConfig::default(), false),
        Scheduler::Hpl => (KernelConfig::hpl(), true),
        Scheduler::HplBalanceOn => (KernelConfig::default(), true),
        Scheduler::HplTickless | Scheduler::Lwk => {
            let mut kc = KernelConfig::hpl();
            kc.tickless_single_hpc = true;
            (kc, true)
        }
    };
    kc.fast_event_loop = cfg.fast_event_loop;
    let mut builder = NodeBuilder::new(cfg.topo.clone())
        .with_config(kc)
        .with_noise(noise)
        .with_seed(seed);
    if hpc_class {
        builder = builder.with_hpc_class(Box::new(hpl_core::HplClass::new()));
    }
    builder.build()
}

/// Upper bound on events per repetition (hang guard): generous multiple
/// of the tick count for the longest plausible run.
const MAX_EVENTS: u64 = 40_000_000_000;

/// Execute one repetition. A repetition that deadlocks or exhausts its
/// event budget is *recorded*, not panicked on: its [`RunRecord`]
/// carries the failed [`hpl_perf::RunOutcome`] and the wall time up to
/// the stop, so sweeps keep aggregating and reports can flag the rep.
pub fn run_once(cfg: &RunConfig, rep: u64) -> RunRecord {
    let seed = Rng::for_run(cfg.base_seed, rep).next_u64();
    let mut node = build_node(cfg, seed);
    node.run_for(cfg.warmup);
    // Observer attached after warmup so the registry covers the same
    // window as the perf session.
    let metrics_sink = cfg
        .collect_metrics
        .then(|| node.attach_observer(Box::new(hpl_kernel::MetricsSink::new())));
    // perf stat -a window opens just before the launcher starts.
    let launched = node.now();
    let mut session = PerfSession::open(&node.counters, launched);
    let handle = launch(&mut node, &cfg.job, cfg.mode);
    let (exec, outcome) = match handle.try_run_to_completion(&mut node, MAX_EVENTS) {
        Ok(exec) => (exec, hpl_perf::RunOutcome::Completed),
        Err(outcome) => (node.now().since(launched), outcome),
    };
    session.close(&node.counters, node.now());
    let mut rec =
        RunRecord::from_delta(rep, exec.as_secs_f64(), &session.delta()).with_outcome(outcome);
    if let Some(id) = metrics_sink {
        let m = node
            .observer::<hpl_kernel::MetricsSink>(id)
            .expect("metrics sink attached above")
            .metrics()
            .clone();
        rec = rec.with_metrics(m);
    }
    rec
}

/// Execute all repetitions, parallelised over host threads.
pub fn run_many(cfg: &RunConfig) -> RunTable {
    let reps = cfg.reps as u64;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(reps.max(1) as usize);
    if threads <= 1 || reps <= 1 {
        let records = (0..reps).map(|i| run_once(cfg, i)).collect();
        return RunTable::new(records);
    }
    let mut records: Vec<Option<RunRecord>> = (0..reps).map(|_| None).collect();
    let next = std::sync::atomic::AtomicU64::new(0);
    let slots = std::sync::Mutex::new(&mut records);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= reps {
                    break;
                }
                let rec = run_once(cfg, i);
                slots.lock().expect("harness mutex")[i as usize] = Some(rec);
            });
        }
    });
    RunTable::new(
        records
            .into_iter()
            .map(|r| r.expect("all reps completed"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_mpi::MpiOp;

    fn tiny_cfg(scheduler: Scheduler, mode: SchedMode) -> RunConfig {
        let job = JobSpec::new(
            8,
            JobSpec::repeat(
                2,
                &[
                    MpiOp::Compute {
                        mean: SimDuration::from_millis(3),
                    },
                    MpiOp::Allreduce { bytes: 64 },
                ],
            ),
        );
        RunConfig::new("tiny", job, mode, scheduler).with_reps(4)
    }

    #[test]
    fn run_once_produces_sane_record() {
        let cfg = tiny_cfg(Scheduler::StandardLinux, SchedMode::Cfs);
        let rec = run_once(&cfg, 0);
        assert!(rec.exec_time_s > 0.005);
        assert!(rec.context_switches > 0);
    }

    #[test]
    fn determinism_per_rep() {
        let cfg = tiny_cfg(Scheduler::Hpl, SchedMode::Hpc);
        let a = run_once(&cfg, 3);
        let b = run_once(&cfg, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_serial() {
        let cfg = tiny_cfg(Scheduler::StandardLinux, SchedMode::Cfs);
        let serial: Vec<_> = (0..4).map(|i| run_once(&cfg, i)).collect();
        let parallel = run_many(&cfg);
        assert_eq!(parallel.records(), &serial[..]);
    }

    #[test]
    fn fast_event_loop_matches_reference_tables() {
        // Whole-harness differential: with the fast path disabled the
        // run table must be byte-identical, scheduler by scheduler.
        for (s, mode) in [
            (Scheduler::StandardLinux, SchedMode::Cfs),
            (Scheduler::Hpl, SchedMode::Hpc),
            (Scheduler::HplTickless, SchedMode::Hpc),
        ] {
            let fast = run_many(&tiny_cfg(s, mode));
            let reference = run_many(&tiny_cfg(s, mode).with_fast_event_loop(false));
            assert_eq!(
                fast.records(),
                reference.records(),
                "{s:?}: fast event loop changed the run table"
            );
        }
    }

    #[test]
    fn metrics_collection_does_not_perturb_measurements() {
        let plain = run_many(&tiny_cfg(Scheduler::StandardLinux, SchedMode::Cfs).with_reps(2));
        let observed = run_many(
            &tiny_cfg(Scheduler::StandardLinux, SchedMode::Cfs)
                .with_reps(2)
                .with_metrics(true),
        );
        assert!(observed.all_completed());
        for (a, b) in plain.records().iter().zip(observed.records()) {
            assert_eq!(a.exec_time_s, b.exec_time_s, "observer changed timing");
            assert_eq!(a.context_switches, b.context_switches);
            assert_eq!(a.cpu_migrations, b.cpu_migrations);
            assert!(a.metrics.is_none());
            assert!(b.metrics.is_some());
        }
        let merged = observed.merged_metrics().expect("metrics collected");
        assert!(merged.switches > 0);
        assert!(merged.picks > 0);
        assert!(merged.timeslice_ns.count() > 0);
    }

    #[test]
    fn all_schedulers_build() {
        for s in [
            Scheduler::StandardLinux,
            Scheduler::Hpl,
            Scheduler::HplBalanceOn,
            Scheduler::HplTickless,
            Scheduler::Lwk,
        ] {
            let mode = match s {
                Scheduler::StandardLinux => SchedMode::Cfs,
                _ => SchedMode::Hpc,
            };
            let cfg = tiny_cfg(s, mode).with_reps(1);
            let rec = run_once(&cfg, 0);
            assert!(rec.exec_time_s > 0.0);
        }
        // Launch-mode variants on the standard kernel.
        for mode in [
            SchedMode::CfsNice { nice: -10 },
            SchedMode::CfsPinned,
            SchedMode::Rt { prio: 40 },
        ] {
            let cfg = tiny_cfg(Scheduler::StandardLinux, mode).with_reps(1);
            let rec = run_once(&cfg, 0);
            assert!(rec.exec_time_s > 0.0, "{mode:?}");
        }
    }
}
