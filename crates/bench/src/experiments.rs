//! One function per paper table/figure (plus the extensions).
//!
//! Each experiment returns a report string; the `repro` binary prints it
//! and optionally writes raw CSV next to it. Repetition counts default to
//! a laptop-friendly 100 (the paper uses 1000; pass `--reps 1000` to
//! match exactly — every statistic here converges well before that).

use crate::harness::{run_many, NoiseKind, RunConfig, Scheduler};
use crate::report;
use hpl_cluster::{compare_configs, EmpiricalDist, ResonanceModel};
use hpl_kernel::noise::NoiseProfile;
use hpl_kernel::NodeBuilder;
use hpl_mpi::{launch, JobSpec, MpiOp, SchedMode};
use hpl_perf::RunTable;
use hpl_sim::plot::{render_histogram, render_scatter, to_csv};
use hpl_sim::stats::{Histogram, Summary};
use hpl_sim::{Rng, SimDuration};
use hpl_topology::Topology;
use hpl_workloads::micro::noise_probe_job;
use hpl_workloads::{nas_job, NasBenchmark, NasClass};
use std::fmt::Write as _;

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Repetitions per configuration (paper: 1000).
    pub reps: u32,
    /// Base seed.
    pub seed: u64,
    /// Optional directory for raw CSV output.
    pub out_dir: Option<std::path::PathBuf>,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts {
            reps: 100,
            seed: 0x5EED,
            out_dir: None,
        }
    }
}

impl ExpOpts {
    fn write_csv(&self, name: &str, contents: &str) {
        if let Some(dir) = &self.out_dir {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, contents) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

fn ep_a_cfg(opts: &ExpOpts, mode: SchedMode, sched: Scheduler) -> RunConfig {
    RunConfig::new(
        "ep.A.8",
        nas_job(NasBenchmark::Ep, NasClass::A, 8),
        mode,
        sched,
    )
    .with_reps(opts.reps)
    .with_seed(opts.seed)
}

// -------------------------------------------------------------------
// Figure 1 — effects of preemption on a barrier-synchronised app
// -------------------------------------------------------------------

/// Reproduce Figure 1's *mechanism* as a measured timeline: a 4-rank
/// barrier application runs iterations of fixed work; a single daemon
/// activation preempts one rank mid-run, and the whole application
/// stretches by the preemption length because every other rank waits at
/// the barrier.
pub fn fig1(opts: &ExpOpts) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1 — one preempted process delays every process.\n\
         8 ranks, 12 iterations of 20 ms compute + barrier; a one-shot\n\
         40 ms CFS task is injected onto cpu0 during iteration 6.\n"
    );
    let job = noise_probe_job(8, 12, SimDuration::from_millis(20));
    let barrier = job.barrier_id();

    let mut node = NodeBuilder::new(Topology::power6_js22())
        .with_seed(opts.seed)
        .build();
    node.enable_trace(200_000);
    node.run_for(SimDuration::from_millis(100));
    let handle = launch(&mut node, &job, SchedMode::Cfs);
    let launch_time = node.now();
    // Step manually, recording the completion time of each barrier
    // generation (= each iteration); inject the noise task mid-run.
    let mut last_gen = node.sync.barrier_generation(barrier);
    let mut iter_end = Vec::new();
    let mut injected = false;
    while node.tasks.get(handle.perf_pid).state != hpl_kernel::TaskState::Dead {
        assert!(node.step(), "queue drained early");
        let gen = node.sync.barrier_generation(barrier);
        if gen > last_gen {
            for _ in last_gen..gen {
                iter_end.push(node.now());
            }
            last_gen = gen;
        }
        if !injected && iter_end.len() >= 6 {
            injected = true;
            node.spawn(
                hpl_kernel::TaskSpec::new(
                    "inject",
                    hpl_kernel::Policy::Normal { nice: 0 },
                    hpl_kernel::program::ScriptProgram::boxed(
                        "inject",
                        vec![hpl_kernel::Step::Compute(SimDuration::from_millis(40))],
                    ),
                )
                .with_affinity(hpl_topology::CpuMask::single(hpl_topology::CpuId(0))),
            );
        }
    }
    let mut prev = iter_end[0];
    let _ = writeln!(out, "iteration | duration  |");
    // iter_end[0] is the init barrier; the last generation is finalize.
    for (i, &t) in iter_end[..iter_end.len() - 1].iter().enumerate().skip(1) {
        let d = t.since(prev);
        prev = t;
        let bar_len = (d.as_secs_f64() / 0.002).round() as usize;
        let bar: String = std::iter::repeat_n('#', bar_len.min(70)).collect();
        let _ = writeln!(out, "{i:9} | {d:>9} | {bar}");
    }
    let _ = writeln!(
        out,
        "\nThe stretched iterations are the paper's Figure 1: the preempted\n\
         rank arrives late, and every rank's barrier wait absorbs the delay.\n\
         Per-CPU Gantt ('0'-'7' = ranks, 'x' = other tasks, '.' = idle):\n"
    );
    if let Some(trace) = node.trace() {
        let rank_glyph: std::collections::HashMap<hpl_kernel::Pid, char> = node
            .tasks
            .iter()
            .filter(|t| t.name.starts_with("rank"))
            .map(|t| (t.pid, t.name.as_bytes()[4] as char))
            .collect();
        out.push_str(&trace.gantt(8, launch_time, node.now(), 64, |p| {
            rank_glyph.get(&p).copied().unwrap_or('x')
        }));
    }
    out
}

// -------------------------------------------------------------------
// Figures 2 / 4 — ep.A.8 execution-time distributions
// -------------------------------------------------------------------

fn time_histogram(label: &str, table: &RunTable, opts: &ExpOpts, csv_name: &str) -> String {
    let times = table.times();
    let s = Summary::from_slice(&times);
    let hist = Histogram::covering(&times, 24);
    let mut out = String::new();
    let _ = writeln!(out, "{label}: {} runs", times.len());
    let _ = writeln!(
        out,
        "min {:.2}s  avg {:.2}s  max {:.2}s  variation {:.2}%\n",
        s.min(),
        s.mean(),
        s.max(),
        s.variation_pct()
    );
    out.push_str(&render_histogram(&hist, 60));
    let idx: Vec<f64> = (0..times.len()).map(|i| i as f64).collect();
    opts.write_csv(csv_name, &to_csv(("run", "exec_time_s"), &idx, &times));
    out
}

/// Figure 2: ep.A.8 under standard Linux — the wide, heavy-tailed
/// execution-time distribution that motivates the whole paper.
pub fn fig2(opts: &ExpOpts) -> String {
    let table = run_many(&ep_a_cfg(opts, SchedMode::Cfs, Scheduler::StandardLinux));
    let mut out =
        String::from("Figure 2 — ep.A.8 execution time distribution (standard Linux)\n\n");
    out.push_str(&time_histogram(
        "ep.A.8 / std Linux",
        &table,
        opts,
        "fig2.csv",
    ));
    out
}

/// Figure 4: ep.A.8 under the RT scheduler — tighter than CFS but not
/// noise-free; RT balancing still migrates tasks.
pub fn fig4(opts: &ExpOpts) -> String {
    let table = run_many(&ep_a_cfg(
        opts,
        SchedMode::Rt { prio: 50 },
        Scheduler::StandardLinux,
    ));
    let mut out = String::from("Figure 4 — ep.A.8 execution time distribution (RT scheduler)\n\n");
    out.push_str(&time_histogram(
        "ep.A.8 / SCHED_FIFO",
        &table,
        opts,
        "fig4.csv",
    ));
    let m = table.migration_summary();
    let c = table.switch_summary();
    let _ = writeln!(
        out,
        "\nmigrations avg {:.1} (max {:.0}); context switches avg {:.1} (max {:.0})",
        m.mean(),
        m.max(),
        c.mean(),
        c.max()
    );
    out
}

// -------------------------------------------------------------------
// Figure 3 — execution time vs software counters
// -------------------------------------------------------------------

/// Which Figure 3 panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig3Panel {
    /// 3a: CPU migrations.
    Migrations,
    /// 3b: context switches.
    Switches,
}

/// Figure 3: scatter of ep.A.8 execution time against a scheduler
/// counter, plus the correlation the paper reads off the plot.
pub fn fig3(opts: &ExpOpts, panel: Fig3Panel) -> String {
    let table = run_many(&ep_a_cfg(opts, SchedMode::Cfs, Scheduler::StandardLinux));
    let times = table.times();
    let (name, xs, csv) = match panel {
        Fig3Panel::Migrations => ("CPU migrations", table.migrations_f64(), "fig3a.csv"),
        Fig3Panel::Switches => ("context switches", table.switches_f64(), "fig3b.csv"),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3{} — ep.A.8 execution time vs {name} (standard Linux)\n",
        if panel == Fig3Panel::Migrations {
            "a"
        } else {
            "b"
        }
    );
    out.push_str(&render_scatter(&xs, &times, 64, 16));
    let _ = writeln!(
        out,
        "\nPearson r = {:.3}, Spearman rho = {:.3} (n = {})",
        hpl_sim::stats::pearson(&xs, &times),
        hpl_sim::stats::spearman(&xs, &times),
        xs.len()
    );
    if let Some((slope, intercept, r2)) = hpl_sim::stats::linear_fit(&xs, &times) {
        let _ = writeln!(
            out,
            "fit: time = {intercept:.3}s + {:.3}ms x {name} (R2 = {r2:.3})",
            slope * 1e3
        );
    }
    opts.write_csv(csv, &to_csv((name, "exec_time_s"), &xs, &times));
    out
}

// -------------------------------------------------------------------
// Tables I and II — the twelve NAS configurations
// -------------------------------------------------------------------

/// All twelve NAS configurations under one scheduler.
fn run_nas_side(opts: &ExpOpts, sched: Scheduler, mode: SchedMode) -> Vec<(String, RunTable)> {
    hpl_workloads::nas::all_configs()
        .into_iter()
        .map(|(b, c)| {
            let label = format!("{}.{}.8", b.name(), c.name());
            let cfg = RunConfig::new(label.clone(), nas_job(b, c, 8), mode, sched)
                .with_reps(opts.reps)
                .with_seed(opts.seed);
            (label, run_many(&cfg))
        })
        .collect()
}

/// Table Ia (standard Linux) or Ib (HPL): scheduler-noise counters for
/// every benchmark.
pub fn table1(opts: &ExpOpts, hpl: bool) -> String {
    let (sched, mode, title) = if hpl {
        (
            Scheduler::Hpl,
            SchedMode::Hpc,
            "Table Ib — Scheduler OS noise, HPL",
        )
    } else {
        (
            Scheduler::StandardLinux,
            SchedMode::Cfs,
            "Table Ia — Scheduler OS noise, standard Linux",
        )
    };
    let rows = run_nas_side(opts, sched, mode);
    let mut out = format!(
        "{title} ({} reps)\n\n{}\n",
        opts.reps,
        report::table1_header()
    );
    for (label, table) in &rows {
        let _ = writeln!(out, "{}", report::table1_row(label, table));
    }
    out
}

/// Table II: execution times (min/avg/max and the paper's variation
/// percentage) for standard Linux vs HPL, all twelve configurations.
pub fn table2(opts: &ExpOpts) -> String {
    let std_rows = run_nas_side(opts, Scheduler::StandardLinux, SchedMode::Cfs);
    let hpl_rows = run_nas_side(opts, Scheduler::Hpl, SchedMode::Hpc);
    let mut out = format!(
        "Table II — NAS execution time: Std. Linux vs HPL (seconds, {} reps)\n\n{}\n",
        opts.reps,
        report::table2_header()
    );
    let mut var_sum = 0.0;
    for ((label, std), (_, hpl)) in std_rows.iter().zip(&hpl_rows) {
        let _ = writeln!(out, "{}", report::table2_row(label, std, hpl));
        var_sum += hpl.time_summary().variation_pct();
    }
    let _ = writeln!(
        out,
        "\nHPL average variation: {:.2}% (paper: 2.11%)",
        var_sum / std_rows.len() as f64
    );
    out
}

// -------------------------------------------------------------------
// Paper-vs-measured comparison (the EXPERIMENTS.md headline table)
// -------------------------------------------------------------------

/// Side-by-side comparison against the paper's published Tables Ia/Ib/II
/// (transcribed in `hpl_workloads::paper`), one row per configuration.
pub fn compare(opts: &ExpOpts) -> String {
    use hpl_workloads::paper;
    let std_rows = run_nas_side(opts, Scheduler::StandardLinux, SchedMode::Cfs);
    let hpl_rows = run_nas_side(opts, Scheduler::Hpl, SchedMode::Hpc);
    let mut out = format!(
        "Paper vs measured ({} reps; paper used 1000)\n\n\
         values: paper -> measured\n\n",
        opts.reps
    );
    let _ = writeln!(
        out,
        "| config | std var% | hpl var% | std mig avg | hpl mig avg | std cs avg | hpl cs avg |"
    );
    let _ = writeln!(
        out,
        "|--------|----------|----------|-------------|-------------|------------|------------|"
    );
    let mut hpl_var_sum = 0.0;
    for (((b, c), (label, std)), (_, hpl)) in hpl_workloads::nas::all_configs()
        .into_iter()
        .zip(&std_rows)
        .zip(&hpl_rows)
    {
        let p = paper::row(b, c);
        let st = std.time_summary();
        let ht = hpl.time_summary();
        hpl_var_sum += ht.variation_pct();
        let _ = writeln!(
            out,
            "| {label} | {:.0} -> {:.0} | {:.2} -> {:.2} | {:.0} -> {:.0} | {:.1} -> {:.1} | {:.0} -> {:.0} | {:.0} -> {:.0} |",
            p.std_time.var_pct,
            st.variation_pct(),
            p.hpl_time.var_pct,
            ht.variation_pct(),
            p.std_migrations.avg,
            std.migration_summary().mean(),
            p.hpl_migrations.avg,
            hpl.migration_summary().mean(),
            p.std_switches.avg,
            std.switch_summary().mean(),
            p.hpl_switches.avg,
            hpl.switch_summary().mean(),
        );
    }
    let _ = writeln!(
        out,
        "\nHPL average variation: paper {:.2}% -> measured {:.2}%",
        paper::hpl_avg_variation_pct(),
        hpl_var_sum / std_rows.len() as f64
    );
    out
}

// -------------------------------------------------------------------
// Extension B — ablations
// -------------------------------------------------------------------

/// Ablation study over the design choices DESIGN.md calls out: class
/// priority alone vs balancing suppression vs static pinning vs NETTICK.
pub fn ablate(opts: &ExpOpts) -> String {
    let mut out =
        String::from("Ablations — ep.A.8 and cg.A.8 execution time under scheduler variants\n\n");
    let variants: [(&str, Scheduler, SchedMode); 7] = [
        ("std-cfs", Scheduler::StandardLinux, SchedMode::Cfs),
        (
            "std-nice-19",
            Scheduler::StandardLinux,
            SchedMode::CfsNice { nice: -19 },
        ),
        ("std-pinned", Scheduler::StandardLinux, SchedMode::CfsPinned),
        (
            "std-rt",
            Scheduler::StandardLinux,
            SchedMode::Rt { prio: 50 },
        ),
        ("hpl-balance-on", Scheduler::HplBalanceOn, SchedMode::Hpc),
        ("hpl", Scheduler::Hpl, SchedMode::Hpc),
        ("hpl-tickless", Scheduler::HplTickless, SchedMode::Hpc),
    ];
    for (bench, class) in [
        (NasBenchmark::Ep, NasClass::A),
        (NasBenchmark::Cg, NasClass::A),
    ] {
        let _ = writeln!(out, "--- {}.{}.8 ---", bench.name(), class.name());
        for (name, sched, mode) in variants {
            let cfg = RunConfig::new(
                format!("{}.{}.8-{name}", bench.name(), class.name()),
                nas_job(bench, class, 8),
                mode,
                sched,
            )
            .with_reps(opts.reps)
            .with_seed(opts.seed);
            let t = run_many(&cfg);
            let _ = writeln!(out, "{}", report::summary_line(name, &t.time_summary()));
            let _ = writeln!(
                out,
                "{:32} avg migrations {:>8.1}   avg switches {:>8.1}",
                "",
                t.migration_summary().mean(),
                t.switch_summary().mean()
            );
        }
        out.push('\n');
    }
    out
}

// -------------------------------------------------------------------
// Extension C — noise-injection sensitivity
// -------------------------------------------------------------------

/// Ferreira-style injection sweep: a fixed-work-quantum probe under
/// controlled per-CPU noise of varying period and duration, for the
/// standard and HPL schedulers. Shows the resonance the literature
/// describes: noise hurts most when its granularity matches the
/// application's.
pub fn noise_sweep(opts: &ExpOpts) -> String {
    let mut out = String::from(
        "Noise injection — probe slowdown vs injected noise (std vs HPL)\n\
         probe: 8 ranks x 200 iterations x 1 ms quantum\n\n",
    );
    let _ = writeln!(
        out,
        "{:>10} {:>10} | {:>12} {:>12}",
        "period", "duration", "std slowdown", "hpl slowdown"
    );
    let probe = || noise_probe_job(8, 200, SimDuration::from_millis(1));
    // Ideal time: measured once on a quiet standard node.
    let ideal_cfg = RunConfig::new(
        "probe-ideal",
        probe(),
        SchedMode::Cfs,
        Scheduler::StandardLinux,
    )
    .with_reps(3)
    .with_seed(opts.seed)
    .with_noise(NoiseKind::Quiet);
    let ideal = run_many(&ideal_cfg).time_summary().min();
    let sweeps = [
        (SimDuration::from_millis(10), SimDuration::from_micros(25)),
        (SimDuration::from_millis(10), SimDuration::from_micros(250)),
        (SimDuration::from_millis(100), SimDuration::from_millis(2)),
        (SimDuration::from_millis(1000), SimDuration::from_millis(25)),
    ];
    let reps = opts.reps.clamp(5, 30);
    for (period, duration) in sweeps {
        let noise = NoiseKind::Injection { period, duration };
        let std_cfg = RunConfig::new(
            "probe-std",
            probe(),
            SchedMode::Cfs,
            Scheduler::StandardLinux,
        )
        .with_reps(reps)
        .with_seed(opts.seed)
        .with_noise(noise.clone());
        let hpl_cfg = RunConfig::new("probe-hpl", probe(), SchedMode::Hpc, Scheduler::Hpl)
            .with_reps(reps)
            .with_seed(opts.seed)
            .with_noise(noise);
        let std_t = run_many(&std_cfg).time_summary().mean();
        let hpl_t = run_many(&hpl_cfg).time_summary().mean();
        let _ = writeln!(
            out,
            "{:>10} {:>10} | {:>12.3} {:>12.3}",
            format!("{period}"),
            format!("{duration}"),
            std_t / ideal,
            hpl_t / ideal
        );
    }
    let _ = writeln!(
        out,
        "\nslowdown = mean probe time / quiet-machine time ({ideal:.3}s).\n\
         HPL's class priority hides injected CFS noise almost entirely."
    );
    out
}

// -------------------------------------------------------------------
// Extension A — multi-node noise resonance
// -------------------------------------------------------------------

/// Noise resonance at cluster scale: per-phase distributions measured on
/// the single-node simulator (std vs HPL), amplified by the
/// max-over-nodes model of `hpl-cluster`.
pub fn resonance(opts: &ExpOpts) -> String {
    let mut out = String::from(
        "Noise resonance — projected slowdown vs node count\n\
         (per-phase times measured on the single-node simulator)\n\n",
    );
    // Measure per-phase (iteration) durations with a barrier probe.
    let phase_times = |sched: Scheduler, mode: SchedMode| -> Vec<f64> {
        let mut samples = Vec::new();
        let n_nodes_measured = opts.reps.clamp(5, 40);
        for rep in 0..n_nodes_measured {
            let seed = Rng::for_run(opts.seed ^ 0xC0FFEE, rep as u64).next_u64();
            let job = noise_probe_job(8, 40, SimDuration::from_millis(5));
            let barrier = job.barrier_id();
            let mut node = match sched {
                Scheduler::Hpl => hpl_core::hpl_node_builder(Topology::power6_js22())
                    .with_noise(NoiseProfile::standard(8))
                    .with_seed(seed)
                    .build(),
                _ => NodeBuilder::new(Topology::power6_js22())
                    .with_noise(NoiseProfile::standard(8))
                    .with_seed(seed)
                    .build(),
            };
            node.run_for(SimDuration::from_millis(400));
            let handle = launch(&mut node, &job, mode);
            let mut last_gen = node.sync.barrier_generation(barrier);
            let mut last_t = node.now();
            while node.tasks.get(handle.perf_pid).state != hpl_kernel::TaskState::Dead {
                assert!(node.step());
                let gen = node.sync.barrier_generation(barrier);
                if gen > last_gen {
                    // Skip the init and finalize barrier crossings (first
                    // and last generations) — they are not compute phases.
                    if last_gen > 0 {
                        samples.push(node.now().since(last_t).as_secs_f64());
                    }
                    last_gen = gen;
                    last_t = node.now();
                }
            }
        }
        samples
    };
    let std_samples = phase_times(Scheduler::StandardLinux, SchedMode::Cfs);
    let hpl_samples = phase_times(Scheduler::Hpl, SchedMode::Hpc);
    let phases = 500;
    let std_model = ResonanceModel::new(EmpiricalDist::new(std_samples), phases);
    let hpl_model = ResonanceModel::new(EmpiricalDist::new(hpl_samples), phases);
    let nodes = [1u32, 4, 16, 64, 256, 1024, 4096];
    let rows = compare_configs(&std_model, &hpl_model, &nodes, 30, opts.seed);
    let _ = writeln!(
        out,
        "{:>6} | {:>12} | {:>12} | {:>8}",
        "nodes", "std time (s)", "hpl time (s)", "std/hpl"
    );
    for (n, a, b) in rows {
        let _ = writeln!(out, "{n:>6} | {a:>12.3} | {b:>12.3} | {:>8.2}", a / b);
    }
    let _ = writeln!(
        out,
        "\nPer-node noise that is marginal at N=1 compounds at scale: every\n\
         phase waits for the unluckiest node (the paper's §II 'noise\n\
         resonance'; cf. Petrini et al.'s 1.87x at 8k processors)."
    );
    out
}

// -------------------------------------------------------------------
// Extension E — strong scaling (the paper's §III motivation)
// -------------------------------------------------------------------

/// Strong-scaling study: the same total problem on 1, 2, 4, 8 ranks
/// under standard Linux and HPL. The paper's §III argument is that OS
/// noise is a *scalability* problem: the more processors synchronise,
/// the more often the slowest one is noise-delayed. With 8 ranks the
/// node is also SMT-saturated, so the standard scheduler's daemons can
/// only run by displacing a rank.
pub fn scaling(opts: &ExpOpts) -> String {
    let mut out =
        String::from("Strong scaling — cg.A total work on 1/2/4/8 ranks (mean of reps)\n\n");
    let _ = writeln!(
        out,
        "{:>6} | {:>12} {:>9} | {:>12} {:>9} | {:>9}",
        "ranks", "std time (s)", "speedup", "hpl time (s)", "speedup", "hpl gain"
    );
    let reps = opts.reps.clamp(3, 50);
    let mut base: Option<(f64, f64)> = None;
    for nprocs in [1u32, 2, 4, 8] {
        let job = nas_job(NasBenchmark::Cg, NasClass::A, nprocs);
        let mut std_sum = 0.0;
        let mut hpl_sum = 0.0;
        for rep in 0..reps {
            let std_cfg = RunConfig::new(
                format!("cg.A.{nprocs}-std"),
                job.clone(),
                SchedMode::Cfs,
                Scheduler::StandardLinux,
            )
            .with_reps(1)
            .with_seed(opts.seed ^ (nprocs as u64) << 8);
            let hpl_cfg = RunConfig::new(
                format!("cg.A.{nprocs}-hpl"),
                job.clone(),
                SchedMode::Hpc,
                Scheduler::Hpl,
            )
            .with_reps(1)
            .with_seed(opts.seed ^ (nprocs as u64) << 8);
            std_sum += crate::harness::run_once(&std_cfg, rep as u64).exec_time_s;
            hpl_sum += crate::harness::run_once(&hpl_cfg, rep as u64).exec_time_s;
        }
        let n = reps as f64;
        let (std_t, hpl_t) = (std_sum / n, hpl_sum / n);
        let (std_base, hpl_base) = *base.get_or_insert((std_t, hpl_t));
        let _ = writeln!(
            out,
            "{:>6} | {:>12.3} {:>8.2}x | {:>12.3} {:>8.2}x | {:>8.1}%",
            nprocs,
            std_t,
            std_base / std_t,
            hpl_t,
            hpl_base / hpl_t,
            (std_t / hpl_t - 1.0) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\nhpl gain = how much slower standard Linux runs the same job. The\n\
         gap widens with rank count: more synchronising processes give the\n\
         daemons more chances to delay the critical path (§III)."
    );
    out
}

// -------------------------------------------------------------------
// Extension G — HPL vs an idealised lightweight kernel
// -------------------------------------------------------------------

/// The paper's thesis is that a customised monolithic kernel can
/// "behave like a micro-kernel". This experiment quantifies the residual
/// gap: ep.A.8 and cg.A.8 under (a) standard Linux with daemons, (b) HPL
/// with the same daemons, and (c) an idealised CNK-style lightweight
/// kernel — no daemons, tickless, static placement. HPL should land
/// within a fraction of a percent of (c) despite hosting the full
/// daemon population.
pub fn lwk(opts: &ExpOpts) -> String {
    let mut out =
        String::from("HPL vs lightweight kernel — residual noise of a full Linux stack\n\n");
    let _ = writeln!(
        out,
        "{:>8} | {:>14} | {:>10} | {:>10} | {:>8} | {:>9}",
        "bench", "kernel", "min (s)", "avg (s)", "var %", "vs LWK"
    );
    let reps = opts.reps.clamp(5, 200);
    for (bench, class) in [
        (NasBenchmark::Ep, NasClass::A),
        (NasBenchmark::Cg, NasClass::A),
    ] {
        let mut lwk_avg = None;
        for (name, sched, mode, noise) in [
            (
                "lwk (quiet)",
                Scheduler::Lwk,
                SchedMode::Hpc,
                NoiseKind::Quiet,
            ),
            ("hpl", Scheduler::Hpl, SchedMode::Hpc, NoiseKind::Standard),
            (
                "std-linux",
                Scheduler::StandardLinux,
                SchedMode::Cfs,
                NoiseKind::Standard,
            ),
        ] {
            let cfg = RunConfig::new(
                format!("{}.{}.8-{name}", bench.name(), class.name()),
                nas_job(bench, class, 8),
                mode,
                sched,
            )
            .with_reps(reps)
            .with_seed(opts.seed)
            .with_noise(noise);
            let t = run_many(&cfg).time_summary();
            let base = *lwk_avg.get_or_insert(t.mean());
            let _ = writeln!(
                out,
                "{:>8} | {:>14} | {:>10.3} | {:>10.3} | {:>8.2} | {:>+8.2}%",
                format!("{}.{}", bench.name(), class.name()),
                name,
                t.min(),
                t.mean(),
                t.variation_pct(),
                (t.mean() / base - 1.0) * 100.0
            );
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "vs LWK = mean slowdown against the idealised lightweight kernel.\n\
         HPL hosts the full daemon population yet tracks the LWK within a\n\
         fraction of a percent — the paper's \"monolithic kernel that\n\
         behaves like a micro-kernel\"."
    );
    out
}

// -------------------------------------------------------------------
// Extension F — topology ablation (shared last-level cache)
// -------------------------------------------------------------------

/// The paper's POWER6 shares no cache between cores, so HPL judges that
/// dynamic balancing "induced overheads exceed benefits" and disables it
/// entirely. This ablation asks: how machine-specific is that judgement?
/// The same workload runs on the js22 and on an x86-flavoured machine
/// whose socket-wide L3 retains most of a migrated task's warmth.
pub fn topo_ablate(opts: &ExpOpts) -> String {
    let mut out = String::from("Topology ablation — migration cost vs cache sharing (cg.A.8)\n\n");
    let _ = writeln!(
        out,
        "{:>22} | {:>10} | {:>10} | {:>10} | {:>8}",
        "machine / scheduler", "min (s)", "avg (s)", "max (s)", "var %"
    );
    let reps = opts.reps.clamp(5, 120);
    // Both machines have 8 hardware threads (2 sockets x 2 cores x 2
    // SMT); they differ only in whether a socket-wide L3 exists, so any
    // difference is purely the migration-cost model.
    let with_l3 = Topology::new(
        "x86ish-2s2c2t",
        2,
        2,
        2,
        vec![
            hpl_topology::CacheLevel {
                level: 1,
                scope: hpl_topology::CacheScope::Core,
                size_bytes: 64 * 1024,
            },
            hpl_topology::CacheLevel {
                level: 3,
                scope: hpl_topology::CacheScope::Socket,
                size_bytes: 12 * 1024 * 1024,
            },
        ],
    );
    for (mname, topo) in [
        ("power6-js22 (no L3)", Topology::power6_js22()),
        ("x86ish-2s2c2t (shared L3)", with_l3),
    ] {
        for (sname, sched, mode) in [
            ("std", Scheduler::StandardLinux, SchedMode::Cfs),
            ("hpl", Scheduler::Hpl, SchedMode::Hpc),
        ] {
            let mut cfg = RunConfig::new(
                format!("{mname}/{sname}"),
                nas_job(NasBenchmark::Cg, NasClass::A, 8),
                mode,
                sched,
            )
            .with_reps(reps)
            .with_seed(opts.seed);
            cfg.topo = topo.clone();
            let t = run_many(&cfg).time_summary();
            let _ = writeln!(
                out,
                "{:>22}/{:<3} | {:>10.3} | {:>10.3} | {:>10.3} | {:>8.2}",
                mname,
                sname,
                t.min(),
                t.mean(),
                t.max(),
                t.variation_pct()
            );
        }
    }
    let _ = writeln!(
        out,
        "\nA shared L3 softens each migration (warmth partially survives), so\n\
         standard Linux loses less on the xeon-flavoured machine — the paper's\n\
         point that the balancing trade-off is a function of the topology,\n\
         which is why HPL reads it from the machine description."
    );
    out
}

// -------------------------------------------------------------------
// Extension H — co-scheduling two applications
// -------------------------------------------------------------------

/// Two 4-rank jobs sharing one node. The paper argues the OS should
/// schedule *applications*, not processes; this experiment shows what
/// that buys when applications must share: under CFS the two jobs'
/// ranks interleave at millisecond granularity (every switch pays cache
/// eviction), while the HPC class round-robins whole 100 ms slices, so
/// each job runs long cache-warm bursts.
pub fn coschedule(opts: &ExpOpts) -> String {
    let mut out = String::from("Co-scheduling — two 8-rank jobs (ep-like) sharing one node\n\n");
    let _ = writeln!(
        out,
        "{:>10} | {:>12} | {:>12} | {:>10} | {:>10}",
        "scheduler", "job A (s)", "job B (s)", "switches", "fairness"
    );
    let reps = opts.reps.clamp(3, 40);
    // Two full-width jobs: 16 ranks on 8 hardware threads force genuine
    // time-sharing between the applications.
    let mk_job = |base: u64| {
        JobSpec::new(
            8,
            JobSpec::repeat(
                8,
                &[
                    MpiOp::Compute {
                        mean: SimDuration::from_millis(25),
                    },
                    MpiOp::Allreduce { bytes: 64 },
                ],
            ),
        )
        .with_id_base(base)
    };
    for (name, hpl_mode, mode) in [
        ("std-cfs", false, SchedMode::Cfs),
        ("hpl", true, SchedMode::Hpc),
    ] {
        let mut a_sum = 0.0;
        let mut b_sum = 0.0;
        let mut switches = 0u64;
        for rep in 0..reps {
            let seed = Rng::for_run(opts.seed ^ 0xC05C, rep as u64).next_u64();
            let mut node = if hpl_mode {
                hpl_core::hpl_node_builder(Topology::power6_js22())
                    .with_noise(NoiseProfile::standard(8))
                    .with_seed(seed)
                    .build()
            } else {
                NodeBuilder::new(Topology::power6_js22())
                    .with_noise(NoiseProfile::standard(8))
                    .with_seed(seed)
                    .build()
            };
            node.run_for(SimDuration::from_millis(400));
            let mut session = hpl_perf::PerfSession::open(&node.counters, node.now());
            let ha = launch(&mut node, &mk_job(0), mode);
            let hb = launch(&mut node, &mk_job(1_000_000), mode);
            assert!(node
                .run_until_exit(ha.perf_pid, 40_000_000_000)
                .is_complete());
            assert!(node
                .run_until_exit(hb.perf_pid, 40_000_000_000)
                .is_complete());
            session.close(&node.counters, node.now());
            let ta = node
                .tasks
                .get(ha.mpiexec_pid)
                .exited_at
                .expect("job A done")
                .since(ha.launched_at)
                .as_secs_f64();
            let tb = node
                .tasks
                .get(hb.mpiexec_pid)
                .exited_at
                .expect("job B done")
                .since(hb.launched_at)
                .as_secs_f64();
            a_sum += ta;
            b_sum += tb;
            switches += session.delta().sw(hpl_perf::SwEvent::ContextSwitches);
        }
        let n = reps as f64;
        let (ta, tb) = (a_sum / n, b_sum / n);
        let _ = writeln!(
            out,
            "{:>10} | {:>12.3} | {:>12.3} | {:>10.0} | {:>10.3}",
            name,
            ta,
            tb,
            switches as f64 / n,
            ta.min(tb) / ta.max(tb)
        );
    }
    let _ = writeln!(
        out,
        "\nfairness = min/max of the two makespans (1.0 = perfectly even).\n\
         With 16 ranks on 8 threads both kernels must time-share; the HPC\n\
         class's coarse round-robin keeps caches warm, CFS's fine\n\
         interleaving plus daemon traffic does not."
    );
    out
}

// -------------------------------------------------------------------
// Extension I — user-level scheduler comparison (§IV / Catamount PCT)
// -------------------------------------------------------------------

/// §IV's critique of "sophisticated run-time systems [that] dynamically
/// change thread-to-core bindings": a user-level scheduler task that
/// wakes periodically, re-evaluates, and re-pins every rank via
/// `sched_setaffinity`. It pays syscall overhead on every cycle, it
/// perturbs the kernel balancer, and when its placement heuristic
/// "re-balances" (here: rotate one pair with some probability) it
/// invalidates warm caches — while the kernel-level HPL class gets the
/// same protection for free.
pub fn uls(opts: &ExpOpts) -> String {
    use hpl_kernel::{FnProgram, Pid, Step, TaskSpec};
    use hpl_topology::{CpuId, CpuMask};
    let mut out =
        String::from("User-level scheduler — periodic re-pinning vs kernel-level HPL (ep.A.8)\n\n");
    let _ = writeln!(
        out,
        "{:>16} | {:>10} | {:>10} | {:>8} | {:>10}",
        "scheduler", "min (s)", "avg (s)", "var %", "migrations"
    );
    let reps = opts.reps.clamp(5, 60);
    let job = || nas_job(NasBenchmark::Ep, NasClass::A, 8);

    // Reference rows reuse the harness.
    for (name, sched, mode) in [
        ("std-pinned", Scheduler::StandardLinux, SchedMode::CfsPinned),
        ("hpl", Scheduler::Hpl, SchedMode::Hpc),
    ] {
        let cfg = RunConfig::new(format!("ep.A.8-{name}"), job(), mode, sched)
            .with_reps(reps)
            .with_seed(opts.seed);
        let t = run_many(&cfg);
        let ts = t.time_summary();
        let _ = writeln!(
            out,
            "{:>16} | {:>10.3} | {:>10.3} | {:>8.2} | {:>10.1}",
            name,
            ts.min(),
            ts.mean(),
            ts.variation_pct(),
            t.migration_summary().mean()
        );
    }

    // The user-level scheduler row needs a custom driver.
    let mut times = Vec::new();
    let mut migs = Vec::new();
    for rep in 0..reps {
        let seed = Rng::for_run(opts.seed ^ 0x0715, rep as u64).next_u64();
        let mut node = NodeBuilder::new(Topology::power6_js22())
            .with_noise(NoiseProfile::standard(8))
            .with_seed(seed)
            .build();
        node.run_for(SimDuration::from_millis(400));
        let mut session = hpl_perf::PerfSession::open(&node.counters, node.now());
        let handle = launch(&mut node, &job(), SchedMode::Cfs);
        // Wait for all ranks to exist, then start the manager.
        node.run_for(SimDuration::from_millis(5));
        let ranks: Vec<Pid> = node
            .tasks
            .iter()
            .filter(|t| t.name.starts_with("rank"))
            .map(|t| t.pid)
            .collect();
        let mut pin: Vec<u32> = (0..ranks.len() as u32).collect();
        let mut step_idx = 0usize;
        let manager = FnProgram::boxed("uls-manager", move |ctx| {
            // Cycle: sleep, syscall overhead, re-pin all ranks.
            let phase = step_idx % (ranks.len() + 2);
            step_idx += 1;
            match phase {
                0 => Step::Sleep(SimDuration::from_millis(100)),
                1 => {
                    // Placement heuristic runs; occasionally "rebalances"
                    // by rotating the pin map.
                    if ctx.rng.chance(0.3) {
                        pin.rotate_right(1);
                    }
                    Step::Compute(SimDuration::from_micros(150))
                }
                k => Step::SetAffinity {
                    target: Some(ranks[k - 2]),
                    mask: CpuMask::single(CpuId(pin[k - 2] % 8)),
                },
            }
        });
        node.spawn(TaskSpec::new(
            "uls-manager",
            hpl_kernel::Policy::Normal { nice: -5 },
            manager,
        ));
        let exec = handle.run_to_completion(&mut node, 40_000_000_000);
        session.close(&node.counters, node.now());
        times.push(exec.as_secs_f64());
        migs.push(session.delta().sw(hpl_perf::SwEvent::CpuMigrations) as f64);
    }
    let ts = hpl_sim::stats::Summary::from_slice(&times);
    let ms = hpl_sim::stats::Summary::from_slice(&migs);
    let _ = writeln!(
        out,
        "{:>16} | {:>10.3} | {:>10.3} | {:>8.2} | {:>10.1}",
        "user-level sched",
        ts.min(),
        ts.mean(),
        ts.variation_pct(),
        ms.mean()
    );
    let _ = writeln!(
        out,
        "\nThe manager's syscall cycles and rotation 'rebalances' show up as\n\
         migrations and cold caches; §IV: user-level scheduling pays \"repeated\n\
         system call invocations\" and still races the kernel's own scheduler,\n\
         while HPL does the same job below the syscall boundary."
    );
    out
}

// -------------------------------------------------------------------
// Extension J — interrupt noise (the limit of scheduler-level fixes)
// -------------------------------------------------------------------

/// Device interrupts preempt every scheduling class, so HPL cannot hide
/// them — the boundary of the paper's approach, and the reason the
/// related work (Mann & Mittal) reaches for interrupt *redirection*.
/// This experiment puts a NIC-style IRQ load on the node three ways:
/// default Linux routing (everything to cpu0), irqbalance-style spread,
/// and redirected to one SMT thread left idle by running only 7 ranks —
/// the Mann & Mittal configuration.
pub fn irq(opts: &ExpOpts) -> String {
    use hpl_kernel::noise::IrqSpec;
    use hpl_topology::{CpuId, CpuMask};
    let mut out = String::from("Interrupt noise — 8 kHz x 15 us NIC-style IRQ load (ep.A)\n\n");
    let _ = writeln!(
        out,
        "{:>10} | {:>22} | {:>10} | {:>10} | {:>8}",
        "scheduler", "irq routing", "min (s)", "avg (s)", "var %"
    );
    let reps = opts.reps.clamp(5, 60);
    let spec = |mask: CpuMask| IrqSpec {
        rate_hz: 8000.0,
        cost: SimDuration::from_micros(15),
        affinity: mask,
    };
    for (sname, sched, mode) in [
        ("std-cfs", Scheduler::StandardLinux, SchedMode::Cfs),
        ("hpl", Scheduler::Hpl, SchedMode::Hpc),
    ] {
        for (rname, mask, nprocs) in [
            ("cpu0 (default)", CpuMask::single(CpuId(0)), 8u32),
            ("spread (irqbalance)", CpuMask::first_n(8), 8),
            ("redirected, 7 ranks", CpuMask::single(CpuId(1)), 7),
        ] {
            let noise = NoiseProfile::standard(8).with_irq(spec(mask));
            let job = nas_job(NasBenchmark::Ep, NasClass::A, nprocs);
            // The harness's NoiseKind cannot carry an IrqSpec, so drive
            // the repetitions directly.
            let mut times = Vec::new();
            for rep in 0..reps {
                let seed = Rng::for_run(opts.seed ^ 0x1209, rep as u64).next_u64();
                let mut node = match sched {
                    Scheduler::Hpl => hpl_core::hpl_node_builder(Topology::power6_js22()),
                    _ => NodeBuilder::new(Topology::power6_js22()),
                }
                .with_noise(noise.clone())
                .with_seed(seed)
                .build();
                node.run_for(SimDuration::from_millis(400));
                let handle = launch(&mut node, &job, mode);
                times.push(
                    handle
                        .run_to_completion(&mut node, 40_000_000_000)
                        .as_secs_f64(),
                );
            }
            let ts = hpl_sim::stats::Summary::from_slice(&times);
            let _ = writeln!(
                out,
                "{:>10} | {:>22} | {:>10.3} | {:>10.3} | {:>8.2}",
                sname,
                rname,
                ts.min(),
                ts.mean(),
                ts.variation_pct()
            );
        }
    }
    let _ = writeln!(
        out,
        "\nIRQs outrank every class: HPL gains nothing against cpu0-routed\n\
         interrupts. Redirecting them to a dedicated thread (and giving up\n\
         one rank) removes the noise at a capacity price — Mann & Mittal's\n\
         trade, orthogonal to the paper's scheduler fix."
    );
    out
}

// -------------------------------------------------------------------
// Extension D — the power dimension (the paper's future work)
// -------------------------------------------------------------------

/// Energy accounting per scheduler: execution time, energy, mean power,
/// utilisation and energy-delay product for ep.A.8 — quantifying the
/// power cost/benefit of HPL's "spin hot, never migrate" policy.
pub fn energy(opts: &ExpOpts) -> String {
    use hpl_kernel::power::{energy_delay_product, energy_of_window, PowerModel};
    let mut out = String::from("Energy — ep.A.8 per scheduler (POWER6-flavoured power model)\n\n");
    let _ = writeln!(
        out,
        "{:>12} | {:>9} | {:>9} | {:>8} | {:>6} | {:>10}",
        "scheduler", "time (s)", "energy J", "mean W", "util", "EDP (J*s)"
    );
    let model = PowerModel::default();
    let reps = opts.reps.clamp(3, 30);
    for (name, sched, mode) in [
        ("std-cfs", Scheduler::StandardLinux, SchedMode::Cfs),
        (
            "std-rt",
            Scheduler::StandardLinux,
            SchedMode::Rt { prio: 50 },
        ),
        ("hpl", Scheduler::Hpl, SchedMode::Hpc),
        ("hpl-tickless", Scheduler::HplTickless, SchedMode::Hpc),
    ] {
        let mut time_sum = 0.0;
        let mut joules = 0.0;
        let mut watts = 0.0;
        let mut util = 0.0;
        let mut edp = 0.0;
        for rep in 0..reps {
            let seed = Rng::for_run(opts.seed ^ 0xE0E0, rep as u64).next_u64();
            let mut node = match sched {
                Scheduler::Hpl => hpl_core::hpl_node_builder(Topology::power6_js22()),
                Scheduler::HplTickless => {
                    let mut kc = hpl_kernel::KernelConfig::hpl();
                    kc.tickless_single_hpc = true;
                    NodeBuilder::new(Topology::power6_js22())
                        .with_config(kc)
                        .with_hpc_class(Box::new(hpl_core::HplClass::new()))
                }
                _ => NodeBuilder::new(Topology::power6_js22()),
            }
            .with_noise(NoiseProfile::standard(8))
            .with_seed(seed)
            .build();
            node.run_for(SimDuration::from_millis(400));
            let mut session = hpl_perf::PerfSession::open(&node.counters, node.now());
            let handle = launch(&mut node, &nas_job(NasBenchmark::Ep, NasClass::A, 8), mode);
            let exec = handle.run_to_completion(&mut node, 40_000_000_000);
            session.close(&node.counters, node.now());
            let busy = session.delta().hw(hpl_perf::HwEvent::BusyNs);
            let wall = SimDuration::from_secs_f64(session.elapsed_secs());
            let report = energy_of_window(&model, &node.topo, busy, wall);
            time_sum += exec.as_secs_f64();
            joules += report.total_joules;
            watts += report.mean_watts;
            util += report.utilisation;
            edp += energy_delay_product(&report, exec);
        }
        let n = reps as f64;
        let _ = writeln!(
            out,
            "{:>12} | {:>9.3} | {:>9.1} | {:>8.2} | {:>5.1}% | {:>10.1}",
            name,
            time_sum / n,
            joules / n,
            watts / n,
            util / n * 100.0,
            edp / n
        );
    }
    let _ = writeln!(
        out,
        "\nHPL finishes sooner at near-identical utilisation, so it wins on\n\
         energy-delay product; the tickless variant shaves the residual\n\
         tick overhead (NETTICK's contribution)."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOpts {
        ExpOpts {
            reps: 3,
            seed: 1,
            out_dir: None,
        }
    }

    #[test]
    fn fig1_shows_iterations() {
        let out = fig1(&tiny_opts());
        assert!(out.contains("iteration"));
        assert!(out.lines().count() > 12);
    }

    #[test]
    fn fig3_reports_correlation() {
        let out = fig3(&tiny_opts(), Fig3Panel::Migrations);
        assert!(out.contains("Pearson"));
    }

    #[test]
    fn csv_written_when_out_dir_set() {
        let dir = std::env::temp_dir().join(format!("hpl-exp-{}", std::process::id()));
        let opts = ExpOpts {
            reps: 3,
            seed: 1,
            out_dir: Some(dir.clone()),
        };
        let _ = fig2(&opts);
        assert!(dir.join("fig2.csv").exists());
        let _ = std::fs::remove_dir_all(dir);
    }
}
