//! Table rendering in the paper's format.

use hpl_perf::RunTable;
use hpl_sim::stats::Summary;
use std::fmt::Write as _;

/// One row of Table I (min/avg/max of migrations and switches).
pub fn table1_row(label: &str, t: &RunTable) -> String {
    let m = t.migration_summary();
    let c = t.switch_summary();
    format!(
        "| {label:8} | {:>5.0} | {:>8.2} | {:>6.0} | {:>6.0} | {:>8.2} | {:>6.0} |",
        m.min(),
        m.mean(),
        m.max(),
        c.min(),
        c.mean(),
        c.max()
    )
}

/// Header for Table I.
pub fn table1_header() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| Bench    |        CPU Migrations        |       Context Switches       |"
    );
    let _ = writeln!(
        s,
        "|          |  Min. |     Avg. |   Max. |   Min. |     Avg. |   Max. |"
    );
    let _ = write!(
        s,
        "|----------|-------|----------|--------|--------|----------|--------|"
    );
    s
}

/// One row of Table II (time min/avg/max + variation %) for a pair of
/// schedulers.
pub fn table2_row(label: &str, std: &RunTable, hpl: &RunTable) -> String {
    let s = std.time_summary();
    let h = hpl.time_summary();
    format!(
        "| {label:8} | {:>7.2} | {:>7.2} | {:>7.2} | {:>8.2} | {:>7.2} | {:>7.2} | {:>7.2} | {:>7.2} |",
        s.min(),
        s.mean(),
        s.max(),
        s.variation_pct(),
        h.min(),
        h.mean(),
        h.max(),
        h.variation_pct()
    )
}

/// Header for Table II.
pub fn table2_header() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| Bench    |               Std. Linux               |                  HPL                |"
    );
    let _ = writeln!(
        s,
        "|          |    Min. |    Avg. |    Max. |   Var. % |    Min. |    Avg. |    Max. |  Var. % |"
    );
    let _ = write!(
        s,
        "|----------|---------|---------|---------|----------|---------|---------|---------|---------|"
    );
    s
}

/// Compact one-line summary used by ablations and sweeps.
pub fn summary_line(label: &str, s: &Summary) -> String {
    format!(
        "{label:32} min={:>9.4}  avg={:>9.4}  max={:>9.4}  var%={:>8.2}",
        s.min(),
        s.mean(),
        s.max(),
        s.variation_pct()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_perf::RunRecord;

    fn table() -> RunTable {
        RunTable::new(vec![
            RunRecord {
                run: 0,
                exec_time_s: 8.54,
                cpu_migrations: 29,
                context_switches: 550,
                involuntary_preemptions: 10,
                load_balance_calls: 5,
                outcome: hpl_perf::RunOutcome::Completed,
                metrics: None,
            },
            RunRecord {
                run: 1,
                exec_time_s: 14.59,
                cpu_migrations: 615,
                context_switches: 1886,
                involuntary_preemptions: 50,
                load_balance_calls: 9,
                outcome: hpl_perf::RunOutcome::Completed,
                metrics: None,
            },
        ])
    }

    #[test]
    fn table1_row_contains_stats() {
        let row = table1_row("ep.A.8", &table());
        assert!(row.contains("ep.A.8"));
        assert!(row.contains("29"));
        assert!(row.contains("615"));
        assert!(row.contains("1886"));
    }

    #[test]
    fn table2_row_contains_both_sides() {
        let t = table();
        let row = table2_row("ep.A.8", &t, &t);
        assert!(row.contains("8.54"));
        assert!(row.contains("14.59"));
        // var% = (14.59-8.54)/8.54*100 = 70.84
        assert!(row.contains("70.84"));
    }

    #[test]
    fn headers_are_aligned_tables() {
        assert!(table1_header().contains("CPU Migrations"));
        assert!(table2_header().contains("Std. Linux"));
    }
}
