//! # hpl-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper:
//!
//! | Experiment | Paper artefact | Function |
//! |---|---|---|
//! | `fig1`     | preemption timeline sketch | [`experiments::fig1`] |
//! | `fig2`     | ep.A.8 time histogram, std Linux | [`experiments::fig2`] |
//! | `fig3a/b`  | time vs migrations / switches | [`experiments::fig3`] |
//! | `fig4`     | ep.A.8 histogram, RT scheduler | [`experiments::fig4`] |
//! | `table1a/b`| scheduler noise counters | [`experiments::table1`] |
//! | `table2`   | execution times std vs HPL | [`experiments::table2`] |
//! | `ablate`   | design-choice ablations | [`experiments::ablate`] |
//! | `noise-sweep` | injection sensitivity | [`experiments::noise_sweep`] |
//! | `resonance`| multi-node amplification | [`experiments::resonance`] |
//!
//! [`harness`] drives repetitions (deterministic per `(seed, rep)`,
//! parallelised across host threads); [`report`] renders the paper-style
//! tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{run_many, run_once, NoiseKind, RunConfig, Scheduler};
