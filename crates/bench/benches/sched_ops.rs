//! Microbenchmarks of the scheduler-framework hot paths: the operations
//! the simulated kernel performs millions of times per experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpl_core::HplClass;
use hpl_kernel::cfs::CfsClass;
use hpl_kernel::rt::RtClass;
use hpl_kernel::{KernelConfig, Policy, SchedClass, SchedCtx, Task, TaskTable};
use hpl_sim::SimTime;
use hpl_topology::{CpuId, CpuMask, DomainHierarchy, Topology};

struct Fixture {
    cfg: KernelConfig,
    topo: Topology,
    domains: DomainHierarchy,
}

impl Fixture {
    fn new() -> Self {
        let topo = Topology::power6_js22();
        let domains = DomainHierarchy::build(&topo);
        Fixture {
            cfg: KernelConfig::default(),
            topo,
            domains,
        }
    }
    fn ctx(&self) -> SchedCtx<'_> {
        SchedCtx {
            now: SimTime::ZERO,
            cfg: &self.cfg,
            topo: &self.topo,
            domains: &self.domains,
        }
    }
}

fn tasks_with_policy(n: u32, policy: Policy) -> TaskTable {
    let mut tt = TaskTable::new();
    for i in 0..n {
        tt.alloc(|p| Task::new(p, format!("t{i}"), policy, CpuMask::first_n(8)));
    }
    tt
}

fn bench_cfs_enqueue_pick(c: &mut Criterion) {
    let fx = Fixture::new();
    c.bench_function("cfs/enqueue+pick 16 tasks", |b| {
        let mut tt = tasks_with_policy(16, Policy::Normal { nice: 0 });
        b.iter(|| {
            let mut cfs = CfsClass::new();
            cfs.init(8);
            let ctx = fx.ctx();
            for i in 0..16u32 {
                let pid = hpl_kernel::Pid(i);
                tt.get_mut(pid).vruntime = (i as u64) * 1000;
                cfs.enqueue(CpuId(0), tt.get_mut(pid), &ctx, false);
            }
            let mut picked = 0;
            while let Some(p) = cfs.pick_next(CpuId(0), &tt) {
                picked += black_box(p.0);
            }
            black_box(picked)
        })
    });
}

fn bench_rt_enqueue_pick(c: &mut Criterion) {
    let fx = Fixture::new();
    c.bench_function("rt/enqueue+pick 16 tasks", |b| {
        let mut tt = tasks_with_policy(16, Policy::Fifo(50));
        b.iter(|| {
            let mut rt = RtClass::new();
            rt.init(8);
            let ctx = fx.ctx();
            for i in 0..16u32 {
                rt.enqueue(CpuId(0), tt.get_mut(hpl_kernel::Pid(i)), &ctx, true);
            }
            let mut picked = 0;
            while let Some(p) = rt.pick_next(CpuId(0), &tt) {
                picked += black_box(p.0);
            }
            black_box(picked)
        })
    });
}

fn bench_hpl_fork_placement(c: &mut Criterion) {
    let fx = Fixture::new();
    let tt = tasks_with_policy(9, Policy::Hpc);
    let snap = hpl_kernel::LoadSnapshot {
        nr_running: vec![0; 8],
        curr_kind: vec![None; 8],
        curr_rt_prio: vec![0; 8],
    };
    c.bench_function("hpl/fork placement (topology-aware)", |b| {
        let mut hpl = HplClass::new();
        hpl.init(8);
        b.iter(|| {
            let ctx = fx.ctx();
            black_box(hpl.select_cpu_fork(tt.get(hpl_kernel::Pid(8)), CpuId(0), &ctx, &snap, &tt))
        })
    });
}

fn bench_domain_build(c: &mut Criterion) {
    c.bench_function("topology/domain hierarchy build (64 cpus)", |b| {
        let topo = Topology::new("big", 4, 8, 2, vec![]);
        b.iter(|| black_box(DomainHierarchy::build(&topo)))
    });
}

fn bench_mask_ops(c: &mut Criterion) {
    c.bench_function("cpumask/iter+algebra", |b| {
        let a = CpuMask::from_bits(0xF0F0_F0F0_F0F0_F0F0);
        let m = CpuMask::from_bits(0x00FF_00FF_00FF_00FF);
        b.iter(|| {
            let u = a.union(m).difference(CpuMask::single(CpuId(5)));
            black_box(u.iter().map(|c| c.0).sum::<u32>())
        })
    });
}

criterion_group!(
    benches,
    bench_cfs_enqueue_pick,
    bench_rt_enqueue_pick,
    bench_hpl_fork_placement,
    bench_domain_build,
    bench_mask_ops
);
criterion_main!(benches);
