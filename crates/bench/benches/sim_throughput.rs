//! Simulator throughput: how many simulated seconds per wall second the
//! event loop sustains — the number that decides how expensive the full
//! 1000-repetition reproduction is.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpl_kernel::noise::NoiseProfile;
use hpl_kernel::NodeBuilder;
use hpl_mpi::{launch, JobSpec, MpiOp, SchedMode};
use hpl_sim::SimDuration;
use hpl_topology::Topology;

fn bench_idle_node(c: &mut Criterion) {
    c.bench_function("node/idle+daemons 1 sim-second", |b| {
        b.iter(|| {
            let mut node = NodeBuilder::new(Topology::power6_js22())
                .with_noise(NoiseProfile::standard(8))
                .with_seed(1)
                .build();
            node.run_for(SimDuration::from_secs(1));
            black_box(node.now())
        })
    });
}

fn bench_busy_node(c: &mut Criterion) {
    let job = JobSpec::new(
        8,
        JobSpec::repeat(
            10,
            &[
                MpiOp::Compute {
                    mean: SimDuration::from_millis(8),
                },
                MpiOp::Allreduce { bytes: 64 },
            ],
        ),
    );
    c.bench_function("node/8-rank MPI job (~100 ms sim)", |b| {
        b.iter(|| {
            let mut node = NodeBuilder::new(Topology::power6_js22())
                .with_noise(NoiseProfile::standard(8))
                .with_seed(2)
                .build();
            node.run_for(SimDuration::from_millis(100));
            let handle = launch(&mut node, &job, SchedMode::Cfs);
            black_box(handle.run_to_completion(&mut node, 1_000_000_000))
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    use hpl_sim::{EventQueue, SimTime};
    c.bench_function("event-queue/push+pop 10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut acc = 0;
            while let Some((_, _, v)) = q.pop() {
                acc += v;
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_idle_node, bench_busy_node, bench_event_queue
}
criterion_main!(benches);
