//! Reduced-scale versions of the paper's experiments, so `cargo bench`
//! exercises every reproduction path end to end (the full-size runs live
//! in the `repro` binary). Each bench performs one complete measured
//! repetition of its experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpl_bench::{run_once, NoiseKind, RunConfig, Scheduler};
use hpl_mpi::SchedMode;
use hpl_sim::SimDuration;
use hpl_workloads::micro::noise_probe_job;
use hpl_workloads::{nas_job, NasBenchmark, NasClass};

fn cfg(label: &str, bench: NasBenchmark, sched: Scheduler, mode: SchedMode) -> RunConfig {
    RunConfig::new(label, nas_job(bench, NasClass::A, 8), mode, sched).with_reps(1)
}

/// Figure 2 path: one std-Linux repetition of is.A.8 (the shortest NAS
/// configuration, ~0.35 s simulated).
fn bench_fig2_path(c: &mut Criterion) {
    let conf = cfg(
        "is.A.8",
        NasBenchmark::Is,
        Scheduler::StandardLinux,
        SchedMode::Cfs,
    );
    c.bench_function("experiment/fig2 repetition (is.A.8, std)", |b| {
        let mut rep = 0u64;
        b.iter(|| {
            rep += 1;
            black_box(run_once(&conf, rep))
        })
    });
}

/// Figure 4 path: one RT repetition.
fn bench_fig4_path(c: &mut Criterion) {
    let conf = cfg(
        "is.A.8-rt",
        NasBenchmark::Is,
        Scheduler::StandardLinux,
        SchedMode::Rt { prio: 50 },
    );
    c.bench_function("experiment/fig4 repetition (is.A.8, RT)", |b| {
        let mut rep = 0u64;
        b.iter(|| {
            rep += 1;
            black_box(run_once(&conf, rep))
        })
    });
}

/// Table Ib / Table II HPL path: one HPL repetition.
fn bench_table_hpl_path(c: &mut Criterion) {
    let conf = cfg(
        "is.A.8-hpl",
        NasBenchmark::Is,
        Scheduler::Hpl,
        SchedMode::Hpc,
    );
    c.bench_function("experiment/table1b repetition (is.A.8, HPL)", |b| {
        let mut rep = 0u64;
        b.iter(|| {
            rep += 1;
            black_box(run_once(&conf, rep))
        })
    });
}

/// Ablation path: HPL with balancing left on.
fn bench_ablation_path(c: &mut Criterion) {
    let conf = cfg(
        "is.A.8-hbo",
        NasBenchmark::Is,
        Scheduler::HplBalanceOn,
        SchedMode::Hpc,
    );
    c.bench_function("experiment/ablation repetition (hpl-balance-on)", |b| {
        let mut rep = 0u64;
        b.iter(|| {
            rep += 1;
            black_box(run_once(&conf, rep))
        })
    });
}

/// Noise-injection path: probe under controlled injection.
fn bench_injection_path(c: &mut Criterion) {
    let conf = RunConfig::new(
        "probe",
        noise_probe_job(8, 50, SimDuration::from_millis(1)),
        SchedMode::Cfs,
        Scheduler::StandardLinux,
    )
    .with_noise(NoiseKind::Injection {
        period: SimDuration::from_millis(10),
        duration: SimDuration::from_micros(250),
    })
    .with_reps(1);
    c.bench_function("experiment/noise-injection repetition", |b| {
        let mut rep = 0u64;
        b.iter(|| {
            rep += 1;
            black_box(run_once(&conf, rep))
        })
    });
}

/// Resonance path: the cluster projection given a fixed distribution.
fn bench_resonance_path(c: &mut Criterion) {
    use hpl_cluster::{EmpiricalDist, ResonanceModel};
    let mut samples = vec![1.0; 95];
    samples.extend(vec![2.5; 5]);
    let model = ResonanceModel::new(EmpiricalDist::new(samples), 200);
    c.bench_function("experiment/resonance projection (1k nodes)", |b| {
        b.iter(|| black_box(model.expected_time(1024, 5, 3)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2_path,
        bench_fig4_path,
        bench_table_hpl_path,
        bench_ablation_path,
        bench_injection_path,
        bench_resonance_path
}
criterion_main!(benches);
