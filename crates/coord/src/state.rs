//! Per-node shared coordination state.
//!
//! One [`NodeCoordState`] per node plays the role of a shared-memory
//! segment (think `/dev/shm/coord`) that the arbiter daemon and every
//! cooperating rank map: jobs publish their existence and demand here,
//! the arbiter publishes nothing — leases are *derived*, not stored,
//! because the lease schedule is a pure function of the shared virtual
//! clock (the same [`hpl_kernel::gang`] arithmetic the in-kernel
//! weighted slicer uses). The mutex is uncontended in simulation terms:
//! a node's tasks are stepped by exactly one host thread per window, so
//! lock order cannot perturb results.

use hpl_kernel::ChanId;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Base of the channel-id range the coordination runtime reserves.
/// Job channel ids are dense near zero (see `JobSpec::id_range`), so a
/// 2^40 floor keeps the lease channels out of any plausible job range
/// without a registry.
pub const COORD_CHAN_BASE: u64 = 1 << 40;

/// The arbiter's doorbell: the first rank of each arriving job rings it
/// so an idle arbiter (no co-residency to arbitrate) wakes without
/// polling.
pub fn ctrl_chan() -> ChanId {
    ChanId(COORD_CHAN_BASE)
}

/// Per-gang lease channel: ranks of `gang` that find themselves outside
/// their slice block here; the arbiter deposits one token per waiter
/// when the gang's slice opens.
pub fn lease_chan(gang: u64) -> ChanId {
    ChanId(COORD_CHAN_BASE + 1 + gang)
}

/// Aggregate counters the runtime exposes for benches and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoordStats {
    /// Lease slices the arbiter opened (one per slice boundary it
    /// served while two or more jobs were co-resident).
    pub leases: u64,
    /// Wake tokens granted to blocked ranks, summed over all leases.
    pub grants: u64,
    /// Times a rank cooperatively yielded (blocked) at a phase
    /// boundary because its gang was outside its slice.
    pub blocks: u64,
}

impl CoordStats {
    /// Elementwise sum, for cluster-wide totals.
    pub fn merged(self, other: CoordStats) -> CoordStats {
        CoordStats {
            leases: self.leases + other.leases,
            grants: self.grants + other.grants,
            blocks: self.blocks + other.blocks,
        }
    }
}

/// One co-resident job (gang) as the node's coordination segment sees
/// it.
#[derive(Debug, Default)]
pub struct GangSlot {
    /// Live cooperating ranks of this gang on this node.
    pub ranks: u32,
    /// Ranks currently blocked on [`lease_chan`] awaiting the gang's
    /// slice.
    pub waiting: u32,
    /// Published milli-CPU share; 0 = never set, weigh the default
    /// 1000 (matching the kernel slicer's default weight).
    pub share_milli: u32,
}

/// The shared segment: gang table plus counters.
#[derive(Debug, Default)]
pub struct NodeCoordState {
    /// Gang id → slot. Entries persist after the last rank exits (the
    /// table is tiny and keeping them makes shares sticky across
    /// launches of the same job id), but only slots with live ranks
    /// participate in arbitration.
    pub gangs: BTreeMap<u64, GangSlot>,
    /// Counters, updated by arbiter and shims.
    pub stats: CoordStats,
}

impl NodeCoordState {
    /// Gangs with live ranks, as the sorted `(gang, share)` slice the
    /// [`hpl_kernel::gang`] schedule functions take. The arbiter and
    /// every shim derive the lease schedule from this same view, so
    /// they agree without any lease being stored.
    pub fn registered(&self) -> Vec<(u64, u32)> {
        self.gangs
            .iter()
            .filter(|(_, s)| s.ranks > 0)
            .map(|(&g, s)| {
                (
                    g,
                    if s.share_milli == 0 {
                        1000
                    } else {
                        s.share_milli
                    },
                )
            })
            .collect()
    }

    /// Total live ranks across all gangs.
    pub fn total_ranks(&self) -> u32 {
        self.gangs.values().map(|s| s.ranks).sum()
    }

    /// Publish a share for `gang` (creating the slot if the job has
    /// not arrived yet — shares may be set ahead of launch).
    pub fn set_share(&mut self, gang: u64, share_milli: u32) {
        assert!(share_milli > 0, "coord share must be non-zero");
        self.gangs.entry(gang).or_default().share_milli = share_milli;
    }
}

/// Handle to a node's segment, shared between the arbiter task, every
/// shimmed rank on the node, and the runtime that owns them.
pub type SharedCoord = Arc<Mutex<NodeCoordState>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_filters_dead_gangs_and_defaults_shares() {
        let mut s = NodeCoordState::default();
        s.gangs.entry(7).or_default().ranks = 2;
        s.gangs.entry(9).or_default().ranks = 0;
        s.set_share(7, 750);
        s.set_share(11, 250); // share ahead of launch, no ranks yet
        assert_eq!(s.registered(), vec![(7, 750)]);
        s.gangs.entry(11).or_default().ranks = 1;
        s.gangs.entry(13).or_default().ranks = 1;
        assert_eq!(s.registered(), vec![(7, 750), (11, 250), (13, 1000)]);
        assert_eq!(s.total_ranks(), 4);
    }

    #[test]
    fn chan_ids_clear_job_ranges() {
        assert!(ctrl_chan().0 >= COORD_CHAN_BASE);
        assert!(lease_chan(0).0 > ctrl_chan().0);
        assert_eq!(lease_chan(5).0 - lease_chan(0).0, 5);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_share_rejected() {
        NodeCoordState::default().set_share(1, 0);
    }
}
