//! The cooperating-rank shim.
//!
//! Cooperation is the user-space backend's contract: a rank checks its
//! lease only at **phase boundaries** — before starting a compute
//! segment — and yields the CPU voluntarily when its gang is outside
//! its slice. Communication and synchronization steps pass through
//! untouched (blocking a rank that peers are waiting on would turn a
//! slice boundary into a deadlock). This is exactly the granularity a
//! real cooperative runtime gets by instrumenting its compute loop, and
//! it is why the user-space backend tracks the kernel slicer only
//! approximately: a long compute segment straddles the boundary instead
//! of being cut by it.

use crate::state::{ctrl_chan, lease_chan, SharedCoord};
use hpl_kernel::{ProgCtx, Program, Step};
use std::collections::VecDeque;

/// Wraps a rank's program with the cooperative lease check. Installed
/// by [`crate::CoordRuntime`] through the launcher's rank-wrap hook;
/// the rank itself (and the kernel) never know it is there.
pub struct CoordShim {
    inner: Box<dyn Program>,
    shm: SharedCoord,
    gang: u64,
    epoch_ns: u64,
    registered: bool,
    /// Steps to replay ahead of the inner program: the compute segment
    /// withheld while blocking for a lease.
    pending: VecDeque<Step>,
}

impl CoordShim {
    /// Shim `inner` as a rank of `gang` on the node whose segment is
    /// `shm`.
    pub fn new(inner: Box<dyn Program>, shm: SharedCoord, gang: u64, epoch_ns: u64) -> Self {
        CoordShim {
            inner,
            shm,
            gang,
            epoch_ns,
            registered: false,
            pending: VecDeque::new(),
        }
    }
}

impl Program for CoordShim {
    fn next_step(&mut self, ctx: &mut ProgCtx<'_>) -> Step {
        if let Some(s) = self.pending.pop_front() {
            return s;
        }
        if !self.registered {
            // First step ever: join the segment, and ring the arbiter's
            // doorbell if we are our job's first rank on this node (the
            // arbiter parks while there is nothing to arbitrate).
            self.registered = true;
            let mut shm = self.shm.lock().unwrap();
            let slot = shm.gangs.entry(self.gang).or_default();
            let first_of_gang = slot.ranks == 0;
            slot.ranks += 1;
            drop(shm);
            if first_of_gang {
                return Step::Notify {
                    chan: ctrl_chan(),
                    tokens: 1,
                };
            }
        }
        let step = self.inner.next_step(ctx);
        match step {
            Step::Compute(d) => {
                let mut shm = self.shm.lock().unwrap();
                let gangs = shm.registered();
                if gangs.len() >= 2 {
                    let (active, _) =
                        hpl_kernel::gang::active_at(ctx.now.as_nanos(), self.epoch_ns, &gangs);
                    if active != self.gang {
                        // Outside our slice: publish demand and yield
                        // until the arbiter opens it. The withheld
                        // compute runs right after the wakeup — the
                        // grant *is* the lease.
                        let slot = shm.gangs.get_mut(&self.gang).expect("registered above");
                        slot.waiting += 1;
                        shm.stats.blocks += 1;
                        self.pending.push_back(Step::Compute(d));
                        return Step::WaitChan(lease_chan(self.gang));
                    }
                }
                Step::Compute(d)
            }
            Step::Exit => {
                // Leave the segment so the arbiter stops budgeting for
                // us (and can park once co-residency ends).
                let mut shm = self.shm.lock().unwrap();
                let slot = shm.gangs.get_mut(&self.gang).expect("registered above");
                slot.ranks -= 1;
                Step::Exit
            }
            other => other,
        }
    }

    fn describe(&self) -> &str {
        self.inner.describe()
    }
}
