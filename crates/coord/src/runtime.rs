//! The coordination runtime: one object that realizes fractional CPU
//! shares through either backend behind the cluster's
//! [`JobCoordinator`] seam.

use crate::arbiter::ArbiterProgram;
use crate::shim::CoordShim;
use crate::state::{CoordStats, NodeCoordState, SharedCoord};
use hpl_cluster::{Cluster, ClusterJobHandle, JobCoordinator, Placement};
use hpl_kernel::{Policy, TaskSpec};
use hpl_mpi::{JobSpec, SchedMode};
use hpl_sim::SimDuration;
use std::sync::{Arc, Mutex};

/// Which mechanism realizes the shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordBackend {
    /// Weighted kernel slicing: shares go straight to each node's gang
    /// controller ([`hpl_kernel::Node::gang_set_share`]), which cuts
    /// the rotation period proportionally and preempts at boundaries.
    /// Requires nodes built with `KernelConfig::gang_epoch`.
    KernelWeighted,
    /// User-space coordination: a per-node RT arbiter daemon plus a
    /// cooperative shim on every rank. Works under **any** kernel
    /// class — the kernel needs no gang support at all — at the price
    /// of phase-boundary granularity.
    UserSpace,
}

/// The runtime. Construct with [`CoordRuntime::kernel_weighted`] or
/// [`CoordRuntime::user_space`], [`install`](CoordRuntime::install) it
/// on the cluster once, then hand it to a batch engine (or drive its
/// [`JobCoordinator`] methods directly).
pub struct CoordRuntime {
    backend: CoordBackend,
    epoch: SimDuration,
    arb_prio: u8,
    arb_cost: SimDuration,
    /// Per-cluster-node shared segments (user-space backend only).
    states: Vec<SharedCoord>,
    installed: bool,
}

impl CoordRuntime {
    /// Kernel-weighted backend. `epoch` must match the `gang_epoch`
    /// the cluster's nodes were built with (it is the unit the share
    /// table re-divides).
    pub fn kernel_weighted(epoch: SimDuration) -> Self {
        CoordRuntime {
            backend: CoordBackend::KernelWeighted,
            epoch,
            arb_prio: 90,
            arb_cost: SimDuration::from_micros(2),
            states: Vec::new(),
            installed: false,
        }
    }

    /// User-space backend with slice period base `epoch`. Using the
    /// same value as the kernel backend's `gang_epoch` makes the two
    /// backends' schedules directly comparable — they are then the
    /// *same* schedule, enforced at different layers.
    pub fn user_space(epoch: SimDuration) -> Self {
        CoordRuntime {
            backend: CoordBackend::UserSpace,
            ..CoordRuntime::kernel_weighted(epoch)
        }
    }

    /// Override the arbiter daemon's RT priority (default 90 — above
    /// the HPC ranks it arbitrates, like the kernel's migration
    /// threads).
    pub fn with_arbiter_priority(mut self, prio: u8) -> Self {
        self.arb_prio = prio;
        self
    }

    /// Override the modeled CPU cost of one arbitration pass.
    pub fn with_arbiter_cost(mut self, cost: SimDuration) -> Self {
        self.arb_cost = cost;
        self
    }

    /// Which backend this runtime drives.
    pub fn backend(&self) -> CoordBackend {
        self.backend
    }

    /// Install the runtime on `cluster`: the user-space backend spawns
    /// one parked arbiter daemon per node; the kernel backend has
    /// nothing to install (the mechanism ships with the kernel).
    /// Call once, before launching coordinated jobs.
    pub fn install(&mut self, cluster: &mut Cluster) {
        assert!(!self.installed, "coord runtime installed twice");
        self.installed = true;
        if self.backend != CoordBackend::UserSpace {
            return;
        }
        for n in 0..cluster.len() {
            let shm: SharedCoord = Arc::new(Mutex::new(NodeCoordState::default()));
            let prog = ArbiterProgram::new(shm.clone(), self.epoch, self.arb_cost);
            cluster.node_mut(n).spawn(TaskSpec::new(
                "coordd",
                Policy::Fifo(self.arb_prio),
                Box::new(prog),
            ));
            self.states.push(shm);
        }
    }

    /// A node's coordination counters (user-space backend; the kernel
    /// backend reports through `SchedMetrics` instead).
    pub fn stats(&self, node: usize) -> CoordStats {
        self.states
            .get(node)
            .map(|s| s.lock().unwrap().stats)
            .unwrap_or_default()
    }

    /// Cluster-wide counter totals.
    pub fn total_stats(&self) -> CoordStats {
        self.states
            .iter()
            .map(|s| s.lock().unwrap().stats)
            .fold(CoordStats::default(), CoordStats::merged)
    }
}

impl JobCoordinator for CoordRuntime {
    fn launch(
        &mut self,
        cluster: &mut Cluster,
        job: &JobSpec,
        mode: SchedMode,
        placement: Placement,
    ) -> ClusterJobHandle {
        assert!(self.installed, "install the coord runtime before launching");
        match self.backend {
            // Kernel backend: the plain launch already gang-enrolls the
            // tree (nodes carry gang_epoch); shares arrive via
            // set_share.
            CoordBackend::KernelWeighted => cluster.launch(job, mode, placement),
            CoordBackend::UserSpace => {
                let resolved: Vec<usize> = match &placement {
                    Placement::All => (0..cluster.len()).collect(),
                    Placement::Nodes(v) => v.clone(),
                };
                let gang = job.id_base;
                let epoch_ns = self.epoch.as_nanos();
                let states = &self.states;
                let spec = job.clone();
                cluster.launch_with(job, mode, placement, &mut |rank, prog| {
                    let j = (0..spec.nodes)
                        .find(|&j| spec.ranks_on(j).contains(&rank))
                        .expect("rank within the job");
                    let shm = states[resolved[j as usize]].clone();
                    Box::new(CoordShim::new(prog, shm, gang, epoch_ns))
                })
            }
        }
    }

    fn set_share(&mut self, cluster: &mut Cluster, node: usize, gang: u64, share_milli: u32) {
        match self.backend {
            CoordBackend::KernelWeighted => cluster.set_gang_share(node, gang, share_milli),
            CoordBackend::UserSpace => {
                self.states[node]
                    .lock()
                    .unwrap()
                    .set_share(gang, share_milli);
            }
        }
    }
}
