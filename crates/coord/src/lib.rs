//! `hpl-coord` — realizing fractional CPU shares inside a node.
//!
//! The batch layer's DFRS policy hands out *fractional* shares: "job A
//! gets 750 milli-CPUs of this node, job B gets 250". Until this crate,
//! those shares were advisory annotations ([`SchedEvent::JobShare`]);
//! the kernel's gang rotation still split time equally. This crate
//! provides two deterministic arbitration backends that make the
//! fractions real, both driving the **same** slice schedule — a pure
//! function of the shared virtual clock, the co-resident gang set and
//! the share table ([`hpl_kernel::gang`]) — enforced at different
//! layers:
//!
//! * **[`CoordBackend::KernelWeighted`]** — the gang controller inside
//!   each node cuts its rotation period proportionally to the shares
//!   and preempts at every boundary. Precise, but needs kernel support
//!   (`KernelConfig::gang_epoch` + the share table).
//! * **[`CoordBackend::UserSpace`]** — one RT arbiter daemon per node
//!   ([`ArbiterProgram`]) grants lease tokens to cooperating ranks
//!   ([`CoordShim`]) that yield voluntarily at phase boundaries,
//!   through ordinary channels and shared memory
//!   ([`NodeCoordState`]). Runs under **any** scheduling class with
//!   zero kernel changes, at phase-boundary granularity — the classic
//!   OS-design trade the paper's scheduling study circles: mechanisms
//!   in the kernel are exact, mechanisms above it are portable.
//!
//! Because both backends derive the schedule from the shared clock,
//! lockstep nodes hosting the same jobs slice in alignment without any
//! coordination messages — the property that makes gang scheduling
//! work across a cluster carries over to weighted shares.
//!
//! The [`CoordRuntime`] packages either backend behind the cluster's
//! [`hpl_cluster::JobCoordinator`] seam, so a batch engine coordinates
//! jobs without knowing which layer does the work.

#![warn(missing_docs)]

pub mod arbiter;
pub mod runtime;
pub mod shim;
pub mod state;

pub use arbiter::ArbiterProgram;
pub use runtime::{CoordBackend, CoordRuntime};
pub use shim::CoordShim;
pub use state::{ctrl_chan, lease_chan, CoordStats, NodeCoordState, SharedCoord, COORD_CHAN_BASE};

// Re-exported so doc links resolve and callers need not name hpl-kernel.
pub use hpl_kernel::observe::SchedEvent;
