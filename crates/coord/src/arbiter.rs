//! The per-node arbiter daemon.
//!
//! A real user-space coordination runtime (the paper's §VI direction:
//! move the policy out of the kernel, keep the kernel's clock) runs one
//! small daemon per node at RT priority — high enough to preempt the
//! HPC ranks it arbitrates, exactly like the `migration` threads the
//! paper observes running above everything else. Ours is a
//! [`Program`]: it sleeps to the next slice boundary of the same
//! weighted schedule the in-kernel slicer would use
//! ([`hpl_kernel::gang::active_at`] over the shared virtual clock),
//! wakes, grants one lease token per rank blocked on the newly active
//! gang's channel, publishes a [`SchedEvent::Lease`] annotation, and
//! goes back to sleep. While fewer than two jobs are co-resident there
//! is nothing to arbitrate: it parks on the control channel and costs
//! nothing — the doorbell rung by the first rank of each arriving job
//! wakes it.
//!
//! Because every node's arbiter derives its schedule from the same pure
//! function of the (lockstep-shared) virtual clock, gang set and share
//! table, co-resident jobs progress in aligned slices across nodes with
//! no cross-node coordination messages — the same property the kernel
//! backend gets, at user-space granularity.

use crate::state::{ctrl_chan, lease_chan, SharedCoord};
use hpl_kernel::{ProgCtx, Program, SchedEvent, Step};
use hpl_sim::SimDuration;
use std::collections::VecDeque;

/// The arbiter daemon program. Spawn one per node at RT priority (see
/// [`crate::CoordRuntime::install`]).
pub struct ArbiterProgram {
    shm: SharedCoord,
    epoch_ns: u64,
    /// CPU cost of one arbitration pass (schedule derivation + wakeups)
    /// — the runtime's direct overhead, deliberately modeled.
    arb_cost: SimDuration,
    pending: VecDeque<Step>,
}

impl ArbiterProgram {
    /// Build an arbiter over `shm` with slice period base `epoch` (the
    /// analogue of the kernel's `gang_epoch`).
    pub fn new(shm: SharedCoord, epoch: SimDuration, arb_cost: SimDuration) -> Self {
        assert!(!epoch.is_zero(), "coord epoch must be non-zero");
        ArbiterProgram {
            shm,
            epoch_ns: epoch.as_nanos(),
            arb_cost,
            pending: VecDeque::new(),
        }
    }
}

impl Program for ArbiterProgram {
    fn next_step(&mut self, ctx: &mut ProgCtx<'_>) -> Step {
        if let Some(s) = self.pending.pop_front() {
            return s;
        }
        let mut shm = self.shm.lock().unwrap();
        let gangs = shm.registered();
        if gangs.len() < 2 {
            // Nothing to arbitrate. Flush any stranded waiters first —
            // ranks that blocked while a since-departed job was active
            // must not sleep forever — then park on the doorbell.
            let stranded: Vec<(u64, u32)> = shm
                .gangs
                .iter_mut()
                .filter(|(_, s)| s.waiting > 0)
                .map(|(&g, s)| (g, std::mem::take(&mut s.waiting)))
                .collect();
            for &(g, w) in &stranded {
                shm.stats.grants += u64::from(w);
                self.pending.push_back(Step::Notify {
                    chan: lease_chan(g),
                    tokens: w,
                });
            }
            drop(shm);
            self.pending.push_back(Step::WaitChan(ctrl_chan()));
            return self.pending.pop_front().expect("just pushed");
        }
        // Two or more jobs co-resident: serve the slice the shared
        // clock says is open, then sleep to the next boundary.
        let now = ctx.now.as_nanos();
        let (active, next) = hpl_kernel::gang::active_at(now, self.epoch_ns, &gangs);
        let share = gangs
            .iter()
            .find(|&&(g, _)| g == active)
            .map(|&(_, s)| s)
            .expect("active gang is registered");
        let granted = {
            let slot = shm.gangs.get_mut(&active).expect("active gang has a slot");
            std::mem::take(&mut slot.waiting)
        };
        shm.stats.leases += 1;
        shm.stats.grants += u64::from(granted);
        drop(shm);
        if granted > 0 {
            self.pending.push_back(Step::Notify {
                chan: lease_chan(active),
                tokens: granted,
            });
        }
        self.pending.push_back(Step::Emit(SchedEvent::Lease {
            gang: active,
            share_milli: share,
            granted,
            jobs: gangs.len() as u32,
        }));
        self.pending.push_back(Step::Compute(self.arb_cost));
        self.pending
            .push_back(Step::Sleep(SimDuration::from_nanos(next - now)));
        self.pending.pop_front().expect("just pushed")
    }

    fn describe(&self) -> &str {
        "coordd"
    }
}
