//! The Completely Fair Scheduler class.
//!
//! Models the CFS mechanisms the paper's analysis hinges on:
//!
//! * **vruntime fairness** — each task accumulates virtual runtime
//!   inversely proportional to its nice-derived weight; the leftmost
//!   (smallest-vruntime) task runs next.
//! * **sleeper fairness** — a task that wakes from sleep is placed at
//!   `min_vruntime − sleeper_bonus`, so daemons that sleep most of the
//!   time *always* look underserved. This is precisely why raising an HPC
//!   task's static priority (nice) cannot prevent preemption: "a user
//!   daemon that has been sleeping for enough time [...] can preempt a
//!   process with a high static priority" (§IV).
//! * **wakeup preemption** — the woken task preempts the current one if
//!   its vruntime lag exceeds `wakeup_granularity`.
//! * **load balancing** — periodic, domain-driven balancing plus new-idle
//!   pulls, both operating on runnable-task counts (the paper: "the Linux
//!   load balancer does not distinguish between the parallel application
//!   and the rest of the user and kernel daemons").
//!
//! Simplifications relative to `fair.c`, documented in DESIGN.md: no task
//! groups (no cgroup hierarchies exist in these experiments), integer
//! task counts instead of weighted load in the balancer, and a vruntime
//! clamp on enqueue standing in for `migrate_task_rq_fair`'s
//! renormalisation.

use crate::class::{ClassKind, LoadSnapshot, MigrationPlan, SchedClass, SchedCtx};
use crate::task::{Pid, Policy, Task, TaskTable, NICE_0_WEIGHT};
use hpl_sim::SimDuration;
use hpl_topology::CpuId;
use std::collections::BTreeSet;

/// Per-CPU CFS runqueue.
#[derive(Debug, Default)]
struct CfsRq {
    /// Queued tasks ordered by (vruntime, pid). The running task is *not*
    /// in the tree, as in Linux.
    tree: BTreeSet<(u64, Pid)>,
    /// Monotonic floor of vruntime on this CPU.
    min_vruntime: u64,
    /// Sum of queued task weights.
    queued_weight: u64,
}

impl CfsRq {
    fn advance_min_vruntime(&mut self, candidate: u64) {
        if candidate > self.min_vruntime {
            self.min_vruntime = candidate;
        }
    }
}

/// The CFS scheduling class.
#[derive(Debug, Default)]
pub struct CfsClass {
    rqs: Vec<CfsRq>,
    /// Reused candidate buffer for `idle_balance` (new-idle fires on every
    /// transition to idle; allocating a Vec per call shows up in profiles).
    idle_scratch: Vec<CpuId>,
}

impl CfsClass {
    /// New, uninitialised class (the node calls [`SchedClass::init`]).
    pub fn new() -> Self {
        CfsClass::default()
    }

    fn rq(&self, cpu: CpuId) -> &CfsRq {
        &self.rqs[cpu.index()]
    }

    fn rq_mut(&mut self, cpu: CpuId) -> &mut CfsRq {
        &mut self.rqs[cpu.index()]
    }

    /// Count of this class's active tasks on `cpu`: queued plus the
    /// current task if it is a CFS task.
    fn active_on(&self, cpu: CpuId, snap: &LoadSnapshot) -> u32 {
        let running = (snap.curr_kind[cpu.index()] == Some(ClassKind::Fair)) as u32;
        self.rq(cpu).tree.len() as u32 + running
    }

    /// Pick a steal victim on `from` that may run on `to`: the leftmost
    /// queued task whose affinity admits the destination and that
    /// represents a *sustained* imbalance. Two Linux mechanisms are
    /// folded into one test: `task_hot()` (don't move a task that ran
    /// within `sched_migration_cost` — its cache is warm) and the load
    /// tracking that makes balancing respond to time-averaged load rather
    /// than instantaneous runqueue blips (a daemon queued for the few
    /// microseconds before its sleeper-fairness preemption fires never
    /// shows up in `load_avg`, so it is never worth stealing). A task is
    /// stealable only when it has been waiting — neither run nor woken
    /// nor moved — for at least `hot_task_threshold`.
    fn steal_candidate(
        &self,
        from: CpuId,
        to: CpuId,
        ctx: &SchedCtx<'_>,
        tasks: &TaskTable,
    ) -> Option<Pid> {
        self.rq(from).tree.iter().map(|&(_, pid)| pid).find(|&pid| {
            let t = tasks.get(pid);
            let waited_since = t.last_descheduled.max(t.last_wakeup);
            let sustained = ctx.now.since(waited_since) >= ctx.cfg.hot_task_threshold;
            t.can_run_on(to) && sustained
        })
    }

    /// `active_load_balance`: when an SMT core runs two CFS tasks while
    /// the balancing CPU's whole core is idle, nothing is queued to
    /// steal — the overload consists of *running* tasks. The migration
    /// thread then carries one running task over. Without this, a
    /// 2-tasks-on-one-core / 0-on-another layout is stable forever.
    fn active_balance(
        &mut self,
        cpu: CpuId,
        domain: &hpl_topology::SchedDomain,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tasks: &TaskTable,
        plans: &mut Vec<MigrationPlan>,
    ) {
        let core_active = |c: CpuId| -> u32 {
            ctx.topo
                .smt_siblings(c)
                .iter()
                .map(|s| self.active_on(s, snap))
                .sum()
        };
        // Only a CPU on a completely idle core relieves others.
        if core_active(cpu) != 0 {
            return;
        }
        for victim_cpu in domain.span.iter() {
            if ctx.topo.core_of(victim_cpu) == ctx.topo.core_of(cpu) {
                continue;
            }
            if core_active(victim_cpu) < 2 {
                continue;
            }
            let Some(pid) = snap.curr_kind[victim_cpu.index()]
                .filter(|&k| k == ClassKind::Fair)
                .and_then(|_| self.running_victim(victim_cpu, cpu, ctx, tasks))
            else {
                continue;
            };
            plans.push(MigrationPlan::active(pid, victim_cpu, cpu));
            return;
        }
    }

    /// The running task on `victim_cpu` if it is migratable: allowed on
    /// the destination and on-CPU long enough to be a sustained overload
    /// rather than a blip (Linux gates active balance behind repeated
    /// failed passive attempts).
    fn running_victim(
        &self,
        victim_cpu: CpuId,
        to: CpuId,
        ctx: &SchedCtx<'_>,
        tasks: &TaskTable,
    ) -> Option<Pid> {
        tasks
            .iter()
            .find(|t| {
                t.state == crate::task::TaskState::Running
                    && t.cpu == victim_cpu
                    && t.can_run_on(to)
                    && t.ran_since_pick >= ctx.cfg.hot_task_threshold
            })
            .map(|t| t.pid)
    }
}

impl SchedClass for CfsClass {
    fn kind(&self) -> ClassKind {
        ClassKind::Fair
    }

    fn init(&mut self, ncpus: usize) {
        self.rqs = (0..ncpus).map(|_| CfsRq::default()).collect();
    }

    fn enqueue(&mut self, cpu: CpuId, task: &mut Task, ctx: &SchedCtx<'_>, wakeup: bool) {
        let latency = ctx.cfg.sched_latency.as_nanos();
        let bonus = ctx.cfg.sleeper_bonus.as_nanos();
        let rq = self.rq_mut(cpu);
        if wakeup {
            // place_entity: sleepers resume at min_vruntime − bonus
            // (GENTLE_FAIR_SLEEPERS), never *ahead* of where they slept.
            // SCHED_BATCH receives no sleeper credit.
            let credit = match task.policy {
                Policy::Batch { .. } => 0,
                _ => bonus,
            };
            let floor = rq.min_vruntime.saturating_sub(credit);
            task.vruntime = task.vruntime.max(floor);
        }
        // Cross-CPU renormalisation stand-in: keep vruntime within a
        // window of this runqueue's min_vruntime so a task migrated from
        // a CPU with wildly different vruntime neither starves nor hogs.
        let lo = rq.min_vruntime.saturating_sub(latency);
        let hi = rq.min_vruntime.saturating_add(4 * latency);
        task.vruntime = task.vruntime.clamp(lo, hi);
        let inserted = rq.tree.insert((task.vruntime, task.pid));
        debug_assert!(inserted, "{} double-enqueued on {}", task.pid, cpu);
        rq.queued_weight += task.weight;
    }

    fn dequeue(&mut self, cpu: CpuId, task: &mut Task, _ctx: &SchedCtx<'_>) {
        let rq = self.rq_mut(cpu);
        let removed = rq.tree.remove(&(task.vruntime, task.pid));
        debug_assert!(removed, "{} not queued on {}", task.pid, cpu);
        rq.queued_weight = rq.queued_weight.saturating_sub(task.weight);
    }

    fn pick_next(&mut self, cpu: CpuId, tasks: &TaskTable) -> Option<Pid> {
        let rq = self.rq_mut(cpu);
        let &(vruntime, pid) = rq.tree.iter().next()?;
        rq.tree.remove(&(vruntime, pid));
        rq.queued_weight = rq.queued_weight.saturating_sub(tasks.get(pid).weight);
        // min_vruntime tracks the leftmost entity.
        rq.advance_min_vruntime(vruntime);
        Some(pid)
    }

    fn put_prev(&mut self, cpu: CpuId, task: &mut Task, _ctx: &SchedCtx<'_>) {
        let rq = self.rq_mut(cpu);
        let inserted = rq.tree.insert((task.vruntime, task.pid));
        debug_assert!(inserted);
        rq.queued_weight += task.weight;
    }

    fn update_curr(&mut self, cpu: CpuId, task: &mut Task, ran: SimDuration) {
        if ran.is_zero() {
            return;
        }
        let delta_v = ran.as_nanos().saturating_mul(NICE_0_WEIGHT) / task.weight.max(1);
        task.vruntime = task.vruntime.saturating_add(delta_v);
        let rq = self.rq_mut(cpu);
        // min_vruntime = max(min_vruntime, min(curr, leftmost)).
        let leftmost = rq.tree.iter().next().map(|&(v, _)| v);
        let cand = match leftmost {
            Some(l) => l.min(task.vruntime),
            None => task.vruntime,
        };
        rq.advance_min_vruntime(cand);
    }

    fn task_tick(&mut self, cpu: CpuId, task: &mut Task, ctx: &SchedCtx<'_>) -> bool {
        let rq = self.rq(cpu);
        if rq.tree.is_empty() {
            return false;
        }
        // Ideal slice: latency share proportional to weight, floored at
        // min_granularity.
        let total_weight = rq.queued_weight + task.weight;
        let slice_ns =
            ctx.cfg.sched_latency.as_nanos().saturating_mul(task.weight) / total_weight.max(1);
        let slice = SimDuration::from_nanos(slice_ns).max(ctx.cfg.min_granularity);
        if task.ran_since_pick >= slice {
            return true;
        }
        // Also resched if the leftmost queued task is far behind us.
        if let Some(&(leftmost, _)) = rq.tree.iter().next() {
            if task.vruntime > leftmost
                && task.vruntime - leftmost > ctx.cfg.sched_latency.as_nanos()
            {
                return true;
            }
        }
        false
    }

    fn wakeup_preempt(&self, _cpu: CpuId, curr: &Task, woken: &Task, ctx: &SchedCtx<'_>) -> bool {
        // SCHED_BATCH tasks neither preempt nor get preempted on wakeup.
        if matches!(woken.policy, Policy::Batch { .. })
            || matches!(curr.policy, Policy::Batch { .. })
        {
            return false;
        }
        if woken.vruntime >= curr.vruntime {
            return false;
        }
        // Scale granularity by the woken task's weight, as wakeup_gran does.
        let gran = ctx
            .cfg
            .wakeup_granularity
            .as_nanos()
            .saturating_mul(NICE_0_WEIGHT)
            / woken.weight.max(1);
        curr.vruntime - woken.vruntime > gran
    }

    fn nr_queued(&self, cpu: CpuId) -> u32 {
        self.rq(cpu).tree.len() as u32
    }

    fn queued_pids(&self, cpu: CpuId) -> Vec<Pid> {
        self.rq(cpu).tree.iter().map(|&(_, p)| p).collect()
    }

    fn select_cpu_fork(
        &mut self,
        task: &Task,
        parent_cpu: CpuId,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        _tasks: &TaskTable,
    ) -> CpuId {
        // SD_BALANCE_FORK walks the domains top-down: idlest socket
        // group, then idlest core within it, then idlest thread — so
        // successive forks spread across packages before doubling up
        // SMT siblings. Ties prefer the parent's CPU, then lowest id.
        let socket_load = |cpu: CpuId| -> u32 {
            ctx.topo
                .socket_cpus(cpu)
                .iter()
                .map(|c| snap.nr_running[c.index()])
                .sum()
        };
        let core_load = |cpu: CpuId| -> u32 {
            ctx.topo
                .smt_siblings(cpu)
                .iter()
                .map(|c| snap.nr_running[c.index()])
                .sum()
        };
        let mut best: Option<((u32, u32, u32), CpuId)> = None;
        for idx in 0..snap.nr_running.len() {
            let cpu = CpuId(idx as u32);
            if !task.can_run_on(cpu) {
                continue;
            }
            let key = (socket_load(cpu), core_load(cpu), snap.nr_running[idx]);
            let better = match best {
                None => true,
                Some((bk, bc)) => key < bk || (key == bk && cpu == parent_cpu && bc != parent_cpu),
            };
            if better {
                best = Some((key, cpu));
            }
        }
        best.map_or(parent_cpu, |(_, c)| c)
    }

    fn select_cpu_wakeup(
        &mut self,
        task: &Task,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        _tasks: &TaskTable,
    ) -> CpuId {
        let prev = task.cpu;
        // "Free" means nothing running or queued — counting queued tasks
        // prevents a burst of simultaneous wakeups (e.g. a barrier
        // release) from piling onto the first idle CPU.
        let free = |c: CpuId| snap.nr_running[c.index()] == 0;
        // Prev CPU free: stay (cache affinity).
        if task.can_run_on(prev) && free(prev) {
            return prev;
        }
        // Otherwise find a nearby free CPU: SMT siblings, same socket,
        // then anywhere — Linux's wake-affine + select_idle_sibling shape.
        let tiers = [
            ctx.topo.smt_siblings(prev),
            ctx.topo.socket_cpus(prev),
            ctx.topo.all_cpus(),
        ];
        for tier in tiers {
            if let Some(idle) = tier.iter().find(|&c| task.can_run_on(c) && free(c)) {
                return idle;
            }
        }
        // Nothing idle anywhere: remain on prev (no migration).
        if task.can_run_on(prev) {
            prev
        } else {
            task.affinity.first().unwrap_or(prev)
        }
    }

    fn periodic_balance(
        &mut self,
        cpu: CpuId,
        level_idx: usize,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tasks: &TaskTable,
        plans: &mut Vec<MigrationPlan>,
    ) {
        let chain = ctx.domains.chain(cpu);
        let Some(domain) = chain.get(level_idx) else {
            return;
        };
        let local = self.active_on(cpu, snap);
        // Find the busiest CPU in the domain span with something to steal.
        let mut busiest: Option<(CpuId, u32)> = None;
        for other in domain.span.iter() {
            if other == cpu {
                continue;
            }
            let load = self.active_on(other, snap);
            if self.nr_queued(other) >= 1 && busiest.is_none_or(|(_, b)| load > b) {
                busiest = Some((other, load));
            }
        }
        let Some((victim_cpu, victim_load)) = busiest else {
            return self.active_balance(cpu, domain, ctx, snap, tasks, plans);
        };
        // Move one task whenever the victim is strictly busier — the
        // fair.c small-imbalance behaviour (imbalance_pct 125: 2 tasks vs
        // 1 is already a 200% imbalance). This is deliberately faithful
        // to Linux's eagerness, ping-pong included: the paper's point is
        // precisely that this eagerness moves HPC ranks around.
        if victim_load < local + 1 {
            return self.active_balance(cpu, domain, ctx, snap, tasks, plans);
        }
        if let Some(pid) = self.steal_candidate(victim_cpu, cpu, ctx, tasks) {
            plans.push(MigrationPlan::pull(pid, victim_cpu, cpu));
        }
    }

    fn idle_balance(
        &mut self,
        cpu: CpuId,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tasks: &TaskTable,
        plans: &mut Vec<MigrationPlan>,
    ) {
        // newidle: walk domains inner→outer, pull one task from the first
        // CPU found with more than one active task.
        let mut candidates = std::mem::take(&mut self.idle_scratch);
        for domain in ctx.domains.chain(cpu) {
            candidates.clear();
            candidates.extend(
                domain
                    .span
                    .iter()
                    .filter(|&c| c != cpu)
                    .filter(|&c| self.active_on(c, snap) >= 2 && self.nr_queued(c) >= 1),
            );
            // Deterministic order: busiest first, then id.
            candidates.sort_by_key(|&c| (std::cmp::Reverse(self.active_on(c, snap)), c.0));
            for &victim_cpu in &candidates {
                if let Some(pid) = self.steal_candidate(victim_cpu, cpu, ctx, tasks) {
                    plans.push(MigrationPlan::pull(pid, victim_cpu, cpu));
                    self.idle_scratch = candidates;
                    return;
                }
            }
        }
        self.idle_scratch = candidates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use hpl_sim::SimTime;
    use hpl_topology::{CpuMask, DomainHierarchy, Topology};

    struct Fixture {
        cfg: KernelConfig,
        topo: Topology,
        domains: DomainHierarchy,
    }

    impl Fixture {
        fn new() -> Self {
            let topo = Topology::power6_js22();
            let domains = DomainHierarchy::build(&topo);
            Fixture {
                cfg: KernelConfig::default(),
                topo,
                domains,
            }
        }

        fn ctx(&self) -> SchedCtx<'_> {
            SchedCtx {
                // Far enough from t=0 that fresh tasks (last activity at
                // the epoch) count as sustained-queued for steal tests.
                now: SimTime::from_nanos(1_000_000_000),
                cfg: &self.cfg,
                topo: &self.topo,
                domains: &self.domains,
            }
        }
    }

    fn mk_task(tt: &mut TaskTable, name: &str, nice: i8) -> Pid {
        tt.alloc(|p| Task::new(p, name, Policy::Normal { nice }, CpuMask::first_n(8)))
    }

    fn snapshot(n: usize) -> LoadSnapshot {
        LoadSnapshot::empty(n)
    }

    fn idle_plans(
        cfs: &mut CfsClass,
        cpu: CpuId,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tt: &TaskTable,
    ) -> Vec<MigrationPlan> {
        let mut plans = Vec::new();
        cfs.idle_balance(cpu, ctx, snap, tt, &mut plans);
        plans
    }

    fn periodic_plans(
        cfs: &mut CfsClass,
        cpu: CpuId,
        level: usize,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tt: &TaskTable,
    ) -> Vec<MigrationPlan> {
        let mut plans = Vec::new();
        cfs.periodic_balance(cpu, level, ctx, snap, tt, &mut plans);
        plans
    }

    #[test]
    fn picks_smallest_vruntime() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let a = mk_task(&mut tt, "a", 0);
        let b = mk_task(&mut tt, "b", 0);
        tt.get_mut(a).vruntime = 100;
        tt.get_mut(b).vruntime = 50;
        let ctx = fx.ctx();
        cfs.enqueue(CpuId(0), tt.get_mut(a), &ctx, false);
        cfs.enqueue(CpuId(0), tt.get_mut(b), &ctx, false);
        assert_eq!(cfs.pick_next(CpuId(0), &tt), Some(b));
        assert_eq!(cfs.pick_next(CpuId(0), &tt), Some(a));
        assert_eq!(cfs.pick_next(CpuId(0), &tt), None);
    }

    #[test]
    fn sleeper_gets_bonus_placement() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let hpc = mk_task(&mut tt, "rank", 0);
        let daemon = mk_task(&mut tt, "daemon", 0);
        let ctx = fx.ctx();

        // The HPC task runs for 10 s; min_vruntime follows it up.
        cfs.enqueue(CpuId(0), tt.get_mut(hpc), &ctx, false);
        cfs.pick_next(CpuId(0), &tt);
        cfs.update_curr(CpuId(0), tt.get_mut(hpc), SimDuration::from_secs(10));
        assert_eq!(cfs.rq(CpuId(0)).min_vruntime, 10_000_000_000);

        // A daemon that slept for ages wakes with vruntime 0 → placed at
        // min_vruntime − bonus, not at 0 and not at min_vruntime.
        cfs.enqueue(CpuId(0), tt.get_mut(daemon), &ctx, true);
        let expected = 10_000_000_000 - fx.cfg.sleeper_bonus.as_nanos();
        assert_eq!(tt.get(daemon).vruntime, expected);
    }

    #[test]
    fn woken_sleeper_preempts_current() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let hpc = mk_task(&mut tt, "rank", 0);
        let daemon = mk_task(&mut tt, "daemon", 0);
        tt.get_mut(hpc).vruntime = 10_000_000_000;
        // Daemon placed with sleeper bonus 12ms behind -> lag > 4ms gran.
        tt.get_mut(daemon).vruntime = 10_000_000_000 - fx.cfg.sleeper_bonus.as_nanos();
        let ctx = fx.ctx();
        assert!(cfs.wakeup_preempt(CpuId(0), tt.get(hpc), tt.get(daemon), &ctx));
        // A task barely behind does not preempt.
        tt.get_mut(daemon).vruntime = 10_000_000_000 - 1_000_000;
        assert!(!cfs.wakeup_preempt(CpuId(0), tt.get(hpc), tt.get(daemon), &ctx));
    }

    #[test]
    fn nice_does_not_prevent_sleeper_preemption() {
        // The paper's §IV point: an HPC task with nice -19 is still
        // preempted by a waking daemon.
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let hpc = mk_task(&mut tt, "rank", -19);
        let daemon = mk_task(&mut tt, "daemon", 0);
        let ctx = fx.ctx();
        tt.get_mut(hpc).vruntime = 5_000_000_000;
        cfs.enqueue(CpuId(0), tt.get_mut(hpc), &ctx, false);
        cfs.pick_next(CpuId(0), &tt);
        cfs.enqueue(CpuId(0), tt.get_mut(daemon), &ctx, true);
        cfs.dequeue(CpuId(0), tt.get_mut(daemon), &ctx);
        assert!(
            cfs.wakeup_preempt(CpuId(0), tt.get(hpc), tt.get(daemon), &ctx),
            "sleeper bonus defeats static priority"
        );
    }

    #[test]
    fn batch_tasks_get_no_bonus_and_no_preempt() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let hpc = mk_task(&mut tt, "rank", 0);
        let batch =
            tt.alloc(|p| Task::new(p, "batch", Policy::Batch { nice: 0 }, CpuMask::first_n(8)));
        let ctx = fx.ctx();
        cfs.enqueue(CpuId(0), tt.get_mut(hpc), &ctx, false);
        cfs.pick_next(CpuId(0), &tt);
        cfs.update_curr(CpuId(0), tt.get_mut(hpc), SimDuration::from_secs(10));
        cfs.enqueue(CpuId(0), tt.get_mut(batch), &ctx, true);
        // No sleeper credit for batch: placed at min_vruntime, not below.
        assert_eq!(tt.get(batch).vruntime, 10_000_000_000);
        assert!(!cfs.wakeup_preempt(CpuId(0), tt.get(hpc), tt.get(batch), &ctx));
    }

    #[test]
    fn update_curr_scales_with_weight() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let normal = mk_task(&mut tt, "n", 0);
        let heavy = mk_task(&mut tt, "h", -10);
        let _ctx = fx.ctx();
        cfs.update_curr(CpuId(0), tt.get_mut(normal), SimDuration::from_millis(1));
        cfs.update_curr(CpuId(0), tt.get_mut(heavy), SimDuration::from_millis(1));
        assert_eq!(tt.get(normal).vruntime, 1_000_000);
        // nice -10 weight 9548: vruntime grows ~9.3x slower.
        let expected = 1_000_000u64 * 1024 / 9548;
        assert_eq!(tt.get(heavy).vruntime, expected);
    }

    #[test]
    fn tick_expires_slice_only_with_competition() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let a = mk_task(&mut tt, "a", 0);
        let b = mk_task(&mut tt, "b", 0);
        let ctx = fx.ctx();
        // Alone: never resched regardless of runtime.
        tt.get_mut(a).ran_since_pick = SimDuration::from_secs(10);
        assert!(!cfs.task_tick(CpuId(0), tt.get_mut(a), &ctx));
        // With a competitor queued: slice = latency/2 = 12ms.
        cfs.enqueue(CpuId(0), tt.get_mut(b), &ctx, false);
        tt.get_mut(a).ran_since_pick = SimDuration::from_millis(13);
        assert!(cfs.task_tick(CpuId(0), tt.get_mut(a), &ctx));
        tt.get_mut(a).ran_since_pick = SimDuration::from_millis(5);
        tt.get_mut(a).vruntime = 0;
        assert!(!cfs.task_tick(CpuId(0), tt.get_mut(a), &ctx));
    }

    #[test]
    fn fork_placement_prefers_idlest() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let t = mk_task(&mut tt, "child", 0);
        let mut snap = snapshot(8);
        snap.nr_running = vec![2, 1, 0, 1, 3, 0, 1, 1];
        let ctx = fx.ctx();
        // Socket0 is less loaded (4 vs 5); its emptiest core is core1
        // (cpus 2,3) and cpu2 is idle.
        let got = cfs.select_cpu_fork(tt.get(t), CpuId(0), &ctx, &snap, &tt);
        assert_eq!(got, CpuId(2));
        // On a fully tied machine the parent's CPU wins.
        snap.nr_running = vec![0; 8];
        let got = cfs.select_cpu_fork(tt.get(t), CpuId(5), &ctx, &snap, &tt);
        assert_eq!(got, CpuId(5));
        // Successive placements on an empty machine spread across
        // sockets then cores before touching SMT siblings.
        snap.nr_running = vec![0; 8];
        let mut placed = Vec::new();
        for _ in 0..4 {
            let cpu = cfs.select_cpu_fork(tt.get(t), CpuId(0), &ctx, &snap, &tt);
            snap.nr_running[cpu.index()] += 1;
            placed.push(cpu);
        }
        let cores: std::collections::HashSet<u32> = placed.iter().map(|c| c.0 / 2).collect();
        assert_eq!(cores.len(), 4, "one per core first: {placed:?}");
    }

    #[test]
    fn wakeup_placement_stays_when_no_idle() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let t = mk_task(&mut tt, "d", 0);
        tt.get_mut(t).cpu = CpuId(3);
        let mut snap = snapshot(8);
        snap.curr_kind = vec![Some(ClassKind::Fair); 8];
        let ctx = fx.ctx();
        assert_eq!(cfs.select_cpu_wakeup(tt.get(t), &ctx, &snap, &tt), CpuId(3));
    }

    #[test]
    fn wakeup_placement_finds_nearby_idle() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let t = mk_task(&mut tt, "d", 0);
        tt.get_mut(t).cpu = CpuId(2);
        let mut snap = snapshot(8);
        snap.curr_kind = vec![Some(ClassKind::Fair); 8];
        snap.nr_running = vec![1; 8];
        // cpu3 = SMT sibling of cpu2, free; cpu7 free on other socket.
        snap.curr_kind[3] = None;
        snap.nr_running[3] = 0;
        snap.curr_kind[7] = None;
        snap.nr_running[7] = 0;
        let ctx = fx.ctx();
        assert_eq!(cfs.select_cpu_wakeup(tt.get(t), &ctx, &snap, &tt), CpuId(3));
        // Sibling busy again: with only cpu7 free, the "anywhere" tier
        // finds it.
        snap.curr_kind[3] = Some(ClassKind::Fair);
        snap.nr_running[3] = 1;
        assert_eq!(cfs.select_cpu_wakeup(tt.get(t), &ctx, &snap, &tt), CpuId(7));
        // A CPU that is idle but already has a queued wakee is not free.
        snap.nr_running[7] = 1;
        snap.curr_kind[7] = None;
        assert_eq!(cfs.select_cpu_wakeup(tt.get(t), &ctx, &snap, &tt), CpuId(2));
    }

    #[test]
    fn idle_balance_pulls_from_overloaded() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let running = mk_task(&mut tt, "r", 0);
        let queued = mk_task(&mut tt, "q", 0);
        let ctx = fx.ctx();
        // CPU 4 runs `running` and also has `queued` waiting.
        tt.get_mut(queued).cpu = CpuId(4);
        cfs.enqueue(CpuId(4), tt.get_mut(queued), &ctx, false);
        let mut snap = snapshot(8);
        snap.curr_kind[4] = Some(ClassKind::Fair);
        snap.nr_running[4] = 2;
        let _ = running;
        let plans = idle_plans(&mut cfs, CpuId(0), &ctx, &snap, &tt);
        assert_eq!(plans, vec![MigrationPlan::pull(queued, CpuId(4), CpuId(0))]);
    }

    #[test]
    fn idle_balance_ignores_single_task_cpus() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let tt = TaskTable::new();
        let mut snap = snapshot(8);
        // Everyone runs exactly one task; nothing queued anywhere.
        snap.curr_kind = vec![Some(ClassKind::Fair); 8];
        snap.nr_running = vec![1; 8];
        let ctx = fx.ctx();
        assert!(idle_plans(&mut cfs, CpuId(2), &ctx, &snap, &tt).is_empty());
    }

    #[test]
    fn periodic_balance_moves_on_small_imbalance() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let q1 = mk_task(&mut tt, "q1", 0);
        let ctx = fx.ctx();
        tt.get_mut(q1).cpu = CpuId(1);
        cfs.enqueue(CpuId(1), tt.get_mut(q1), &ctx, false);
        let mut snap = snapshot(8);
        snap.curr_kind[1] = Some(ClassKind::Fair);
        // cpu1 active=2 (1 running + 1 queued), cpu0 active=0 → steal.
        let plans = periodic_plans(&mut cfs, CpuId(0), 0, &ctx, &snap, &tt);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].from, CpuId(1));
        // cpu0 also busy with one: 2-vs-1 still steals (fair.c small
        // imbalance behaviour).
        snap.curr_kind[0] = Some(ClassKind::Fair);
        let plans = periodic_plans(&mut cfs, CpuId(0), 0, &ctx, &snap, &tt);
        assert_eq!(plans.len(), 1);
        // Equal load: no move.
        snap.nr_running[0] = 2;
        let q0 = mk_task(&mut tt, "q0", 0);
        cfs.enqueue(CpuId(0), tt.get_mut(q0), &ctx, false);
        let plans = periodic_plans(&mut cfs, CpuId(0), 0, &ctx, &snap, &tt);
        assert!(plans.is_empty());
    }

    #[test]
    fn active_balance_moves_running_task_off_doubled_core() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let a = mk_task(&mut tt, "a", 0);
        let b = mk_task(&mut tt, "b", 0);
        // cpus 0 and 1 (one core) both run CFS tasks; core of cpu4 idle.
        tt.get_mut(a).cpu = CpuId(0);
        tt.get_mut(a).state = crate::task::TaskState::Running;
        tt.get_mut(a).ran_since_pick = SimDuration::from_millis(50);
        tt.get_mut(b).cpu = CpuId(1);
        tt.get_mut(b).state = crate::task::TaskState::Running;
        let mut snap = snapshot(8);
        snap.curr_kind[0] = Some(ClassKind::Fair);
        snap.curr_kind[1] = Some(ClassKind::Fair);
        snap.nr_running[0] = 1;
        snap.nr_running[1] = 1;
        let ctx = fx.ctx();
        // cpu4 balances at the package level (level 2 on the js22).
        let plans = periodic_plans(&mut cfs, CpuId(4), 2, &ctx, &snap, &tt);
        assert_eq!(plans.len(), 1, "active balance fires");
        assert!(plans[0].active);
        assert_eq!(plans[0].to, CpuId(4));
        assert_eq!(plans[0].pid, a, "the sustained runner is carried");
    }

    #[test]
    fn active_balance_needs_fully_idle_core() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let a = mk_task(&mut tt, "a", 0);
        let b = mk_task(&mut tt, "b", 0);
        tt.get_mut(a).cpu = CpuId(0);
        tt.get_mut(a).state = crate::task::TaskState::Running;
        tt.get_mut(a).ran_since_pick = SimDuration::from_millis(50);
        tt.get_mut(b).cpu = CpuId(1);
        tt.get_mut(b).state = crate::task::TaskState::Running;
        let mut snap = snapshot(8);
        snap.curr_kind[0] = Some(ClassKind::Fair);
        snap.curr_kind[1] = Some(ClassKind::Fair);
        snap.nr_running[0] = 1;
        snap.nr_running[1] = 1;
        // cpu5's sibling cpu4 is busy: its core is not idle → no active
        // balance from cpu5.
        snap.curr_kind[4] = Some(ClassKind::Fair);
        snap.nr_running[4] = 1;
        let ctx = fx.ctx();
        let plans = periodic_plans(&mut cfs, CpuId(5), 2, &ctx, &snap, &tt);
        assert!(plans.is_empty());
    }

    #[test]
    fn active_balance_respects_sustain_gate() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let a = mk_task(&mut tt, "a", 0);
        let b = mk_task(&mut tt, "b", 0);
        tt.get_mut(a).cpu = CpuId(0);
        tt.get_mut(a).state = crate::task::TaskState::Running;
        // Just started running: not a sustained overload yet.
        tt.get_mut(a).ran_since_pick = SimDuration::from_micros(100);
        tt.get_mut(b).cpu = CpuId(1);
        tt.get_mut(b).state = crate::task::TaskState::Running;
        tt.get_mut(b).ran_since_pick = SimDuration::from_micros(100);
        let mut snap = snapshot(8);
        snap.curr_kind[0] = Some(ClassKind::Fair);
        snap.curr_kind[1] = Some(ClassKind::Fair);
        snap.nr_running[0] = 1;
        snap.nr_running[1] = 1;
        let ctx = fx.ctx();
        assert!(periodic_plans(&mut cfs, CpuId(4), 2, &ctx, &snap, &tt).is_empty());
    }

    #[test]
    fn steal_respects_affinity() {
        let fx = Fixture::new();
        let mut cfs = CfsClass::new();
        cfs.init(8);
        let mut tt = TaskTable::new();
        let pinned = tt.alloc(|p| {
            Task::new(
                p,
                "pinned",
                Policy::Normal { nice: 0 },
                CpuMask::single(CpuId(4)),
            )
        });
        let ctx = fx.ctx();
        tt.get_mut(pinned).cpu = CpuId(4);
        cfs.enqueue(CpuId(4), tt.get_mut(pinned), &ctx, false);
        let mut snap = snapshot(8);
        snap.curr_kind[4] = Some(ClassKind::Fair);
        snap.nr_running[4] = 2;
        // Task is pinned to cpu4: idle cpu0 cannot steal it.
        assert!(idle_plans(&mut cfs, CpuId(0), &ctx, &snap, &tt).is_empty());
    }
}
