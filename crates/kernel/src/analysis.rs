//! Trace analysis: turning a scheduler event log into the paper's §III
//! evidence.
//!
//! The paper identifies the scheduler as the dominant noise source by
//! correlating counters with execution time. Given an event trace this
//! module reconstructs the *episodes* behind those counters: who
//! preempted whom and for how long, how long each migration's victim had
//! been running (cache warmth lost), and per-task residency. This is the
//! analysis a kernel developer would do with `perf sched` on the real
//! machine.

use crate::task::Pid;
use crate::trace::{TraceBuffer, TraceEvent};
use hpl_sim::stats::Summary;
use hpl_sim::{SimDuration, SimTime};
use hpl_topology::CpuId;
use std::collections::HashMap;

/// One preemption episode: `victim` lost its CPU to `intruder` and got it
/// back (or moved elsewhere) after `stolen`.
#[derive(Debug, Clone, PartialEq)]
pub struct Preemption {
    /// When the victim was displaced.
    pub at: SimTime,
    /// CPU where it happened.
    pub cpu: CpuId,
    /// The displaced task.
    pub victim: Pid,
    /// The task that took over.
    pub intruder: Pid,
    /// Time until the victim next ran anywhere.
    pub stolen: SimDuration,
}

/// Per-task residency: how much trace-window time the task spent as some
/// CPU's current task.
#[derive(Debug, Clone, PartialEq)]
pub struct Residency {
    /// Task.
    pub pid: Pid,
    /// Total time as a CPU's current task within the window.
    pub running: SimDuration,
    /// Number of distinct CPUs the task ran on.
    pub cpus_used: u32,
}

/// The full analysis of one trace window.
#[derive(Debug)]
pub struct TraceAnalysis {
    /// All reconstructed preemption episodes, in time order.
    pub preemptions: Vec<Preemption>,
    /// Residency per task seen running in the window.
    pub residency: Vec<Residency>,
    /// Migration count per task.
    pub migrations: HashMap<Pid, u32>,
}

impl TraceAnalysis {
    /// Analyse a trace over `[start, end)` on an `ncpus` machine.
    ///
    /// A *preemption* is a switch whose outgoing task runs again later
    /// (it did not block forever or exit within the window) — the same
    /// over-approximation `perf sched latency` makes; voluntary switches
    /// where the victim never reappears are not counted.
    pub fn analyse(trace: &TraceBuffer, ncpus: usize, start: SimTime, end: SimTime) -> Self {
        let mut running_since: HashMap<Pid, (SimTime, CpuId)> = HashMap::new();
        let mut displaced_at: HashMap<Pid, (SimTime, CpuId, Pid)> = HashMap::new();
        let mut running_total: HashMap<Pid, SimDuration> = HashMap::new();
        let mut cpus_used: HashMap<Pid, std::collections::HashSet<u32>> = HashMap::new();
        let mut migrations: HashMap<Pid, u32> = HashMap::new();
        let mut preemptions = Vec::new();

        for (t, ev) in trace {
            if t < start || t >= end {
                continue;
            }
            match ev {
                TraceEvent::Switch { cpu, from, to } => {
                    if cpu.index() >= ncpus {
                        continue;
                    }
                    if let Some(prev) = from {
                        if let Some((since, _)) = running_since.remove(&prev) {
                            *running_total.entry(prev).or_default() += t.since(since.max(start));
                        }
                        if let Some(next) = to {
                            // Candidate preemption: resolved when (if)
                            // the victim runs again.
                            displaced_at.insert(prev, (t, cpu, next));
                        }
                    }
                    if let Some(next) = to {
                        running_since.insert(next, (t, cpu));
                        cpus_used.entry(next).or_default().insert(cpu.0);
                        if let Some((when, where_, intruder)) = displaced_at.remove(&next) {
                            preemptions.push(Preemption {
                                at: when,
                                cpu: where_,
                                victim: next,
                                intruder,
                                stolen: t.since(when),
                            });
                        }
                    }
                }
                TraceEvent::Migrate { pid, .. } => {
                    *migrations.entry(pid).or_default() += 1;
                }
                TraceEvent::Wakeup { .. } | TraceEvent::Net { .. } => {}
            }
        }
        // Close out tasks still running at window end.
        for (pid, (since, _)) in running_since {
            *running_total.entry(pid).or_default() += end.since(since.max(start));
        }

        preemptions.sort_by_key(|p| p.at);
        let mut residency: Vec<Residency> = running_total
            .into_iter()
            .map(|(pid, running)| Residency {
                pid,
                running,
                cpus_used: cpus_used.get(&pid).map_or(0, |s| s.len() as u32),
            })
            .collect();
        residency.sort_by_key(|r| r.pid);
        TraceAnalysis {
            preemptions,
            residency,
            migrations,
        }
    }

    /// Preemption episodes suffered by one task.
    pub fn preemptions_of(&self, pid: Pid) -> impl Iterator<Item = &Preemption> {
        self.preemptions.iter().filter(move |p| p.victim == pid)
    }

    /// Summary of stolen-time durations (the noise-duration distribution
    /// the injection literature characterises).
    pub fn stolen_time_summary(&self) -> Summary {
        Summary::from_slice(
            &self
                .preemptions
                .iter()
                .map(|p| p.stolen.as_secs_f64())
                .collect::<Vec<_>>(),
        )
    }

    /// Total time stolen from a set of tasks (e.g. the application's
    /// ranks) — the direct overhead of preemption noise.
    pub fn total_stolen_from(&self, pids: &[Pid]) -> SimDuration {
        self.preemptions
            .iter()
            .filter(|p| pids.contains(&p.victim))
            .fold(SimDuration::ZERO, |acc, p| acc + p.stolen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn switch(b: &mut TraceBuffer, at: u64, cpu: u32, from: Option<u32>, to: Option<u32>) {
        b.record(
            t(at),
            TraceEvent::Switch {
                cpu: CpuId(cpu),
                from: from.map(Pid),
                to: to.map(Pid),
            },
        );
    }

    #[test]
    fn reconstructs_simple_preemption() {
        let mut b = TraceBuffer::new(100);
        // Task 1 runs from 0; daemon 2 preempts at 100; task 1 back at 250.
        switch(&mut b, 0, 0, None, Some(1));
        switch(&mut b, 100, 0, Some(1), Some(2));
        switch(&mut b, 250, 0, Some(2), Some(1));
        let a = TraceAnalysis::analyse(&b, 1, t(0), t(1000));
        assert_eq!(a.preemptions.len(), 1);
        let p = &a.preemptions[0];
        assert_eq!(p.victim, Pid(1));
        assert_eq!(p.intruder, Pid(2));
        assert_eq!(p.stolen, SimDuration::from_nanos(150));
    }

    #[test]
    fn victim_resuming_on_other_cpu_counts() {
        let mut b = TraceBuffer::new(100);
        switch(&mut b, 0, 0, None, Some(1));
        switch(&mut b, 100, 0, Some(1), Some(2));
        // Task 1 resumes on cpu1 after a migration.
        switch(&mut b, 300, 1, None, Some(1));
        b.record(
            t(299),
            TraceEvent::Migrate {
                pid: Pid(1),
                from: CpuId(0),
                to: CpuId(1),
            },
        );
        let a = TraceAnalysis::analyse(&b, 2, t(0), t(1000));
        assert_eq!(a.preemptions.len(), 1);
        assert_eq!(a.preemptions[0].stolen, SimDuration::from_nanos(200));
        assert_eq!(a.migrations.get(&Pid(1)), Some(&1));
    }

    #[test]
    fn voluntary_final_block_is_not_a_preemption() {
        let mut b = TraceBuffer::new(100);
        switch(&mut b, 0, 0, None, Some(1));
        // Task 1 blocks; cpu goes idle; task never runs again.
        switch(&mut b, 100, 0, Some(1), None);
        let a = TraceAnalysis::analyse(&b, 1, t(0), t(1000));
        assert!(a.preemptions.is_empty());
        // Residency is the 100ns it ran.
        assert_eq!(a.residency.len(), 1);
        assert_eq!(a.residency[0].running, SimDuration::from_nanos(100));
    }

    #[test]
    fn residency_spans_window_end() {
        let mut b = TraceBuffer::new(100);
        switch(&mut b, 0, 0, None, Some(1));
        let a = TraceAnalysis::analyse(&b, 1, t(0), t(500));
        assert_eq!(a.residency[0].running, SimDuration::from_nanos(500));
        assert_eq!(a.residency[0].cpus_used, 1);
    }

    #[test]
    fn stolen_summary_and_filters() {
        let mut b = TraceBuffer::new(100);
        switch(&mut b, 0, 0, None, Some(1));
        switch(&mut b, 100, 0, Some(1), Some(2));
        switch(&mut b, 200, 0, Some(2), Some(1));
        switch(&mut b, 400, 0, Some(1), Some(3));
        switch(&mut b, 700, 0, Some(3), Some(1));
        let a = TraceAnalysis::analyse(&b, 1, t(0), t(1000));
        assert_eq!(a.preemptions.len(), 2);
        assert_eq!(a.preemptions_of(Pid(1)).count(), 2);
        let s = a.stolen_time_summary();
        assert_eq!(s.count(), 2);
        assert_eq!(
            a.total_stolen_from(&[Pid(1)]),
            SimDuration::from_nanos(100 + 300)
        );
        assert_eq!(a.total_stolen_from(&[Pid(9)]), SimDuration::ZERO);
    }

    #[test]
    fn events_outside_window_ignored() {
        let mut b = TraceBuffer::new(100);
        switch(&mut b, 0, 0, None, Some(1));
        switch(&mut b, 2000, 0, Some(1), Some(2));
        let a = TraceAnalysis::analyse(&b, 1, t(0), t(1000));
        assert!(a.preemptions.is_empty());
    }
}
