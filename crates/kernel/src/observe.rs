//! Unified scheduler observability: the [`SchedObserver`] sink API.
//!
//! Every decision the kernel makes — which class supplied the next task,
//! whether a wakeup preempted, where a fork landed, what a balance pass
//! moved, why a tick was skipped — is published as a [`SchedEvent`] to
//! the observers attached to the node. Observers are pure sinks: they
//! receive copies of decision data and may never touch the RNG, the
//! event queue or any task state, so attaching one cannot perturb the
//! simulation (the differential tests in `tests/observability.rs` hold
//! the kernel to that: byte-identical `state_fingerprint()`, counters
//! and execution times with observers on and off).
//!
//! With no observer attached the cost is a single is-empty branch per
//! decision point; the event payloads are plain `Copy` data already at
//! hand, so nothing is formatted or allocated on the disabled path.
//!
//! Three sinks ship with the kernel:
//!
//! * [`RingSink`] — the pre-existing bounded [`TraceBuffer`] (with its
//!   ASCII Gantt renderer) reimplemented as a sink; it keeps exactly the
//!   old three-variant event vocabulary.
//! * [`ChromeTraceSink`] — a streaming Chrome-trace (a.k.a. Trace Event
//!   Format / Perfetto JSON) exporter: one "X" complete event per
//!   occupancy slice per CPU plus "i" instants for migrations and
//!   wakeups. The output loads directly in `chrome://tracing` or
//!   <https://ui.perfetto.dev>.
//! * [`MetricsSink`] — fills an [`hpl_perf::SchedMetrics`] registry:
//!   decision counters, per-CPU switch counts and log2 histograms of
//!   timeslice length, off-CPU latency and migration inter-arrival.
//!
//! One caveat, by design: ticks batched by the quiescence fast-forward
//! (see `node.rs`) are *not* replayed through observers — they are
//! provably inert, so no switch, wakeup or migration can hide inside a
//! batched window — and dispatched quiescent ticks still arrive as
//! [`TickOutcome::Quiescent`]. Observer streams are therefore compared
//! within one event-loop flavour, while simulation state is identical
//! across both.

use crate::class::ClassKind;
use crate::sync::ChanId;
use crate::task::{Pid, Policy};
use crate::trace::{TraceBuffer, TraceEvent};
use hpl_perf::SchedMetrics;
use hpl_sim::{SimDuration, SimTime};
use hpl_topology::CpuId;
use std::any::Any;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Why a task's CPU assignment changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateReason {
    /// Fork-time placement of a new task.
    Fork,
    /// Wakeup placement of a blocked task.
    Wakeup,
    /// Load balancer (periodic, new-idle or RT push) moved it.
    Balance,
    /// `sched_setaffinity` forced it off an excluded CPU.
    Affinity,
}

/// Why a task left the runnable population ([`SchedEvent::Deactivate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeactivateReason {
    /// Blocked: sleep, channel/barrier wait, or `waitpid`.
    Block,
    /// Exited for good.
    Exit,
}

/// Verdict of a wakeup-preemption check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptVerdict {
    /// The CPU was idle; the woken task takes it without a contest.
    IdleCpu,
    /// The woken task's class outranks the running task's class.
    HigherClass,
    /// The woken task's class is outranked; no preemption possible.
    LowerClass,
    /// Same class, and the class's `wakeup_preempt` said yes.
    Granted,
    /// Same class, and the class's `wakeup_preempt` said no.
    Denied,
}

impl PreemptVerdict {
    /// True iff the verdict displaced (or immediately dispatched onto)
    /// the CPU — i.e. a reschedule was requested.
    pub fn preempts(self) -> bool {
        matches!(
            self,
            PreemptVerdict::IdleCpu | PreemptVerdict::HigherClass | PreemptVerdict::Granted
        )
    }
}

/// What a dispatched timer tick did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// Provably inert (idle CPU or lone tickless-HPC task, no balance
    /// due): counted and dropped without touching any state.
    Quiescent,
    /// Handler ran but charged no tick cost (NOHZ idle / tickless-HPC).
    Skipped,
    /// Full tick: cost charged, class `task_tick` ran.
    Accounted {
        /// Whether the class requested a reschedule (slice expiry).
        resched: bool,
    },
}

/// Which balancer produced a [`SchedEvent::Balance`] decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceKind {
    /// New-idle balance: a CPU found all class queues empty in
    /// `schedule()` and tried to pull work.
    NewIdle,
    /// Periodic balance at one scheduling-domain level.
    Periodic {
        /// Domain level (0 = innermost).
        level: usize,
    },
    /// RT overload push after an RT wakeup.
    RtPush,
}

/// One kernel scheduling decision, published to every attached observer.
///
/// All payloads are small `Copy` data that the decision point already
/// holds; constructing one allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// `__schedule()` picked (or failed to pick) a next task.
    Pick {
        /// CPU that rescheduled.
        cpu: CpuId,
        /// Task that was current when `schedule()` entered.
        prev: Option<Pid>,
        /// Task picked to run next (`None` = idle).
        picked: Option<Pid>,
        /// Class that supplied the pick.
        class: Option<ClassKind>,
        /// Whether the pick only succeeded after a new-idle balance
        /// pulled work over.
        via_idle_balance: bool,
        /// `prev`'s CFS virtual runtime *after* deschedule accounting
        /// and any re-enqueue renormalisation, `None` when the CPU was
        /// idle or `prev` is not a fair-class task. Lets an external
        /// oracle check vruntime monotonicity across consecutive
        /// descheduls without reaching into the task table.
        prev_vruntime: Option<u64>,
    },
    /// `sched_switch`: the CPU's current task changed.
    Switch {
        /// CPU where the switch happened.
        cpu: CpuId,
        /// Previous current (`None` = was idle).
        from: Option<Pid>,
        /// New current (`None` = going idle).
        to: Option<Pid>,
    },
    /// A wakeup-preemption check ran after `woken` was enqueued.
    PreemptCheck {
        /// CPU checked.
        cpu: CpuId,
        /// Its current task at check time.
        curr: Option<Pid>,
        /// The task just enqueued.
        woken: Pid,
        /// The decision and its rationale.
        verdict: PreemptVerdict,
    },
    /// `sched_wakeup`: a blocked task became runnable.
    Wakeup {
        /// Task woken.
        pid: Pid,
        /// CPU it was enqueued on.
        cpu: CpuId,
    },
    /// The current task left the runnable population: it blocked or
    /// exited. Emitted at the deactivation point itself, *before* the
    /// reschedule it triggers, so a following [`SchedEvent::Pick`] that
    /// names the pid as `prev` refers to an already-departed task.
    Deactivate {
        /// Task leaving the CPU.
        pid: Pid,
        /// CPU it was current on.
        cpu: CpuId,
        /// Block or exit.
        reason: DeactivateReason,
    },
    /// A task's scheduling policy was established: `from` is `None` at
    /// creation time and `Some` on a `sched_setscheduler` call.
    SetSched {
        /// Task whose policy changed.
        pid: Pid,
        /// Previous policy (`None`: task creation).
        from: Option<Policy>,
        /// New policy.
        to: Policy,
    },
    /// A noise-daemon activation: the woken task belongs to the node's
    /// daemon population (fires alongside [`SchedEvent::Wakeup`]).
    NoiseArrival {
        /// The daemon (or daemon burst child).
        pid: Pid,
        /// CPU it landed on.
        cpu: CpuId,
    },
    /// A new task was created and placed by its class's fork balancer.
    ForkPlaced {
        /// The new task.
        pid: Pid,
        /// Its parent (`None` for harness spawns).
        parent: Option<Pid>,
        /// Chosen CPU.
        cpu: CpuId,
    },
    /// `sched_migrate_task`: a task changed CPUs.
    Migrate {
        /// Task moved.
        pid: Pid,
        /// Source CPU.
        from: CpuId,
        /// Destination CPU.
        to: CpuId,
        /// Why it moved.
        reason: MigrateReason,
    },
    /// A balance pass completed.
    Balance {
        /// CPU that ran the balancer.
        cpu: CpuId,
        /// Which balancer.
        kind: BalanceKind,
        /// Migrations actually applied.
        migrations: u32,
    },
    /// A cross-node message left this node: a [`crate::Step::NetSend`]
    /// hit a channel registered as a network endpoint and was captured
    /// for the cluster interconnect to route.
    NetSend {
        /// Sending task.
        pid: Pid,
        /// CPU it ran on.
        cpu: CpuId,
        /// Destination channel (lives on the destination node).
        chan: ChanId,
        /// Tokens carried.
        tokens: u32,
        /// Payload size.
        bytes: u64,
    },
    /// A cross-node message arrived: the cluster driver's delivery
    /// event deposited tokens into the local channel, waking any waiter
    /// exactly as a local notify would.
    NetDeliver {
        /// Channel delivered to.
        chan: ChanId,
        /// Tokens deposited.
        tokens: u32,
        /// Send-to-delivery time (wire latency + serialisation +
        /// contention queueing).
        latency: SimDuration,
        /// Portion of `latency` spent queued behind earlier messages on
        /// the same link (zero on an uncontended link).
        queued: SimDuration,
    },
    /// A device interrupt was delivered.
    Irq {
        /// Servicing CPU.
        cpu: CpuId,
        /// Handler cost charged.
        cost: SimDuration,
    },
    /// A timer tick was dispatched.
    Tick {
        /// Ticked CPU.
        cpu: CpuId,
        /// What the tick did.
        outcome: TickOutcome,
    },
    /// A batch-level job entered the cluster queue. Batch events are
    /// published by the cluster-level scheduler (`hpl-batch`) through
    /// [`crate::Node::publish`] on its head node, so one observer stream
    /// carries both scheduling levels.
    JobSubmit {
        /// Batch job id (trace order).
        job: u32,
        /// Queue depth after the submit.
        queue_depth: u32,
    },
    /// A batch-level job was allocated nodes and launched.
    JobStart {
        /// Batch job id.
        job: u32,
        /// Queue depth after the job left the queue.
        queue_depth: u32,
        /// Time the job spent queued (submit → start).
        waited: SimDuration,
    },
    /// A batch-level job's launcher trees all exited.
    JobEnd {
        /// Batch job id.
        job: u32,
        /// Queue depth at completion time.
        queue_depth: u32,
    },
    /// The node's gang controller switched the active gang — an epoch
    /// boundary fired or the live gang set changed. `None` means
    /// rotation ended (fewer than two gangs remain).
    GangEpoch {
        /// Gang whose tasks are now eligible (`None`: no rotation).
        active: Option<u64>,
        /// Live gang count after the switch.
        gangs: u32,
    },
    /// A DFRS reallocation assigned a job a fractional CPU share on a
    /// node. Published by the batch scheduler through
    /// [`crate::Node::publish`], like the job lifecycle events.
    JobShare {
        /// Batch job id.
        job: u32,
        /// Node index hosting the share.
        node: u32,
        /// Share in milli-units (1000 = the node's full CPU capacity).
        share_milli: u32,
    },
    /// Weighted gang slicing started a slice: `gang` owns the CPU until
    /// the slice boundary `slice_ns` from now. Emitted only while a
    /// share table is set (see [`crate::Node::gang_set_share`]), once
    /// per slice; a mid-slice share change re-emits with the corrected
    /// remainder. Unweighted rotation emits only [`Self::GangEpoch`].
    GangSlice {
        /// Gang that owns the starting slice.
        gang: u64,
        /// The gang's milli-CPU share (default weight 1000).
        share_milli: u32,
        /// Slice length — time until the next boundary, in ns.
        slice_ns: u64,
        /// Live gang count (the rotation period spans `gangs` epochs).
        gangs: u32,
    },
    /// A CPU's running task changed gang context (emitted alongside
    /// [`Self::Switch`] while any gang is enrolled): the incoming
    /// task's gang, `None` for gangless tasks or an idling CPU. This is
    /// what lets [`MetricsSink`] integrate per-gang busy time so share
    /// skew is *observable*, not just scheduled.
    GangRun {
        /// The switching CPU.
        cpu: CpuId,
        /// Gang of the task now running (`None`: idle or gangless).
        gang: Option<u64>,
    },
    /// The user-space coordination arbiter granted a CPU lease
    /// (`hpl-coord`'s cooperative backend; published from the arbiter
    /// task through [`crate::Step::Emit`]).
    Lease {
        /// Gang (job) receiving the lease.
        gang: u64,
        /// The gang's registered milli-CPU share.
        share_milli: u32,
        /// Blocked ranks released by this grant.
        granted: u32,
        /// Registered co-resident jobs at grant time.
        jobs: u32,
    },
}

/// A sink for kernel scheduling decisions.
///
/// Implementations must be pure consumers: `observe` may only mutate
/// the sink itself. The kernel guarantees events arrive in simulation
/// order with non-decreasing timestamps. `Send` because whole
/// [`crate::Node`]s move between host threads in the cluster's parallel
/// co-simulation.
pub trait SchedObserver: Any + Send {
    /// Receive one decision, stamped with the simulation time at which
    /// it was made.
    fn observe(&mut self, at: SimTime, ev: &SchedEvent);

    /// Downcast support (`Node::observer::<T>()`).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Handle to an observer attached to a node (index into its sink list;
/// observers live as long as the node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserverId(usize);

impl ObserverId {
    pub(crate) fn new(index: usize) -> Self {
        ObserverId(index)
    }

    pub(crate) fn index(self) -> usize {
        self.0
    }
}

// ---------------------------------------------------------------------
// Sink 1: the bounded ring
// ---------------------------------------------------------------------

/// The classic bounded trace ring as a sink: keeps exactly the historic
/// [`TraceBuffer`] vocabulary (switches, migrations, wakeups) and its
/// Gantt renderer, ignoring the richer decision events.
#[derive(Debug)]
pub struct RingSink {
    buf: TraceBuffer,
}

impl RingSink {
    /// Ring bounded at `capacity` events (oldest kept on overflow).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: TraceBuffer::new(capacity),
        }
    }

    /// The recorded buffer.
    pub fn buffer(&self) -> &TraceBuffer {
        &self.buf
    }

    /// Consume the sink, keeping the buffer.
    pub fn into_buffer(self) -> TraceBuffer {
        self.buf
    }
}

impl SchedObserver for RingSink {
    fn observe(&mut self, at: SimTime, ev: &SchedEvent) {
        let mapped = match *ev {
            SchedEvent::Switch { cpu, from, to } => TraceEvent::Switch { cpu, from, to },
            SchedEvent::Migrate { pid, from, to, .. } => TraceEvent::Migrate { pid, from, to },
            SchedEvent::Wakeup { pid, cpu } => TraceEvent::Wakeup { pid, cpu },
            SchedEvent::NetSend { chan, tokens, .. } => TraceEvent::Net {
                chan,
                tokens,
                out: true,
            },
            SchedEvent::NetDeliver { chan, tokens, .. } => TraceEvent::Net {
                chan,
                tokens,
                out: false,
            },
            _ => return,
        };
        self.buf.record(at, mapped);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// Sink 2: Chrome-trace / Perfetto JSON
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Slice {
    cpu: CpuId,
    pid: Pid,
    start: SimTime,
    end: SimTime,
}

#[derive(Debug, Clone, Copy)]
enum InstantKind {
    Migrate {
        from: CpuId,
        to: CpuId,
    },
    Wakeup,
    NetSend {
        chan: u64,
        bytes: u64,
    },
    NetDeliver {
        chan: u64,
        latency_ns: u64,
        queued_ns: u64,
    },
    JobSubmit {
        job: u32,
        depth: u32,
    },
    JobStart {
        job: u32,
        depth: u32,
        waited_ns: u64,
    },
    JobEnd {
        job: u32,
        depth: u32,
    },
}

/// Synthetic `tid` for the network track in Chrome-trace output: net
/// events render on their own row below the per-CPU tracks.
const NET_TID: u32 = 9_999;

/// Synthetic `tid` for the batch-scheduler track: cluster-level job
/// lifecycle events render on one row below the network track, so a
/// single trace shows both scheduling levels.
const BATCH_TID: u32 = 9_998;

#[derive(Debug, Clone, Copy)]
struct Instant {
    at: SimTime,
    cpu: CpuId,
    pid: Pid,
    kind: InstantKind,
}

/// Streaming Chrome-trace exporter: tracks per-CPU occupancy slices from
/// switch events and instants for migrations/wakeups; [`Self::to_json`]
/// renders the Trace Event Format JSON that `chrome://tracing` and
/// Perfetto load directly.
#[derive(Debug)]
pub struct ChromeTraceSink {
    slices: Vec<Slice>,
    instants: Vec<Instant>,
    /// Open occupancy per CPU: (task, switch-in time).
    open: Vec<Option<(Pid, SimTime)>>,
    capacity: usize,
    dropped: u64,
    switches: u64,
    migrations: u64,
    wakeups: u64,
}

impl ChromeTraceSink {
    /// Exporter bounded at `capacity` stored items (slices + instants);
    /// overflow increments a drop counter instead of growing unbounded.
    pub fn new(capacity: usize) -> Self {
        ChromeTraceSink {
            slices: Vec::new(),
            instants: Vec::new(),
            open: Vec::new(),
            capacity,
            dropped: 0,
            switches: 0,
            migrations: 0,
            wakeups: 0,
        }
    }

    fn stored(&self) -> usize {
        self.slices.len() + self.instants.len()
    }

    /// Switch events received (== metrics-registry switches).
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// Migrate events received.
    pub fn migration_count(&self) -> u64 {
        self.migrations
    }

    /// Wakeup events received.
    pub fn wakeup_count(&self) -> u64 {
        self.wakeups
    }

    /// Closed occupancy slices so far (open ones are closed by
    /// [`Self::to_json`] at its `end` argument).
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Instant events (migrations + wakeups) stored.
    pub fn instant_count(&self) -> usize {
        self.instants.len()
    }

    /// Items that did not fit under the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render Trace Event Format JSON over everything recorded, closing
    /// still-open occupancy slices at `end`. `resolve` maps a pid to a
    /// display name (the node does this from its task table). Timestamps
    /// are microseconds (the format's unit); `pid` in the output is the
    /// node (1), `tid` is the CPU, so each CPU renders as one track.
    pub fn to_json(&self, end: SimTime, resolve: impl FnMut(Pid) -> String) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        self.write_events(&mut out, &mut first, 1, end, resolve);
        let _ = write!(out, "\n],\"otherData\":{{\"dropped\":{}}}}}", self.dropped);
        out
    }

    /// Append this sink's trace events to a document under Chrome-trace
    /// process id `process` (cluster exports use one process — hence
    /// one track group — per node). `first` tracks comma placement
    /// across multiple appending sinks; the caller owns the surrounding
    /// `{"traceEvents":[...]}` envelope.
    pub fn write_events(
        &self,
        out: &mut String,
        first: &mut bool,
        process: u32,
        end: SimTime,
        mut resolve: impl FnMut(Pid) -> String,
    ) {
        let us = |t: SimTime| t.as_nanos() as f64 / 1e3;
        let mut push = |out: &mut String, ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&ev);
        };
        let closed_at_end = self.open.iter().enumerate().filter_map(|(i, o)| {
            o.map(|(pid, start)| Slice {
                cpu: CpuId(i as u32),
                pid,
                start,
                end,
            })
        });
        for s in self.slices.iter().copied().chain(closed_at_end) {
            let dur = (s.end.since(s.start).as_nanos() as f64 / 1e3).max(0.001);
            push(
                out,
                format!(
                    "{{\"name\":{},\"cat\":\"sched\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"task\":{}}}}}",
                    json_string(&resolve(s.pid)),
                    us(s.start),
                    dur,
                    process,
                    s.cpu.0,
                    s.pid.0
                ),
            );
        }
        for i in &self.instants {
            let (name, tid, extra) = match i.kind {
                InstantKind::Migrate { from, to } => (
                    format!("migrate {}", resolve(i.pid)),
                    i.cpu.0,
                    format!(
                        ",\"task\":{},\"from_cpu\":{},\"to_cpu\":{}",
                        i.pid.0, from.0, to.0
                    ),
                ),
                InstantKind::Wakeup => (
                    format!("wakeup {}", resolve(i.pid)),
                    i.cpu.0,
                    format!(",\"task\":{}", i.pid.0),
                ),
                InstantKind::NetSend { chan, bytes } => (
                    format!("net send c{chan}"),
                    NET_TID,
                    format!(
                        ",\"task\":{},\"chan\":{},\"bytes\":{}",
                        i.pid.0, chan, bytes
                    ),
                ),
                InstantKind::NetDeliver {
                    chan,
                    latency_ns,
                    queued_ns,
                } => (
                    format!("net recv c{chan}"),
                    NET_TID,
                    format!(
                        ",\"chan\":{},\"latency_ns\":{},\"queued_ns\":{}",
                        chan, latency_ns, queued_ns
                    ),
                ),
                InstantKind::JobSubmit { job, depth } => (
                    format!("job submit j{job}"),
                    BATCH_TID,
                    format!(",\"job\":{job},\"queue_depth\":{depth}"),
                ),
                InstantKind::JobStart {
                    job,
                    depth,
                    waited_ns,
                } => (
                    format!("job start j{job}"),
                    BATCH_TID,
                    format!(",\"job\":{job},\"queue_depth\":{depth},\"waited_ns\":{waited_ns}"),
                ),
                InstantKind::JobEnd { job, depth } => (
                    format!("job end j{job}"),
                    BATCH_TID,
                    format!(",\"job\":{job},\"queue_depth\":{depth}"),
                ),
            };
            push(
                out,
                format!(
                    "{{\"name\":{},\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"node\":{}{}}}}}",
                    json_string(&name),
                    us(i.at),
                    process,
                    tid,
                    process,
                    extra
                ),
            );
        }
    }
}

impl SchedObserver for ChromeTraceSink {
    fn observe(&mut self, at: SimTime, ev: &SchedEvent) {
        match *ev {
            SchedEvent::Switch { cpu, to, .. } => {
                self.switches += 1;
                if cpu.index() >= self.open.len() {
                    self.open.resize(cpu.index() + 1, None);
                }
                if let Some((pid, start)) = self.open[cpu.index()].take() {
                    if self.stored() < self.capacity {
                        self.slices.push(Slice {
                            cpu,
                            pid,
                            start,
                            end: at,
                        });
                    } else {
                        self.dropped += 1;
                    }
                }
                if let Some(next) = to {
                    self.open[cpu.index()] = Some((next, at));
                }
            }
            SchedEvent::Migrate { pid, from, to, .. } => {
                self.migrations += 1;
                if self.stored() < self.capacity {
                    self.instants.push(Instant {
                        at,
                        cpu: to,
                        pid,
                        kind: InstantKind::Migrate { from, to },
                    });
                } else {
                    self.dropped += 1;
                }
            }
            SchedEvent::Wakeup { pid, cpu } => {
                self.wakeups += 1;
                if self.stored() < self.capacity {
                    self.instants.push(Instant {
                        at,
                        cpu,
                        pid,
                        kind: InstantKind::Wakeup,
                    });
                } else {
                    self.dropped += 1;
                }
            }
            SchedEvent::NetSend {
                pid,
                cpu,
                chan,
                bytes,
                ..
            } => {
                if self.stored() < self.capacity {
                    self.instants.push(Instant {
                        at,
                        cpu,
                        pid,
                        kind: InstantKind::NetSend {
                            chan: chan.0,
                            bytes,
                        },
                    });
                } else {
                    self.dropped += 1;
                }
            }
            SchedEvent::NetDeliver {
                chan,
                latency,
                queued,
                ..
            } => {
                // No task/CPU context: the delivery happens at node scope
                // before any waiter is dispatched.
                if self.stored() < self.capacity {
                    self.instants.push(Instant {
                        at,
                        cpu: CpuId(0),
                        pid: Pid(0),
                        kind: InstantKind::NetDeliver {
                            chan: chan.0,
                            latency_ns: latency.as_nanos(),
                            queued_ns: queued.as_nanos(),
                        },
                    });
                } else {
                    self.dropped += 1;
                }
            }
            SchedEvent::JobSubmit { job, queue_depth } => {
                if self.stored() < self.capacity {
                    self.instants.push(Instant {
                        at,
                        cpu: CpuId(0),
                        pid: Pid(0),
                        kind: InstantKind::JobSubmit {
                            job,
                            depth: queue_depth,
                        },
                    });
                } else {
                    self.dropped += 1;
                }
            }
            SchedEvent::JobStart {
                job,
                queue_depth,
                waited,
            } => {
                if self.stored() < self.capacity {
                    self.instants.push(Instant {
                        at,
                        cpu: CpuId(0),
                        pid: Pid(0),
                        kind: InstantKind::JobStart {
                            job,
                            depth: queue_depth,
                            waited_ns: waited.as_nanos(),
                        },
                    });
                } else {
                    self.dropped += 1;
                }
            }
            SchedEvent::JobEnd { job, queue_depth } => {
                if self.stored() < self.capacity {
                    self.instants.push(Instant {
                        at,
                        cpu: CpuId(0),
                        pid: Pid(0),
                        kind: InstantKind::JobEnd {
                            job,
                            depth: queue_depth,
                        },
                    });
                } else {
                    self.dropped += 1;
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Escape a string as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// Sink 3: the metrics registry
// ---------------------------------------------------------------------

/// Fills an [`hpl_perf::SchedMetrics`] registry from the event stream:
/// decision counters, per-CPU switch counts, and the three log2
/// histograms (timeslice, off-CPU latency, migration inter-arrival).
#[derive(Debug, Default)]
pub struct MetricsSink {
    m: SchedMetrics,
    /// Per-CPU current occupant and its switch-in time (timeslice hist).
    switched_in: Vec<Option<(Pid, SimTime)>>,
    /// Wakeup time per still-waiting pid (off-CPU latency hist).
    woken_at: HashMap<Pid, SimTime>,
    /// Previous migration anywhere on the node (inter-arrival hist).
    last_migration: Option<SimTime>,
    /// Per-CPU gang context and its start time (per-gang busy-time
    /// attribution; fed by [`SchedEvent::GangRun`]).
    gang_on: Vec<Option<(u64, SimTime)>>,
}

impl MetricsSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry filled so far.
    pub fn metrics(&self) -> &SchedMetrics {
        &self.m
    }

    /// Consume the sink, keeping the registry.
    pub fn into_metrics(self) -> SchedMetrics {
        self.m
    }
}

impl SchedObserver for MetricsSink {
    fn observe(&mut self, at: SimTime, ev: &SchedEvent) {
        match *ev {
            SchedEvent::Pick { .. } => self.m.picks += 1,
            SchedEvent::Switch { cpu, to, .. } => {
                self.m.switches += 1;
                self.m.count_cpu_switch(cpu.index());
                if cpu.index() >= self.switched_in.len() {
                    self.switched_in.resize(cpu.index() + 1, None);
                }
                if let Some((_, since)) = self.switched_in[cpu.index()].take() {
                    self.m.timeslice_ns.record(at.since(since).as_nanos());
                }
                if let Some(next) = to {
                    self.switched_in[cpu.index()] = Some((next, at));
                    if let Some(woke) = self.woken_at.remove(&next) {
                        self.m.offcpu_latency_ns.record(at.since(woke).as_nanos());
                    }
                }
            }
            SchedEvent::PreemptCheck { verdict, .. } => {
                self.m.preempt_checks += 1;
                if verdict.preempts() {
                    self.m.preempts_granted += 1;
                }
            }
            SchedEvent::Wakeup { pid, .. } => {
                self.m.wakeups += 1;
                self.woken_at.insert(pid, at);
            }
            SchedEvent::NoiseArrival { .. } => self.m.noise_arrivals += 1,
            SchedEvent::ForkPlaced { .. } => self.m.forks += 1,
            SchedEvent::Migrate { .. } => {
                self.m.migrations += 1;
                if let Some(prev) = self.last_migration {
                    self.m
                        .migration_interarrival_ns
                        .record(at.since(prev).as_nanos());
                }
                self.last_migration = Some(at);
            }
            SchedEvent::Balance { kind, .. } => match kind {
                BalanceKind::NewIdle => self.m.idle_balance_calls += 1,
                BalanceKind::Periodic { .. } => self.m.periodic_balance_calls += 1,
                BalanceKind::RtPush => self.m.rt_push_calls += 1,
            },
            SchedEvent::NetSend { .. } => self.m.net_sends += 1,
            SchedEvent::NetDeliver {
                latency, queued, ..
            } => {
                self.m.net_delivers += 1;
                self.m.net_latency_ns.record(latency.as_nanos());
                self.m.net_queue_ns.record(queued.as_nanos());
            }
            SchedEvent::Irq { .. } => self.m.irqs += 1,
            SchedEvent::Tick { outcome, .. } => {
                self.m.ticks += 1;
                if matches!(outcome, TickOutcome::Quiescent | TickOutcome::Skipped) {
                    self.m.ticks_skipped += 1;
                }
            }
            SchedEvent::JobSubmit { queue_depth, .. } => {
                self.m.job_submits += 1;
                self.m.batch_queue_depth.record(queue_depth as u64);
            }
            SchedEvent::JobStart {
                queue_depth,
                waited,
                ..
            } => {
                self.m.job_starts += 1;
                self.m.batch_queue_depth.record(queue_depth as u64);
                self.m.job_wait_ns.record(waited.as_nanos());
            }
            SchedEvent::JobEnd { .. } => self.m.job_ends += 1,
            SchedEvent::GangEpoch { .. } => self.m.gang_epochs += 1,
            SchedEvent::JobShare { .. } => self.m.job_shares += 1,
            SchedEvent::GangSlice { slice_ns, .. } => {
                self.m.gang_slices += 1;
                self.m.gang_slice_ns.record(slice_ns);
            }
            SchedEvent::GangRun { cpu, gang } => {
                if cpu.index() >= self.gang_on.len() {
                    self.gang_on.resize(cpu.index() + 1, None);
                }
                if let Some((g, since)) = self.gang_on[cpu.index()].take() {
                    self.m
                        .gang_busy
                        .entry(g)
                        .or_default()
                        .record(at.since(since).as_nanos());
                }
                if let Some(g) = gang {
                    self.gang_on[cpu.index()] = Some((g, at));
                }
            }
            SchedEvent::Lease { granted, .. } => {
                self.m.leases += 1;
                self.m.lease_grants += u64::from(granted);
            }
            SchedEvent::Deactivate { .. } | SchedEvent::SetSched { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// Chrome-trace JSON validation (no serde in the tree: hand-rolled)
// ---------------------------------------------------------------------

/// Counts extracted from a parsed Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// `"ph":"X"` complete events (occupancy slices).
    pub complete_events: usize,
    /// `"ph":"i"` instant events (migrations + wakeups).
    pub instant_events: usize,
}

/// Parse and validate a Chrome-trace JSON document, returning event
/// counts. Strict on JSON syntax (full recursive-descent parse) and on
/// shape: the top level must be an object whose `traceEvents` is an
/// array of objects each carrying a string `ph`, with `X` events also
/// required to carry numeric `ts` and `dur`.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceStats, String> {
    let value = JsonParser::parse(json)?;
    let Json::Object(top) = value else {
        return Err("top level is not an object".into());
    };
    let Some(Json::Array(events)) = top.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v)
    else {
        return Err("missing traceEvents array".into());
    };
    let mut stats = ChromeTraceStats {
        complete_events: 0,
        instant_events: 0,
    };
    for (i, ev) in events.iter().enumerate() {
        let Json::Object(fields) = ev else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        let field = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let Some(Json::String(ph)) = field("ph") else {
            return Err(format!("traceEvents[{i}] lacks a string ph"));
        };
        match ph.as_str() {
            "X" => {
                if !matches!(field("ts"), Some(Json::Number(_)))
                    || !matches!(field("dur"), Some(Json::Number(_)))
                {
                    return Err(format!("traceEvents[{i}]: X event lacks numeric ts/dur"));
                }
                stats.complete_events += 1;
            }
            "i" => stats.instant_events += 1,
            other => return Err(format!("traceEvents[{i}]: unexpected ph {other:?}")),
        }
    }
    Ok(stats)
}

/// Minimal JSON value (key order preserved; duplicate keys kept).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates are rejected (we never emit them).
                            out.push(char::from_u32(code).ok_or("surrogate in \\u escape")?);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#x} in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let s = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(&s[..s.iter().take(4).count().min(s.len())])
                        .or_else(|e| std::str::from_utf8(&s[..e.valid_up_to().max(1)]))
                        .map_err(|_| "invalid utf8")?
                        .chars()
                        .next()
                        .ok_or("invalid utf8")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn switch(cpu: u32, from: Option<u32>, to: Option<u32>) -> SchedEvent {
        SchedEvent::Switch {
            cpu: CpuId(cpu),
            from: from.map(Pid),
            to: to.map(Pid),
        }
    }

    #[test]
    fn ring_sink_keeps_trace_vocabulary() {
        let mut s = RingSink::new(10);
        s.observe(t(1), &switch(0, None, Some(1)));
        s.observe(
            t(2),
            &SchedEvent::Pick {
                cpu: CpuId(0),
                prev: None,
                picked: Some(Pid(1)),
                class: Some(ClassKind::Fair),
                via_idle_balance: false,
                prev_vruntime: None,
            },
        );
        s.observe(
            t(3),
            &SchedEvent::Wakeup {
                pid: Pid(2),
                cpu: CpuId(1),
            },
        );
        // Pick is not part of the ring vocabulary.
        assert_eq!(s.buffer().len(), 2);
    }

    #[test]
    fn chrome_sink_builds_slices_and_instants() {
        let mut s = ChromeTraceSink::new(100);
        s.observe(t(100), &switch(0, None, Some(1)));
        s.observe(t(300), &switch(0, Some(1), Some(2)));
        s.observe(
            t(350),
            &SchedEvent::Migrate {
                pid: Pid(3),
                from: CpuId(0),
                to: CpuId(1),
                reason: MigrateReason::Balance,
            },
        );
        s.observe(
            t(360),
            &SchedEvent::Wakeup {
                pid: Pid(3),
                cpu: CpuId(1),
            },
        );
        assert_eq!(s.switch_count(), 2);
        assert_eq!(s.slice_count(), 1); // pid 1's closed slice
        assert_eq!(s.instant_count(), 2);
        let json = s.to_json(t(500), |p| format!("task{}", p.0));
        let stats = validate_chrome_trace(&json).expect("valid json");
        // One closed slice + pid 2 still open, closed at end.
        assert_eq!(stats.complete_events, 2);
        assert_eq!(stats.instant_events, 2);
        assert!(json.contains("\"task1\""));
        assert!(json.contains("migrate task3"));
    }

    #[test]
    fn chrome_sink_respects_capacity() {
        let mut s = ChromeTraceSink::new(1);
        s.observe(t(1), &switch(0, None, Some(1)));
        s.observe(t(2), &switch(0, Some(1), Some(2)));
        s.observe(t(3), &switch(0, Some(2), None));
        assert_eq!(s.slice_count(), 1);
        assert!(s.dropped() > 0);
        // Counters keep counting past the storage bound.
        assert_eq!(s.switch_count(), 3);
    }

    #[test]
    fn metrics_sink_histograms() {
        let mut s = MetricsSink::new();
        s.observe(
            t(0),
            &SchedEvent::Wakeup {
                pid: Pid(1),
                cpu: CpuId(0),
            },
        );
        s.observe(t(1000), &switch(0, None, Some(1))); // off-cpu latency 1000
        s.observe(t(5000), &switch(0, Some(1), None)); // timeslice 4000
        for (at, pid) in [(10_000u64, 7u32), (14_000, 8)] {
            s.observe(
                t(at),
                &SchedEvent::Migrate {
                    pid: Pid(pid),
                    from: CpuId(0),
                    to: CpuId(1),
                    reason: MigrateReason::Balance,
                },
            );
        }
        let m = s.metrics();
        assert_eq!(m.switches, 2);
        assert_eq!(m.wakeups, 1);
        assert_eq!(m.migrations, 2);
        assert_eq!(m.offcpu_latency_ns.count(), 1);
        assert_eq!(m.offcpu_latency_ns.max(), Some(1000));
        assert_eq!(m.timeslice_ns.count(), 1);
        assert_eq!(m.timeslice_ns.max(), Some(4000));
        assert_eq!(m.migration_interarrival_ns.count(), 1);
        assert_eq!(m.migration_interarrival_ns.max(), Some(4000));
        assert_eq!(m.per_cpu_switches, vec![2]);
    }

    #[test]
    fn metrics_sink_integrates_per_gang_busy_time() {
        let run = |g: Option<u64>, cpu: u32| SchedEvent::GangRun {
            cpu: CpuId(cpu),
            gang: g,
        };
        let mut s = MetricsSink::new();
        // CPU0: gang 7 runs 1000..4000 then idles; gang 9 runs
        // 5000..5500. CPU1 concurrently: gang 7 runs 2000..2600 and
        // hands over to gang 9 directly (no idle gap), closed at 3600.
        s.observe(t(1_000), &run(Some(7), 0));
        s.observe(t(2_000), &run(Some(7), 1));
        s.observe(t(2_600), &run(Some(9), 1));
        s.observe(t(3_600), &run(None, 1));
        s.observe(t(4_000), &run(None, 0));
        s.observe(t(5_000), &run(Some(9), 0));
        s.observe(t(5_500), &run(None, 0));
        {
            let m = s.metrics();
            assert_eq!(m.gang_busy_ns(7), 3_000 + 600);
            assert_eq!(m.gang_busy_ns(9), 1_000 + 500);
            assert_eq!(m.gang_busy.get(&7).unwrap().count(), 2);
            // A gang never seen reads as zero, not a panic.
            assert_eq!(m.gang_busy_ns(42), 0);
        }
        // Slice and lease events ride the same stream into counters.
        s.observe(
            t(6_000),
            &SchedEvent::GangSlice {
                gang: 7,
                share_milli: 750,
                slice_ns: 750_000,
                gangs: 2,
            },
        );
        s.observe(
            t(6_000),
            &SchedEvent::Lease {
                gang: 9,
                share_milli: 250,
                granted: 3,
                jobs: 2,
            },
        );
        let m = s.metrics();
        assert_eq!(m.gang_slices, 1);
        assert_eq!(m.gang_slice_ns.max(), Some(750_000));
        assert_eq!(m.leases, 1);
        assert_eq!(m.lease_grants, 3);
        // Merging folds the per-gang ledgers, not just the counters.
        let mut merged = SchedMetrics::new();
        merged.merge(m);
        merged.merge(m);
        assert_eq!(merged.gang_busy_ns(7), 2 * 3_600);
        assert_eq!(merged.leases, 2);
    }

    #[test]
    fn metrics_sink_decision_counters() {
        let mut s = MetricsSink::new();
        s.observe(
            t(0),
            &SchedEvent::PreemptCheck {
                cpu: CpuId(0),
                curr: Some(Pid(1)),
                woken: Pid(2),
                verdict: PreemptVerdict::Granted,
            },
        );
        s.observe(
            t(0),
            &SchedEvent::PreemptCheck {
                cpu: CpuId(0),
                curr: Some(Pid(1)),
                woken: Pid(3),
                verdict: PreemptVerdict::Denied,
            },
        );
        s.observe(
            t(0),
            &SchedEvent::Balance {
                cpu: CpuId(0),
                kind: BalanceKind::NewIdle,
                migrations: 1,
            },
        );
        s.observe(
            t(0),
            &SchedEvent::Balance {
                cpu: CpuId(0),
                kind: BalanceKind::Periodic { level: 1 },
                migrations: 0,
            },
        );
        s.observe(
            t(0),
            &SchedEvent::Tick {
                cpu: CpuId(0),
                outcome: TickOutcome::Quiescent,
            },
        );
        s.observe(
            t(0),
            &SchedEvent::Tick {
                cpu: CpuId(0),
                outcome: TickOutcome::Accounted { resched: true },
            },
        );
        let m = s.metrics();
        assert_eq!(m.preempt_checks, 2);
        assert_eq!(m.preempts_granted, 1);
        assert_eq!(m.idle_balance_calls, 1);
        assert_eq!(m.periodic_balance_calls, 1);
        assert_eq!(m.ticks, 2);
        assert_eq!(m.ticks_skipped, 1);
    }

    #[test]
    fn json_parser_accepts_valid_rejects_invalid() {
        assert!(JsonParser::parse("{\"a\": [1, 2.5, -3e2, true, null, \"x\\n\"]}").is_ok());
        assert!(JsonParser::parse("").is_err());
        assert!(JsonParser::parse("{").is_err());
        assert!(JsonParser::parse("{\"a\":1,}").is_err());
        assert!(JsonParser::parse("[1 2]").is_err());
        assert!(JsonParser::parse("{\"a\":1} extra").is_err());
        assert!(JsonParser::parse("\"\\q\"").is_err());
    }

    #[test]
    fn validate_requires_trace_shape() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"Z\"}]}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\", \"ts\": 1}]}").is_err(),
            "X without dur must be rejected"
        );
        let ok = validate_chrome_trace(
            "{\"traceEvents\": [{\"ph\": \"X\", \"ts\": 1, \"dur\": 2}, {\"ph\": \"i\"}]}",
        )
        .unwrap();
        assert_eq!(ok.complete_events, 1);
        assert_eq!(ok.instant_events, 1);
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("nl\n"), "\"nl\\n\"");
        let esc = json_string("\u{1}");
        assert_eq!(esc, "\"\\u0001\"");
        // Round-trip through the parser.
        let parsed = JsonParser::parse(&json_string("a\"b\\c\nd\u{1}")).unwrap();
        assert_eq!(parsed, Json::String("a\"b\\c\nd\u{1}".into()));
    }
}
