//! Weighted proportional-share gang slicing — the pure math.
//!
//! PR 9's gang rotation gives every co-resident gang the same
//! whole-epoch slice: `active = sorted_gangs[(t / epoch) % count]`.
//! That realises a DFRS *placement* but not a DFRS *share* — a 750/250
//! milli-CPU split still rotates 500/500. This module generalises the
//! rotation to weighted slices while keeping its two defining
//! properties:
//!
//! 1. **Pure function of the shared virtual clock.** The schedule is
//!    derived from `(t, epoch, sorted gang set, share table)` alone —
//!    no per-node phase state — so lockstep co-simulated nodes that
//!    host the same gangs with the same shares switch the same gang in
//!    the same window without exchanging messages.
//! 2. **Exact integer budgets.** One rotation *period* spans
//!    `count × epoch` nanoseconds (so the mean slice stays one epoch).
//!    Gang `i` gets `floor(period · wᵢ / Σw)` ns; the remainder —
//!    provably `< count` ns — is handed out one nanosecond at a time,
//!    rotating the first recipient by the period index exactly like the
//!    DFRS remainder rotation in `hpl-batch`, so no gang is
//!    systematically favoured and every period conserves the budget
//!    *exactly*: slices always sum to `count × epoch`.
//!
//! With equal shares every slice is exactly `epoch` and the remainder
//! is zero, so slice boundaries land on epoch multiples and the active
//! index degenerates to `(t / epoch) % count` — the legacy rotation.
//! `node.rs` still short-circuits to the legacy code path when the
//! share table is empty, making "no shares configured" byte-identical
//! to PR 9 by construction rather than by arithmetic accident.
//!
//! `hpl-coord`'s user-space arbiter reuses these functions for its
//! lease schedule, which is what makes the kernel-weighted and
//! user-space-coordinated backends comparable slice-for-slice.

/// One gang's slice of a rotation period: `(gang id, slice length ns)`.
pub type GangSlice = (u64, u64);

/// Split one rotation period (`epoch_ns × gangs.len()` nanoseconds)
/// into per-gang slices proportional to the given shares.
///
/// `gangs` must be sorted by gang id (the iteration order of the
/// node's `BTreeMap`) and every share must be non-zero. `period_idx`
/// rotates the remainder distribution. The returned slices are in gang
/// order and sum to the period exactly.
pub fn weighted_slices(epoch_ns: u64, gangs: &[(u64, u32)], period_idx: u64) -> Vec<GangSlice> {
    let k = gangs.len() as u64;
    assert!(k > 0, "weighted_slices with no gangs");
    debug_assert!(gangs.windows(2).all(|w| w[0].0 < w[1].0), "gangs unsorted");
    let period = epoch_ns
        .checked_mul(k)
        .expect("rotation period overflows u64");
    let total: u64 = gangs.iter().map(|&(_, s)| u64::from(s.max(1))).sum();
    let mut out = Vec::with_capacity(gangs.len());
    let mut used = 0u64;
    for &(g, share) in gangs {
        let slice = ((period as u128 * u128::from(share.max(1))) / u128::from(total)) as u64;
        out.push((g, slice));
        used += slice;
    }
    // Remainder < k: flooring k terms loses < 1 each. Hand it out one
    // nanosecond per gang starting at a period-rotated index, the same
    // rule Dfrs::shares_for uses for its milli-CPU remainder.
    let rem = period - used;
    debug_assert!(rem < k);
    let start = (period_idx % k) as usize;
    for i in 0..rem as usize {
        out[(start + i) % gangs.len()].1 += 1;
    }
    out
}

/// The active gang at virtual time `now_ns` and the absolute time of
/// the next slice boundary, under weighted slicing.
///
/// Walks the current period's slice table; zero-length slices (a share
/// so small it floors to nothing this period) are skipped — their gang
/// waits for a period whose remainder rotation reaches it.
pub fn active_at(now_ns: u64, epoch_ns: u64, gangs: &[(u64, u32)]) -> (u64, u64) {
    let k = gangs.len() as u64;
    let period = epoch_ns * k;
    let period_idx = now_ns / period;
    let period_start = period_idx * period;
    let off = now_ns - period_start;
    let slices = weighted_slices(epoch_ns, gangs, period_idx);
    let mut cum = 0u64;
    for (g, slice) in slices {
        if off < cum + slice {
            return (g, period_start + cum + slice);
        }
        cum += slice;
    }
    unreachable!("offset {off} outside period {period}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shares_degenerate_to_legacy_rotation() {
        let gangs = [(10u64, 500u32), (20, 500), (30, 500)];
        let epoch = 1_000u64;
        for idx in 0..5 {
            let slices = weighted_slices(epoch, &gangs, idx);
            assert_eq!(slices, vec![(10, 1_000), (20, 1_000), (30, 1_000)]);
        }
        for t in [0u64, 999, 1_000, 2_500, 3_000, 5_999] {
            let (active, next) = active_at(t, epoch, &gangs);
            let legacy = gangs[((t / epoch) % 3) as usize].0;
            assert_eq!(active, legacy, "t={t}");
            assert_eq!(next, (t / epoch + 1) * epoch, "t={t}");
        }
    }

    #[test]
    fn slices_conserve_the_period_exactly() {
        let gangs = [(1u64, 750u32), (2, 250), (3, 333)];
        for epoch in [1_000u64, 12_345, 500_000] {
            for idx in 0..7 {
                let slices = weighted_slices(epoch, &gangs, idx);
                let sum: u64 = slices.iter().map(|&(_, s)| s).sum();
                assert_eq!(sum, epoch * 3, "epoch={epoch} idx={idx}");
            }
        }
    }

    #[test]
    fn slices_monotone_in_share() {
        let gangs = [(1u64, 750u32), (2, 250)];
        let slices = weighted_slices(500_000, &gangs, 0);
        assert!(slices[0].1 > slices[1].1);
        // 750/250 of a 1 ms period: exactly 3:1.
        assert_eq!(slices[0].1, 750_000);
        assert_eq!(slices[1].1, 250_000);
    }

    #[test]
    fn remainder_rotates_across_periods() {
        // 3 gangs sharing 1000/1000/1000 over an epoch of 1000 ns with
        // shares 1/1/2: period 3000, floor slices 750/750/1500, rem 0.
        // Pick shares that force a remainder instead: 1/1/1 over epoch
        // 334 → period 1002, slices 334 each, rem 0. Use 3/3/4.
        let gangs = [(1u64, 3u32), (2, 3), (3, 4)];
        let epoch = 101u64; // period 303, total 10 → floors 90/90/121, rem 2
        let mut firsts = Vec::new();
        for idx in 0..3 {
            let slices = weighted_slices(epoch, &gangs, idx);
            let sum: u64 = slices.iter().map(|&(_, s)| s).sum();
            assert_eq!(sum, 303);
            firsts.push(slices.iter().map(|&(_, s)| s).collect::<Vec<_>>());
        }
        // The +1 ns recipients shift with the period index.
        assert_ne!(firsts[0], firsts[1]);
    }

    #[test]
    fn active_walk_skips_zero_slices() {
        // Extreme skew: share 1 vs 10_000 over a tiny epoch floors the
        // small gang to zero in most periods.
        let gangs = [(1u64, 1u32), (2, 10_000)];
        let epoch = 1_000u64;
        // Period 2000: floor slices 0/1999, remainder 1 ns to gang 1.
        let (active, next) = active_at(500, epoch, &gangs);
        assert_eq!(active, 2);
        assert_eq!(next, 2 * epoch);
    }
}
