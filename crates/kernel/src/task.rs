//! Tasks and scheduling policies.
//!
//! A [`Task`] is the kernel's unit of scheduling — one process or kernel
//! thread. Its [`Policy`] selects the scheduling class: `SCHED_FIFO`/
//! `SCHED_RR` → RT class, `SCHED_HPC` → the paper's HPL class,
//! `SCHED_NORMAL`/`SCHED_BATCH` → CFS. The per-task scheduling-entity
//! fields (vruntime, weight, timeslice) live inline.

use crate::program::Program;
use crate::sync::{BarrierId, ChanId};
use hpl_sim::{SimDuration, SimTime};
use hpl_topology::{CpuId, CpuMask};
use std::fmt;

/// Process identifier. Dense, never reused within one simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl Pid {
    /// Index for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Scheduling policy, mapping a task to its scheduling class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// `SCHED_FIFO` with RT priority 1-99 (higher wins).
    Fifo(u8),
    /// `SCHED_RR` with RT priority 1-99.
    Rr(u8),
    /// `SCHED_HPC` — the HPL class the paper adds between RT and CFS.
    Hpc,
    /// `SCHED_NORMAL` (CFS) with a nice level in −20..=19.
    Normal {
        /// Nice value; lower = heavier CFS weight.
        nice: i8,
    },
    /// `SCHED_BATCH`: CFS without wakeup preemption credit.
    Batch {
        /// Nice value.
        nice: i8,
    },
}

impl Policy {
    /// RT priority if this is an RT policy.
    pub fn rt_prio(self) -> Option<u8> {
        match self {
            Policy::Fifo(p) | Policy::Rr(p) => Some(p),
            _ => None,
        }
    }

    /// Nice level for CFS policies (0 otherwise).
    pub fn nice(self) -> i8 {
        match self {
            Policy::Normal { nice } | Policy::Batch { nice } => nice,
            _ => 0,
        }
    }
}

/// Why a blocked task is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for a token on a channel.
    Chan(ChanId),
    /// Waiting at a barrier.
    Barrier(BarrierId),
    /// Timed sleep.
    Timer,
    /// `waitpid`-style wait for all children to exit.
    Children,
}

/// What a spinning task is spinning on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpinTarget {
    /// Busy-waiting for a channel token.
    Chan(ChanId),
    /// Busy-waiting at a barrier (with its party count, needed to
    /// re-register on conversion to a blocked wait).
    Barrier(BarrierId),
}

/// Task lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// On a runqueue, not currently on a CPU.
    Runnable,
    /// Currently executing on its CPU.
    Running,
    /// Blocked, off all runqueues.
    Blocked(BlockReason),
    /// Exited.
    Dead,
}

/// Linux's nice→weight table (`prio_to_weight`): nice 0 = 1024, each nice
/// step ≈ ±10 % CPU.
pub const NICE_0_WEIGHT: u64 = 1024;
const PRIO_TO_WEIGHT: [u64; 40] = [
    88761, 71755, 56483, 46273, 36291, // -20 .. -16
    29154, 23254, 18705, 14949, 11916, // -15 .. -11
    9548, 7620, 6100, 4904, 3906, // -10 .. -6
    3121, 2501, 1991, 1586, 1277, // -5 .. -1
    1024, 820, 655, 526, 423, // 0 .. 4
    335, 272, 215, 172, 137, // 5 .. 9
    110, 87, 70, 56, 45, // 10 .. 14
    36, 29, 23, 18, 15, // 15 .. 19
];

/// CFS load weight for a nice level.
pub fn weight_of_nice(nice: i8) -> u64 {
    let idx = (nice as i16 + 20).clamp(0, 39) as usize;
    PRIO_TO_WEIGHT[idx]
}

/// One task.
pub struct Task {
    /// Process id.
    pub pid: Pid,
    /// Human-readable name (`comm`).
    pub name: String,
    /// Scheduling policy.
    pub policy: Policy,
    /// Lifecycle state.
    pub state: TaskState,
    /// CPU the task is on (last ran on, or is queued on).
    pub cpu: CpuId,
    /// Affinity mask (`sched_setaffinity`).
    pub affinity: CpuMask,
    /// Parent task, if forked.
    pub parent: Option<Pid>,
    /// Number of live children (for `Children` waits).
    pub alive_children: u32,

    /// CFS virtual runtime in weighted nanoseconds.
    pub vruntime: u64,
    /// CFS load weight derived from nice.
    pub weight: u64,
    /// Remaining RR/HPC timeslice.
    pub time_slice: SimDuration,
    /// Productive time since last being picked (CFS slice check).
    pub ran_since_pick: SimDuration,

    /// Remaining full-speed work of the current compute segment (ns).
    pub segment_remaining: u64,
    /// Set while the current segment is a busy-wait rather than real
    /// work; on segment expiry the task blocks instead of advancing.
    pub spin: Option<SpinTarget>,
    /// The task's behaviour; `None` while the kernel is stepping it.
    pub program: Option<Box<dyn Program>>,

    /// Total productive CPU time consumed.
    pub total_runtime: SimDuration,
    /// Per-task migration count (perf's per-task `cpu-migrations`).
    pub nr_migrations: u64,
    /// Per-task context-switch-in count.
    pub nr_switches: u64,
    /// Time the task last became runnable (for wakeup bookkeeping).
    pub last_wakeup: SimTime,
    /// Time the task last came off a CPU (for the cache-hot check that
    /// gates load-balancer steals, as `task_hot()` does in fair.c).
    pub last_descheduled: SimTime,
    /// Simulated time of exit, once dead.
    pub exited_at: Option<SimTime>,
    /// Group tag used by harnesses to identify application tasks.
    pub tag: Option<u32>,
    /// Gang co-scheduling group. Inherited across fork; a gang-tagged
    /// HPC task is eligible to run only while its gang is the node's
    /// active gang (or no gang rotation is in force).
    pub gang: Option<u64>,
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("policy", &self.policy)
            .field("state", &self.state)
            .field("cpu", &self.cpu)
            .field("vruntime", &self.vruntime)
            .field("segment_remaining", &self.segment_remaining)
            .field("spin", &self.spin)
            .finish_non_exhaustive()
    }
}

impl Task {
    /// Create a task; used by the node's fork path.
    pub fn new(pid: Pid, name: impl Into<String>, policy: Policy, affinity: CpuMask) -> Self {
        Task {
            pid,
            name: name.into(),
            policy,
            state: TaskState::Runnable,
            cpu: CpuId(0),
            affinity,
            parent: None,
            alive_children: 0,
            vruntime: 0,
            weight: weight_of_nice(policy.nice()),
            time_slice: SimDuration::ZERO,
            ran_since_pick: SimDuration::ZERO,
            segment_remaining: 0,
            spin: None,
            program: None,
            total_runtime: SimDuration::ZERO,
            nr_migrations: 0,
            nr_switches: 0,
            last_wakeup: SimTime::ZERO,
            last_descheduled: SimTime::ZERO,
            exited_at: None,
            tag: None,
            gang: None,
        }
    }

    /// True iff the task can be placed on `cpu`.
    #[inline]
    pub fn can_run_on(&self, cpu: CpuId) -> bool {
        self.affinity.contains(cpu)
    }

    /// True iff runnable or running.
    #[inline]
    pub fn is_active(&self) -> bool {
        matches!(self.state, TaskState::Runnable | TaskState::Running)
    }

    /// Change policy (the `sched_setscheduler` core), refreshing weight.
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
        self.weight = weight_of_nice(policy.nice());
    }
}

/// Dense task table indexed by [`Pid`].
#[derive(Default)]
pub struct TaskTable {
    slots: Vec<Task>,
}

impl TaskTable {
    /// Empty table.
    pub fn new() -> Self {
        TaskTable { slots: Vec::new() }
    }

    /// Allocate the next pid and insert a task built by `f`.
    pub fn alloc(&mut self, f: impl FnOnce(Pid) -> Task) -> Pid {
        let pid = Pid(self.slots.len() as u32);
        let task = f(pid);
        debug_assert_eq!(task.pid, pid);
        self.slots.push(task);
        pid
    }

    /// Shared access.
    #[inline]
    pub fn get(&self, pid: Pid) -> &Task {
        &self.slots[pid.index()]
    }

    /// Mutable access.
    #[inline]
    pub fn get_mut(&mut self, pid: Pid) -> &mut Task {
        &mut self.slots[pid.index()]
    }

    /// Number of tasks ever created.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff no tasks exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterate over all tasks.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.slots.iter()
    }

    /// Iterate mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Task> {
        self.slots.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_table_spot_checks() {
        assert_eq!(weight_of_nice(0), 1024);
        assert_eq!(weight_of_nice(-20), 88761);
        assert_eq!(weight_of_nice(19), 15);
        assert_eq!(weight_of_nice(5), 335);
        // Out-of-range clamps.
        assert_eq!(weight_of_nice(-128), 88761);
        assert_eq!(weight_of_nice(127), 15);
    }

    #[test]
    fn nice_steps_are_about_25_percent() {
        // Linux's table is built so each nice step changes CPU share ~10%,
        // which makes adjacent weights differ by ~25%.
        for n in -20..19i8 {
            let ratio = weight_of_nice(n) as f64 / weight_of_nice(n + 1) as f64;
            assert!((1.18..1.32).contains(&ratio), "nice {n} ratio {ratio}");
        }
    }

    #[test]
    fn policy_accessors() {
        assert_eq!(Policy::Fifo(50).rt_prio(), Some(50));
        assert_eq!(Policy::Rr(99).rt_prio(), Some(99));
        assert_eq!(Policy::Hpc.rt_prio(), None);
        assert_eq!(Policy::Normal { nice: -5 }.nice(), -5);
        assert_eq!(Policy::Hpc.nice(), 0);
    }

    #[test]
    fn task_creation_defaults() {
        let t = Task::new(
            Pid(3),
            "rank0",
            Policy::Normal { nice: 0 },
            CpuMask::first_n(8),
        );
        assert_eq!(t.weight, NICE_0_WEIGHT);
        assert_eq!(t.state, TaskState::Runnable);
        assert!(t.can_run_on(CpuId(7)));
        assert!(!t.can_run_on(CpuId(8)));
        assert!(t.is_active());
    }

    #[test]
    fn set_policy_updates_weight() {
        let mut t = Task::new(Pid(0), "d", Policy::Normal { nice: 0 }, CpuMask::first_n(1));
        t.set_policy(Policy::Normal { nice: 10 });
        assert_eq!(t.weight, 110);
        t.set_policy(Policy::Hpc);
        assert_eq!(t.weight, NICE_0_WEIGHT);
        assert_eq!(t.policy, Policy::Hpc);
    }

    #[test]
    fn table_alloc_dense_pids() {
        let mut tt = TaskTable::new();
        let a = tt.alloc(|p| Task::new(p, "a", Policy::Hpc, CpuMask::first_n(1)));
        let b = tt.alloc(|p| Task::new(p, "b", Policy::Hpc, CpuMask::first_n(1)));
        assert_eq!(a, Pid(0));
        assert_eq!(b, Pid(1));
        assert_eq!(tt.len(), 2);
        assert_eq!(tt.get(b).name, "b");
        tt.get_mut(a).name.push('!');
        assert_eq!(tt.get(a).name, "a!");
    }

    #[test]
    fn blocked_is_not_active() {
        let mut t = Task::new(Pid(0), "x", Policy::Hpc, CpuMask::first_n(1));
        t.state = TaskState::Blocked(BlockReason::Timer);
        assert!(!t.is_active());
        t.state = TaskState::Dead;
        assert!(!t.is_active());
    }
}
