//! Per-CPU power and energy accounting — the paper's stated future work
//! ("We will extend HPL taking into account the power dimension").
//!
//! The model is the standard three-state CMOS abstraction the DVFS
//! literature (e.g. Rountree et al.'s Adagio, which the paper cites)
//! builds on:
//!
//! * **busy** — a hardware thread executing a task draws `busy_watts`
//!   (attributed per thread; SMT siblings each draw their share);
//! * **idle** — a halted thread draws `idle_watts` (clock-gated core);
//! * **tick/kernel overhead** — accounted as busy time (the handler
//!   executes instructions).
//!
//! Energy integrates lazily from the node's counters: `BusyNs` already
//! accumulates per-CPU busy time, so energy needs no extra event-loop
//! work — it is a pure function of the counters and the elapsed time.
//! This is exactly why the scheduler matters for power: a spinning MPI
//! rank is *busy* (the paper's HPL keeps waits short but hot), while a
//! blocked rank lets the core idle. The [`EnergyReport`] quantifies that
//! trade-off per scheduler.

use hpl_perf::{HwEvent, PerCpuCounters};
use hpl_sim::SimTime;
use hpl_topology::{CpuId, Topology};

/// Power-model parameters. Defaults approximate a POWER6 core pair: each
/// 4.2 GHz dual-thread core dissipates ~15-20 W busy within a ~100 W
/// dual-core chip envelope; per hardware thread that is ~8 W busy above
/// a ~2 W idle floor.
#[derive(Debug, Clone)]
pub struct PowerModel {
    /// Watts drawn by one hardware thread executing instructions.
    pub busy_watts: f64,
    /// Watts drawn by one idle (halted) hardware thread.
    pub idle_watts: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            busy_watts: 8.0,
            idle_watts: 2.0,
        }
    }
}

impl PowerModel {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.busy_watts < self.idle_watts {
            return Err("busy_watts below idle_watts".into());
        }
        if self.idle_watts < 0.0 {
            return Err("negative idle_watts".into());
        }
        Ok(())
    }
}

/// Energy accounting over a window, derived from counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Total energy over the window, in joules.
    pub total_joules: f64,
    /// Energy attributable to busy execution above idle floor.
    pub dynamic_joules: f64,
    /// Baseline energy the machine would burn fully idle.
    pub idle_floor_joules: f64,
    /// Mean machine power over the window, in watts.
    pub mean_watts: f64,
    /// Busy fraction across all hardware threads (0..=1).
    pub utilisation: f64,
}

/// Compute the energy of a measurement window from counter snapshots.
///
/// `busy_ns_delta` is the window's system-wide `BusyNs` delta;
/// `wall` is the window length. The caller typically obtains both from a
/// `PerfSession`.
pub fn energy_of_window(
    model: &PowerModel,
    topo: &Topology,
    busy_ns_delta: u64,
    wall: hpl_sim::SimDuration,
) -> EnergyReport {
    let threads = topo.total_cpus() as f64;
    let wall_s = wall.as_secs_f64();
    let busy_s = busy_ns_delta as f64 / 1e9;
    let capacity_s = (threads * wall_s).max(1e-12);
    let busy_s = busy_s.min(capacity_s);
    let _idle_s = capacity_s - busy_s;
    let dynamic = (model.busy_watts - model.idle_watts) * busy_s;
    let floor = model.idle_watts * capacity_s;
    let total = dynamic + floor;
    EnergyReport {
        total_joules: total,
        dynamic_joules: dynamic,
        idle_floor_joules: floor,
        mean_watts: total / wall_s.max(1e-12),
        utilisation: busy_s / capacity_s,
    }
}

/// Convenience: instantaneous busy time per CPU from the live counters
/// (useful for per-CPU power heat maps in traces).
pub fn busy_ns_per_cpu(counters: &PerCpuCounters, topo: &Topology) -> Vec<u64> {
    topo.all_cpus()
        .iter()
        .map(|c: CpuId| counters.cpu(c).hw(HwEvent::BusyNs))
        .collect()
}

/// Energy-delay product, the figure of merit that rewards both finishing
/// fast and idling cheaply. `exec` is the application execution time.
pub fn energy_delay_product(report: &EnergyReport, exec: hpl_sim::SimDuration) -> f64 {
    report.total_joules * exec.as_secs_f64()
}

/// A power-aware observation the paper's future work targets: given two
/// scheduler outcomes (energy + time), which dominates? Returns
/// `Ordering::Less` when `a` is strictly better on EDP.
pub fn compare_edp(
    a: (&EnergyReport, SimTime, SimTime),
    b: (&EnergyReport, SimTime, SimTime),
) -> std::cmp::Ordering {
    let edp = |(r, start, end): (&EnergyReport, SimTime, SimTime)| {
        energy_delay_product(r, end.since(start))
    };
    edp(a)
        .partial_cmp(&edp(b))
        .unwrap_or(std::cmp::Ordering::Equal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_sim::SimDuration;

    fn topo() -> Topology {
        Topology::power6_js22()
    }

    #[test]
    fn defaults_validate() {
        PowerModel::default().validate().unwrap();
        let bad = PowerModel {
            busy_watts: 1.0,
            idle_watts: 2.0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn fully_idle_machine_draws_floor() {
        let m = PowerModel::default();
        let r = energy_of_window(&m, &topo(), 0, SimDuration::from_secs(10));
        assert_eq!(r.dynamic_joules, 0.0);
        // 8 threads x 2 W x 10 s = 160 J.
        assert!((r.idle_floor_joules - 160.0).abs() < 1e-9);
        assert!((r.mean_watts - 16.0).abs() < 1e-9);
        assert_eq!(r.utilisation, 0.0);
    }

    #[test]
    fn fully_busy_machine_draws_peak() {
        let m = PowerModel::default();
        let wall = SimDuration::from_secs(10);
        let busy_ns = 8 * 10 * 1_000_000_000u64;
        let r = energy_of_window(&m, &topo(), busy_ns, wall);
        // 8 threads x 8 W x 10 s = 640 J.
        assert!((r.total_joules - 640.0).abs() < 1e-9);
        assert!((r.utilisation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn busy_time_clamped_to_capacity() {
        let m = PowerModel::default();
        let r = energy_of_window(&m, &topo(), u64::MAX, SimDuration::from_millis(1));
        assert!(r.utilisation <= 1.0);
        assert!(r.total_joules.is_finite());
    }

    #[test]
    fn half_busy_is_between() {
        let m = PowerModel::default();
        let wall = SimDuration::from_secs(1);
        let r_idle = energy_of_window(&m, &topo(), 0, wall);
        let r_half = energy_of_window(&m, &topo(), 4_000_000_000, wall);
        let r_full = energy_of_window(&m, &topo(), 8_000_000_000, wall);
        assert!(r_idle.total_joules < r_half.total_joules);
        assert!(r_half.total_joules < r_full.total_joules);
        assert!((r_half.utilisation - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edp_prefers_fast_and_lean() {
        let m = PowerModel::default();
        let wall = SimDuration::from_secs(10);
        let lean = energy_of_window(&m, &topo(), 10_000_000_000, wall);
        let hot = energy_of_window(&m, &topo(), 70_000_000_000, wall);
        let t0 = SimTime::ZERO;
        let t_fast = SimTime::from_nanos(8_000_000_000);
        let t_slow = SimTime::from_nanos(12_000_000_000);
        // Lean and fast strictly dominates hot and slow.
        assert_eq!(
            compare_edp((&lean, t0, t_fast), (&hot, t0, t_slow)),
            std::cmp::Ordering::Less
        );
    }
}
