//! Kernel tunables.
//!
//! Each field documents the Linux 2.6.34 mechanism or default it mirrors.
//! The defaults are calibrated for the paper's POWER6 js22 reproduction;
//! the ablation benches sweep several of them.

use hpl_sim::SimDuration;

/// How much load balancing the kernel performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceMode {
    /// Standard Linux: periodic balancing from the tick plus new-idle
    /// balancing whenever a CPU runs out of work.
    Full,
    /// The HPL policy: *no* dynamic balancing for any scheduling class —
    /// the paper disables even CFS balancing while an HPC application
    /// runs, because balancing CFS daemons "introduces some OS noise
    /// [...] although there are no CPU migrations".
    None,
}

/// All scheduler and cost-model tunables.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    // ---- timer tick --------------------------------------------------
    /// Timer tick period. Linux HZ=1000 → 1 ms, the common distro choice
    /// on the paper's era of POWER hardware.
    pub tick_period: SimDuration,
    /// CPU time consumed by each tick's handler (the "micro-noise" the
    /// paper explicitly leaves to NETTICK). A few microseconds per tick.
    pub tick_cost: SimDuration,
    /// NETTICK-style mitigation: when a CPU runs exactly one runnable
    /// HPC-class task, the tick handler cost is skipped (tickless
    /// operation). Off by default — the paper measures HPL *without* it.
    pub tickless_single_hpc: bool,
    /// Event-loop fast path: route timer ticks through the event queue's
    /// periodic slots (timer wheel) instead of re-scheduling them through
    /// the binary heap, and batch provably inert ticks (idle CPU, tickless
    /// lone-HPC CPU) arithmetically instead of dispatching them one by
    /// one. Simulation *results* are identical either way — the reference
    /// path exists so regression tests can prove it — but the fast path is
    /// what makes 1000-run sweeps tractable.
    pub fast_event_loop: bool,

    // ---- CFS ---------------------------------------------------------
    /// `sysctl_sched_latency` after the `1+log2(ncpus)` scaling Linux
    /// applies (8 CPUs → factor 4 → 24 ms).
    pub sched_latency: SimDuration,
    /// `sysctl_sched_min_granularity` (scaled: 3 ms).
    pub min_granularity: SimDuration,
    /// `sysctl_sched_wakeup_granularity` (scaled: 4 ms). A waking task
    /// preempts the current one if its vruntime lag exceeds this.
    pub wakeup_granularity: SimDuration,
    /// GENTLE_FAIR_SLEEPERS: a waking sleeper is placed at
    /// `min_vruntime − sched_latency/2`, giving daemons the boost that
    /// defeats `nice`-based protection of HPC tasks.
    pub sleeper_bonus: SimDuration,

    // ---- RT ----------------------------------------------------------
    /// SCHED_RR timeslice (Linux: 100 ms).
    pub rt_rr_timeslice: SimDuration,

    // ---- HPC class ---------------------------------------------------
    /// Round-robin timeslice of the HPL class. The paper uses a simple
    /// round-robin run queue; with one task per CPU it rarely matters.
    pub hpc_rr_timeslice: SimDuration,
    /// Gang co-scheduling epoch (DFRS-style). When set, co-resident
    /// gangs rotate at absolute virtual times `k * gang_epoch`: the
    /// active gang at time `t` is `sorted_gangs[(t / epoch) % count]`,
    /// so every node that shares the epoch length — and, under lockstep
    /// co-simulation, the same virtual clock — switches the same job's
    /// ranks in the same window without exchanging any messages.
    /// Epoch events are armed only while two or more gangs are enrolled;
    /// runs without gang overlap are byte-identical to `None`.
    pub gang_epoch: Option<SimDuration>,
    /// Initial milli-CPU share table for weighted gang slicing:
    /// `(gang id, share)` pairs copied into the node at build time
    /// (runtime changes go through `Node::gang_set_share`). While any
    /// share is set, a gang's slice of the rotation period is
    /// proportional to its share (unlisted gangs weigh 1000) with an
    /// exact integer budget split and deterministic remainder rotation
    /// — see the `gang` module. Empty (the default) keeps the legacy
    /// equal-epoch rotation code path byte for byte. Requires
    /// [`Self::gang_epoch`].
    pub gang_shares: Vec<(u64, u32)>,

    // ---- balancing ---------------------------------------------------
    /// Balancing mode (see [`BalanceMode`]).
    pub balance: BalanceMode,
    /// Direct CPU cost of one load-balancer invocation (domain scan).
    pub balance_cost: SimDuration,

    // ---- context switches and migrations ------------------------------
    /// Direct cost of a context switch (register/address-space switch,
    /// runqueue bookkeeping).
    pub ctx_switch_cost: SimDuration,
    /// Direct cost of executing one task migration (the migration-thread
    /// work the paper notes runs at high RT priority).
    pub migration_cost: SimDuration,
    /// Steal gate combining `sysctl_sched_migration_cost` (cache-hot
    /// tasks are not stolen) with load-average smoothing (a task queued
    /// only briefly is not a *sustained* imbalance): a task is stealable
    /// once it has been waiting this long.
    pub hot_task_threshold: SimDuration,

    // ---- execution-speed model ----------------------------------------
    /// Per-thread throughput factor when the SMT sibling is busy.
    /// POWER6 SMT2 gives roughly 1.2-1.3× core throughput with two
    /// threads, i.e. ~0.62 per thread.
    pub smt_busy_factor: f64,
    /// Execution-speed factor with a completely cold cache. Speed scales
    /// `cold + (1−cold)·warmth`.
    pub cache_cold_factor: f64,
    /// Time constant for a running task's working set to rewarm.
    pub cache_warm_tau: SimDuration,
    /// Time constant for a non-running task's footprint to be evicted
    /// while another task runs on the core.
    pub cache_evict_tau: SimDuration,
    /// Fraction of warmth retained when migrating between CPUs that share
    /// a cache level (e.g. SMT siblings, or cores under a shared L3).
    /// Migrations without any shared level retain nothing.
    pub shared_cache_retention: f64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            tick_period: SimDuration::from_millis(1),
            tick_cost: SimDuration::from_micros(3),
            tickless_single_hpc: false,
            fast_event_loop: true,

            sched_latency: SimDuration::from_millis(24),
            min_granularity: SimDuration::from_millis(3),
            wakeup_granularity: SimDuration::from_millis(4),
            sleeper_bonus: SimDuration::from_millis(12),

            rt_rr_timeslice: SimDuration::from_millis(100),
            hpc_rr_timeslice: SimDuration::from_millis(100),
            gang_epoch: None,
            gang_shares: Vec::new(),

            balance: BalanceMode::Full,
            balance_cost: SimDuration::from_micros(5),

            ctx_switch_cost: SimDuration::from_micros(4),
            migration_cost: SimDuration::from_micros(12),
            hot_task_threshold: SimDuration::from_millis(3),

            smt_busy_factor: 0.62,
            cache_cold_factor: 0.70,
            cache_warm_tau: SimDuration::from_millis(4),
            cache_evict_tau: SimDuration::from_millis(3),
            shared_cache_retention: 0.8,
        }
    }
}

impl KernelConfig {
    /// Configuration used for HPL runs: identical cost model, but dynamic
    /// load balancing disabled for every class (the paper's §V policy).
    pub fn hpl() -> Self {
        KernelConfig {
            balance: BalanceMode::None,
            ..KernelConfig::default()
        }
    }

    /// Per-thread steady-state throughput when both SMT siblings run
    /// distinct tasks continuously: the SMT pipeline factor times the
    /// cache factor at the warm/evict equilibrium
    /// `w* = (1/τ_warm) / (1/τ_warm + 1/τ_evict)`. Workload calibration
    /// divides the paper's clean execution times by this to get per-rank
    /// work.
    pub fn smt_steady_state_thread_factor(&self) -> f64 {
        let rw = 1.0 / self.cache_warm_tau.as_secs_f64();
        let re = 1.0 / self.cache_evict_tau.as_secs_f64();
        let w_eq = rw / (rw + re);
        self.smt_busy_factor * (self.cache_cold_factor + (1.0 - self.cache_cold_factor) * w_eq)
    }

    /// Validate invariants; called by the node builder.
    pub fn validate(&self) -> Result<(), String> {
        if self.tick_period.is_zero() {
            return Err("tick_period must be non-zero".into());
        }
        if !(0.0..=1.0).contains(&self.smt_busy_factor) || self.smt_busy_factor <= 0.0 {
            return Err(format!(
                "smt_busy_factor {} out of (0,1]",
                self.smt_busy_factor
            ));
        }
        if !(0.0..=1.0).contains(&self.cache_cold_factor) || self.cache_cold_factor <= 0.0 {
            return Err(format!(
                "cache_cold_factor {} out of (0,1]",
                self.cache_cold_factor
            ));
        }
        if !(0.0..=1.0).contains(&self.shared_cache_retention) {
            return Err("shared_cache_retention out of [0,1]".into());
        }
        if self.cache_warm_tau.is_zero() || self.cache_evict_tau.is_zero() {
            return Err("cache time constants must be non-zero".into());
        }
        if self.min_granularity > self.sched_latency {
            return Err("min_granularity exceeds sched_latency".into());
        }
        if self.gang_epoch.is_some_and(|e| e.is_zero()) {
            return Err("gang_epoch must be non-zero when set".into());
        }
        if !self.gang_shares.is_empty() {
            if self.gang_epoch.is_none() {
                return Err("gang_shares set without gang_epoch".into());
            }
            if self.gang_shares.iter().any(|&(_, s)| s == 0) {
                return Err("gang shares must be non-zero".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        KernelConfig::default().validate().unwrap();
        KernelConfig::hpl().validate().unwrap();
    }

    #[test]
    fn hpl_disables_balancing() {
        assert_eq!(KernelConfig::hpl().balance, BalanceMode::None);
        assert_eq!(KernelConfig::default().balance, BalanceMode::Full);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_catches_bad_values() {
        let mut c = KernelConfig::default();
        c.smt_busy_factor = 1.5;
        assert!(c.validate().is_err());

        let mut c = KernelConfig::default();
        c.tick_period = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = KernelConfig::default();
        c.min_granularity = SimDuration::from_millis(100);
        assert!(c.validate().is_err());

        let mut c = KernelConfig::default();
        c.cache_cold_factor = 0.0;
        assert!(c.validate().is_err());

        let mut c = KernelConfig::default();
        c.gang_epoch = Some(SimDuration::ZERO);
        assert!(c.validate().is_err());
        c.gang_epoch = Some(SimDuration::from_millis(5));
        assert!(c.validate().is_ok());

        let mut c = KernelConfig::default();
        c.gang_shares = vec![(1, 750), (2, 250)];
        assert!(c.validate().is_err(), "shares without an epoch");
        c.gang_epoch = Some(SimDuration::from_millis(5));
        assert!(c.validate().is_ok());
        c.gang_shares.push((3, 0));
        assert!(c.validate().is_err(), "zero share");
    }
}
