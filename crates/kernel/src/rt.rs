//! The Real-Time scheduling class (SCHED_FIFO / SCHED_RR).
//!
//! Models the parts of `rt.c` the paper's Fig. 4 experiment exercises:
//! priority arrays (higher `rt_priority` always wins), FIFO semantics
//! (run until block or preemption), RR timeslices (100 ms), and —
//! crucially — **overload push/pull balancing**. The paper observes that
//! "load balancing is a bigger problem for the Real-Time scheduler than
//! for the CFS scheduler": whenever a CPU's RT task blocks, the newly
//! idle CPU pulls a waiting RT task from any overloaded CPU, and when an
//! RT task wakes onto a busy CPU it is pushed to any CPU running lower
//! priority work. With one RT rank per CPU plus a launcher, every blip
//! triggers "any sort of task migration" — reproduced here.

use crate::class::{ClassKind, LoadSnapshot, MigrationPlan, SchedClass, SchedCtx};
use crate::task::{Pid, Policy, Task, TaskTable};
use hpl_sim::SimDuration;
use hpl_topology::CpuId;
use std::collections::VecDeque;

const RT_PRIOS: usize = 100;

/// Per-CPU RT runqueue: one FIFO per priority level.
#[derive(Debug)]
struct RtRq {
    queues: Vec<VecDeque<Pid>>,
    nr_queued: u32,
}

impl Default for RtRq {
    fn default() -> Self {
        RtRq {
            queues: (0..RT_PRIOS).map(|_| VecDeque::new()).collect(),
            nr_queued: 0,
        }
    }
}

impl RtRq {
    fn highest(&self) -> Option<u8> {
        (0..RT_PRIOS)
            .rev()
            .find(|&p| !self.queues[p].is_empty())
            .map(|p| p as u8)
    }
}

/// The RT scheduling class.
#[derive(Debug, Default)]
pub struct RtClass {
    rqs: Vec<RtRq>,
}

impl RtClass {
    /// New, uninitialised class.
    pub fn new() -> Self {
        RtClass::default()
    }

    fn rq(&self, cpu: CpuId) -> &RtRq {
        &self.rqs[cpu.index()]
    }

    fn rq_mut(&mut self, cpu: CpuId) -> &mut RtRq {
        &mut self.rqs[cpu.index()]
    }

    fn prio_of(task: &Task) -> u8 {
        task.policy.rt_prio().unwrap_or(0)
    }

    /// Can a task of priority `prio` run immediately on `cpu` given the
    /// snapshot? True when the CPU is idle, runs a lower class, or runs a
    /// lower-priority RT task.
    fn beats_current(prio: u8, cpu: CpuId, snap: &LoadSnapshot) -> bool {
        match snap.curr_kind[cpu.index()] {
            None => true,
            Some(ClassKind::RealTime) => snap.curr_rt_prio[cpu.index()] < prio,
            Some(_) => true,
        }
    }
}

impl SchedClass for RtClass {
    fn kind(&self) -> ClassKind {
        ClassKind::RealTime
    }

    fn init(&mut self, ncpus: usize) {
        self.rqs = (0..ncpus).map(|_| RtRq::default()).collect();
    }

    fn enqueue(&mut self, cpu: CpuId, task: &mut Task, ctx: &SchedCtx<'_>, _wakeup: bool) {
        if task.time_slice.is_zero() {
            task.time_slice = ctx.cfg.rt_rr_timeslice;
        }
        let prio = Self::prio_of(task) as usize;
        let rq = self.rq_mut(cpu);
        debug_assert!(!rq.queues[prio].contains(&task.pid));
        rq.queues[prio].push_back(task.pid);
        rq.nr_queued += 1;
    }

    fn dequeue(&mut self, cpu: CpuId, task: &mut Task, _ctx: &SchedCtx<'_>) {
        let prio = Self::prio_of(task) as usize;
        let rq = self.rq_mut(cpu);
        let before = rq.queues[prio].len();
        rq.queues[prio].retain(|&p| p != task.pid);
        debug_assert_eq!(rq.queues[prio].len() + 1, before, "{} not queued", task.pid);
        rq.nr_queued -= 1;
    }

    fn pick_next(&mut self, cpu: CpuId, _tasks: &TaskTable) -> Option<Pid> {
        let rq = self.rq_mut(cpu);
        let prio = rq.highest()? as usize;
        let pid = rq.queues[prio]
            .pop_front()
            .expect("highest() said non-empty");
        rq.nr_queued -= 1;
        Some(pid)
    }

    fn put_prev(&mut self, cpu: CpuId, task: &mut Task, ctx: &SchedCtx<'_>) {
        let prio = Self::prio_of(task) as usize;
        let expired = task.time_slice.is_zero() && matches!(task.policy, Policy::Rr(_));
        let rq = self.rq_mut(cpu);
        if expired {
            // RR slice expiry: back of the line, fresh slice.
            task.time_slice = ctx.cfg.rt_rr_timeslice;
            rq.queues[prio].push_back(task.pid);
        } else {
            // Preempted: stays at the head of its priority level.
            rq.queues[prio].push_front(task.pid);
        }
        rq.nr_queued += 1;
    }

    fn update_curr(&mut self, _cpu: CpuId, task: &mut Task, ran: SimDuration) {
        if matches!(task.policy, Policy::Rr(_)) {
            task.time_slice = task.time_slice.saturating_sub(ran);
        }
    }

    fn task_tick(&mut self, cpu: CpuId, task: &mut Task, ctx: &SchedCtx<'_>) -> bool {
        match task.policy {
            Policy::Rr(p) => {
                if task.time_slice.is_zero() {
                    let has_peer = !self.rq(cpu).queues[p as usize].is_empty();
                    if has_peer {
                        return true;
                    }
                    // No competitor at this level: just refresh the slice.
                    task.time_slice = ctx.cfg.rt_rr_timeslice;
                }
                false
            }
            _ => false,
        }
    }

    fn wakeup_preempt(&self, _cpu: CpuId, curr: &Task, woken: &Task, _ctx: &SchedCtx<'_>) -> bool {
        Self::prio_of(woken) > Self::prio_of(curr)
    }

    fn nr_queued(&self, cpu: CpuId) -> u32 {
        self.rq(cpu).nr_queued
    }

    fn queued_pids(&self, cpu: CpuId) -> Vec<Pid> {
        let rq = self.rq(cpu);
        (0..RT_PRIOS)
            .rev()
            .flat_map(|p| rq.queues[p].iter().copied())
            .collect()
    }

    fn select_cpu_fork(
        &mut self,
        task: &Task,
        parent_cpu: CpuId,
        _ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        _tasks: &TaskTable,
    ) -> CpuId {
        // find_lowest_rq: prefer an idle CPU, then one running a lower
        // class, then the lowest-priority RT CPU. Parent wins ties.
        let prio = Self::prio_of(task);
        let mut best: Option<(u8, CpuId)> = None; // (badness, cpu)
        for idx in 0..snap.nr_running.len() {
            let cpu = CpuId(idx as u32);
            if !task.can_run_on(cpu) {
                continue;
            }
            let badness = match snap.curr_kind[idx] {
                None => 0,
                Some(ClassKind::RealTime) => {
                    if snap.curr_rt_prio[idx] < prio {
                        2 + snap.curr_rt_prio[idx]
                    } else {
                        u8::MAX
                    }
                }
                Some(_) => 1,
            };
            let better = match best {
                None => true,
                Some((b, bc)) => {
                    badness < b || (badness == b && cpu == parent_cpu && bc != parent_cpu)
                }
            };
            if better {
                best = Some((badness, cpu));
            }
        }
        best.map_or(parent_cpu, |(_, c)| c)
    }

    fn select_cpu_wakeup(
        &mut self,
        task: &Task,
        _ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        _tasks: &TaskTable,
    ) -> CpuId {
        let prev = task.cpu;
        let prio = Self::prio_of(task);
        // Prev is fine when we'd run immediately there and nothing else
        // is already queued waiting for it.
        if task.can_run_on(prev)
            && Self::beats_current(prio, prev, snap)
            && snap.nr_running[prev.index()] == 0
        {
            return prev;
        }
        // Otherwise the least-loaded CPU we beat; counting queued tasks
        // prevents simultaneous wakeups from piling onto one idle CPU
        // (FIFO tasks never timeslice, so a pileup would serialise).
        let mut best: Option<(u32, CpuId)> = None;
        for idx in 0..snap.nr_running.len() {
            let cpu = CpuId(idx as u32);
            if !task.can_run_on(cpu) || !Self::beats_current(prio, cpu, snap) {
                continue;
            }
            let load = snap.nr_running[idx];
            let better = match best {
                None => true,
                Some((bl, bc)) => load < bl || (load == bl && cpu == prev && bc != prev),
            };
            if better {
                best = Some((load, cpu));
            }
        }
        best.map_or(prev, |(_, c)| c)
    }

    fn idle_balance(
        &mut self,
        cpu: CpuId,
        _ctx: &SchedCtx<'_>,
        _snap: &LoadSnapshot,
        tasks: &TaskTable,
        plans: &mut Vec<MigrationPlan>,
    ) {
        // pull_rt_task: a CPU dropping to non-RT work pulls the highest
        // queued RT task from any overloaded CPU. Walk each source's
        // priority levels directly (top-down) instead of materialising a
        // `queued_pids` Vec per CPU — this runs on every new-idle event.
        let mut best: Option<(u8, Pid, CpuId)> = None;
        for idx in 0..self.rqs.len() {
            let from = CpuId(idx as u32);
            if from == cpu {
                continue;
            }
            let rq = self.rq(from);
            let head = (0..RT_PRIOS)
                .rev()
                .flat_map(|p| rq.queues[p].iter().copied())
                .map(|pid| tasks.get(pid))
                .find(|t| t.can_run_on(cpu));
            if let Some(t) = head {
                let prio = Self::prio_of(t);
                if best.as_ref().is_none_or(|&(bp, _, _)| prio > bp) {
                    best = Some((prio, t.pid, from));
                }
            }
        }
        if let Some((_, pid, from)) = best {
            plans.push(MigrationPlan::pull(pid, from, cpu));
        }
    }

    fn push_overload(
        &mut self,
        cpu: CpuId,
        _ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tasks: &TaskTable,
        plans: &mut Vec<MigrationPlan>,
    ) {
        // push_rt_task: only an *overloaded* runqueue pushes (Linux sets
        // the overload flag at rt_nr_running > 1). A single task queued
        // on a CPU that is not running RT work will simply start there at
        // the next reschedule — pushing it would create pileups, not
        // balance.
        let busy_rt = snap.curr_kind[cpu.index()] == Some(ClassKind::RealTime);
        let queued = self.nr_queued(cpu);
        if queued == 0 || (queued == 1 && !busy_rt) {
            return;
        }
        let start = plans.len();
        // Without a running RT task, the head waiter will run here; only
        // the tasks behind it are pushable.
        let skip = usize::from(!busy_rt);
        for pid in self.queued_pids(cpu).into_iter().skip(skip) {
            let t = tasks.get(pid);
            let prio = Self::prio_of(t);
            let dest = (0..snap.nr_running.len())
                .map(|i| CpuId(i as u32))
                .filter(|&c| c != cpu && t.can_run_on(c))
                .find(|&c| {
                    let free_for_us = match snap.curr_kind[c.index()] {
                        // Idle CPU: only if nothing is queued there either.
                        None => snap.nr_running[c.index()] == 0,
                        _ => Self::beats_current(prio, c, snap),
                    };
                    free_for_us && !plans[start..].iter().any(|p| p.to == c)
                });
            if let Some(to) = dest {
                plans.push(MigrationPlan::pull(pid, cpu, to));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use hpl_sim::SimTime;
    use hpl_topology::{CpuMask, DomainHierarchy, Topology};

    struct Fixture {
        cfg: KernelConfig,
        topo: Topology,
        domains: DomainHierarchy,
    }

    impl Fixture {
        fn new() -> Self {
            let topo = Topology::power6_js22();
            let domains = DomainHierarchy::build(&topo);
            Fixture {
                cfg: KernelConfig::default(),
                topo,
                domains,
            }
        }
        fn ctx(&self) -> SchedCtx<'_> {
            SchedCtx {
                now: SimTime::ZERO,
                cfg: &self.cfg,
                topo: &self.topo,
                domains: &self.domains,
            }
        }
    }

    fn fifo(tt: &mut TaskTable, name: &str, prio: u8) -> Pid {
        tt.alloc(|p| Task::new(p, name, Policy::Fifo(prio), CpuMask::first_n(8)))
    }

    fn rr(tt: &mut TaskTable, name: &str, prio: u8) -> Pid {
        tt.alloc(|p| Task::new(p, name, Policy::Rr(prio), CpuMask::first_n(8)))
    }

    fn snapshot(n: usize) -> LoadSnapshot {
        LoadSnapshot::empty(n)
    }

    fn idle_plans(
        rt: &mut RtClass,
        cpu: CpuId,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tt: &TaskTable,
    ) -> Vec<MigrationPlan> {
        let mut plans = Vec::new();
        rt.idle_balance(cpu, ctx, snap, tt, &mut plans);
        plans
    }

    fn push_plans(
        rt: &mut RtClass,
        cpu: CpuId,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tt: &TaskTable,
    ) -> Vec<MigrationPlan> {
        let mut plans = Vec::new();
        rt.push_overload(cpu, ctx, snap, tt, &mut plans);
        plans
    }

    #[test]
    fn highest_priority_picked_first() {
        let fx = Fixture::new();
        let mut rt = RtClass::new();
        rt.init(8);
        let mut tt = TaskTable::new();
        let lo = fifo(&mut tt, "lo", 10);
        let hi = fifo(&mut tt, "hi", 90);
        let ctx = fx.ctx();
        rt.enqueue(CpuId(0), tt.get_mut(lo), &ctx, true);
        rt.enqueue(CpuId(0), tt.get_mut(hi), &ctx, true);
        assert_eq!(rt.pick_next(CpuId(0), &tt), Some(hi));
        assert_eq!(rt.pick_next(CpuId(0), &tt), Some(lo));
        assert_eq!(rt.pick_next(CpuId(0), &tt), None);
    }

    #[test]
    fn same_priority_is_fifo() {
        let fx = Fixture::new();
        let mut rt = RtClass::new();
        rt.init(8);
        let mut tt = TaskTable::new();
        let a = fifo(&mut tt, "a", 50);
        let b = fifo(&mut tt, "b", 50);
        let ctx = fx.ctx();
        rt.enqueue(CpuId(0), tt.get_mut(a), &ctx, true);
        rt.enqueue(CpuId(0), tt.get_mut(b), &ctx, true);
        assert_eq!(rt.pick_next(CpuId(0), &tt), Some(a));
    }

    #[test]
    fn preempted_task_returns_to_head() {
        let fx = Fixture::new();
        let mut rt = RtClass::new();
        rt.init(8);
        let mut tt = TaskTable::new();
        let a = fifo(&mut tt, "a", 50);
        let b = fifo(&mut tt, "b", 50);
        let ctx = fx.ctx();
        rt.enqueue(CpuId(0), tt.get_mut(a), &ctx, true);
        rt.enqueue(CpuId(0), tt.get_mut(b), &ctx, true);
        let picked = rt.pick_next(CpuId(0), &tt).unwrap();
        assert_eq!(picked, a);
        // a preempted by something higher-class: put_prev puts it at head.
        rt.put_prev(CpuId(0), tt.get_mut(a), &ctx);
        assert_eq!(rt.pick_next(CpuId(0), &tt), Some(a));
    }

    #[test]
    fn rr_slice_expiry_requeues_to_tail() {
        let fx = Fixture::new();
        let mut rt = RtClass::new();
        rt.init(8);
        let mut tt = TaskTable::new();
        let a = rr(&mut tt, "a", 50);
        let b = rr(&mut tt, "b", 50);
        let ctx = fx.ctx();
        rt.enqueue(CpuId(0), tt.get_mut(a), &ctx, true);
        rt.enqueue(CpuId(0), tt.get_mut(b), &ctx, true);
        assert_eq!(rt.pick_next(CpuId(0), &tt), Some(a));
        // Burn the whole slice.
        let slice = fx.cfg.rt_rr_timeslice;
        rt.update_curr(CpuId(0), tt.get_mut(a), slice);
        assert!(rt.task_tick(CpuId(0), tt.get_mut(a), &ctx), "slice expired");
        rt.put_prev(CpuId(0), tt.get_mut(a), &ctx);
        // Tail: b now runs first.
        assert_eq!(rt.pick_next(CpuId(0), &tt), Some(b));
        // Fresh slice granted on requeue.
        assert_eq!(tt.get(a).time_slice, fx.cfg.rt_rr_timeslice);
    }

    #[test]
    fn rr_alone_never_reschedules() {
        let fx = Fixture::new();
        let mut rt = RtClass::new();
        rt.init(8);
        let mut tt = TaskTable::new();
        let a = rr(&mut tt, "a", 50);
        let ctx = fx.ctx();
        tt.get_mut(a).time_slice = SimDuration::ZERO;
        assert!(!rt.task_tick(CpuId(0), tt.get_mut(a), &ctx));
        assert_eq!(tt.get(a).time_slice, fx.cfg.rt_rr_timeslice);
    }

    #[test]
    fn fifo_ignores_slices() {
        let fx = Fixture::new();
        let mut rt = RtClass::new();
        rt.init(8);
        let mut tt = TaskTable::new();
        let a = fifo(&mut tt, "a", 50);
        let b = fifo(&mut tt, "b", 50);
        let ctx = fx.ctx();
        rt.enqueue(CpuId(0), tt.get_mut(b), &ctx, true);
        rt.pick_next(CpuId(0), &tt);
        tt.get_mut(a).time_slice = SimDuration::ZERO;
        assert!(!rt.task_tick(CpuId(0), tt.get_mut(a), &ctx));
        let _ = b;
    }

    #[test]
    fn wakeup_preempt_by_priority_only() {
        let fx = Fixture::new();
        let rt = RtClass::new();
        let mut tt = TaskTable::new();
        let lo = fifo(&mut tt, "lo", 10);
        let hi = fifo(&mut tt, "hi", 90);
        let ctx = fx.ctx();
        assert!(rt.wakeup_preempt(CpuId(0), tt.get(lo), tt.get(hi), &ctx));
        assert!(!rt.wakeup_preempt(CpuId(0), tt.get(hi), tt.get(lo), &ctx));
        assert!(!rt.wakeup_preempt(CpuId(0), tt.get(lo), tt.get(lo), &ctx));
    }

    #[test]
    fn fork_placement_prefers_idle_then_lower_class() {
        let fx = Fixture::new();
        let mut rt = RtClass::new();
        rt.init(8);
        let mut tt = TaskTable::new();
        let t = fifo(&mut tt, "t", 50);
        let ctx = fx.ctx();
        let mut snap = snapshot(8);
        snap.curr_kind = vec![Some(ClassKind::RealTime); 8];
        snap.curr_rt_prio = vec![60; 8];
        // All CPUs run higher-prio RT except cpu5 (CFS) and cpu6 (idle).
        snap.curr_kind[5] = Some(ClassKind::Fair);
        snap.curr_kind[6] = None;
        assert_eq!(
            rt.select_cpu_fork(tt.get(t), CpuId(0), &ctx, &snap, &tt),
            CpuId(6)
        );
        snap.curr_kind[6] = Some(ClassKind::RealTime);
        snap.curr_rt_prio[6] = 70;
        assert_eq!(
            rt.select_cpu_fork(tt.get(t), CpuId(0), &ctx, &snap, &tt),
            CpuId(5)
        );
    }

    #[test]
    fn idle_pull_takes_highest_waiting() {
        let fx = Fixture::new();
        let mut rt = RtClass::new();
        rt.init(8);
        let mut tt = TaskTable::new();
        let lo = fifo(&mut tt, "lo", 10);
        let hi = fifo(&mut tt, "hi", 90);
        let ctx = fx.ctx();
        tt.get_mut(lo).cpu = CpuId(2);
        tt.get_mut(hi).cpu = CpuId(3);
        rt.enqueue(CpuId(2), tt.get_mut(lo), &ctx, true);
        rt.enqueue(CpuId(3), tt.get_mut(hi), &ctx, true);
        let snap = snapshot(8);
        let plans = idle_plans(&mut rt, CpuId(0), &ctx, &snap, &tt);
        assert_eq!(plans, vec![MigrationPlan::pull(hi, CpuId(3), CpuId(0))]);
    }

    #[test]
    fn push_moves_waiters_to_beatable_cpus() {
        let fx = Fixture::new();
        let mut rt = RtClass::new();
        rt.init(8);
        let mut tt = TaskTable::new();
        let w = fifo(&mut tt, "w", 50);
        let ctx = fx.ctx();
        tt.get_mut(w).cpu = CpuId(0);
        rt.enqueue(CpuId(0), tt.get_mut(w), &ctx, true);
        let mut snap = snapshot(8);
        // cpu0 runs a prio-60 RT task (so w waits); cpu1 runs prio-70;
        // cpu2 runs CFS → w beats cpu2.
        snap.curr_kind = vec![
            Some(ClassKind::RealTime),
            Some(ClassKind::RealTime),
            Some(ClassKind::Fair),
            Some(ClassKind::RealTime),
            Some(ClassKind::RealTime),
            Some(ClassKind::RealTime),
            Some(ClassKind::RealTime),
            Some(ClassKind::RealTime),
        ];
        snap.curr_rt_prio = vec![60, 70, 0, 70, 70, 70, 70, 70];
        let plans = push_plans(&mut rt, CpuId(0), &ctx, &snap, &tt);
        assert_eq!(plans, vec![MigrationPlan::pull(w, CpuId(0), CpuId(2))]);
    }

    #[test]
    fn no_push_when_nothing_beatable() {
        let fx = Fixture::new();
        let mut rt = RtClass::new();
        rt.init(8);
        let mut tt = TaskTable::new();
        let w = fifo(&mut tt, "w", 50);
        let ctx = fx.ctx();
        rt.enqueue(CpuId(0), tt.get_mut(w), &ctx, true);
        let mut snap = snapshot(8);
        snap.curr_kind = vec![Some(ClassKind::RealTime); 8];
        snap.curr_rt_prio = vec![99; 8];
        assert!(push_plans(&mut rt, CpuId(0), &ctx, &snap, &tt).is_empty());
    }

    #[test]
    fn queued_pids_priority_ordered() {
        let fx = Fixture::new();
        let mut rt = RtClass::new();
        rt.init(8);
        let mut tt = TaskTable::new();
        let lo = fifo(&mut tt, "lo", 10);
        let hi = fifo(&mut tt, "hi", 90);
        let ctx = fx.ctx();
        rt.enqueue(CpuId(0), tt.get_mut(lo), &ctx, true);
        rt.enqueue(CpuId(0), tt.get_mut(hi), &ctx, true);
        assert_eq!(rt.queued_pids(CpuId(0)), vec![hi, lo]);
        assert_eq!(rt.nr_queued(CpuId(0)), 2);
    }
}
