//! The Scheduling Class framework.
//!
//! Linux 2.6.23+ structures its scheduler as an ordered list of
//! *scheduling classes*; the Scheduler Core walks the list from highest
//! priority down and runs the first task any class offers. "The ordering
//! of the Scheduling Classes introduces an implicit level of
//! prioritization: no processes from a lower priority class will be
//! selected as long as there are available processes in a higher priority
//! class" — the property HPL exploits by registering between RT and CFS.
//!
//! [`SchedClass`] is that plug-in interface. The kernel crate provides the
//! RT, CFS and Idle implementations; the `hpl-core` crate provides the HPC
//! class. The node's Scheduler Core (`node.rs`) owns the ordered class
//! list and performs every state transition (blocking, waking, switching,
//! migrating) so that counters are bumped in exactly one place.

use crate::config::KernelConfig;
use crate::task::{Pid, Policy, Task, TaskTable};
use hpl_sim::{SimDuration, SimTime};
use hpl_topology::{CpuId, DomainHierarchy, Topology};

/// Which class a policy maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassKind {
    /// SCHED_FIFO / SCHED_RR.
    RealTime,
    /// The paper's HPC class.
    Hpc,
    /// CFS (SCHED_NORMAL / SCHED_BATCH).
    Fair,
    /// The idle class (always last, never empty conceptually).
    Idle,
}

/// Class kind a policy belongs to.
pub fn class_of_policy(policy: Policy) -> ClassKind {
    match policy {
        Policy::Fifo(_) | Policy::Rr(_) => ClassKind::RealTime,
        Policy::Hpc => ClassKind::Hpc,
        Policy::Normal { .. } | Policy::Batch { .. } => ClassKind::Fair,
    }
}

/// Read-only context handed to class hooks.
pub struct SchedCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Kernel tunables.
    pub cfg: &'a KernelConfig,
    /// Machine topology.
    pub topo: &'a Topology,
    /// Scheduling domains.
    pub domains: &'a DomainHierarchy,
}

/// A cross-CPU load view handed to placement/balance hooks.
///
/// The node maintains this *incrementally*: enqueue/dequeue/pick/put-prev
/// adjust the counts in O(1) rather than rebuilding O(cpus × classes)
/// vectors before every hook call (debug builds re-derive and compare).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadSnapshot {
    /// Per-CPU count of active tasks (running + queued), all classes.
    pub nr_running: Vec<u32>,
    /// Per-CPU class of the currently running task (`None` = idle).
    pub curr_kind: Vec<Option<ClassKind>>,
    /// Per-CPU RT priority of the current task (0 when not RT).
    pub curr_rt_prio: Vec<u8>,
}

impl LoadSnapshot {
    /// An all-idle snapshot for `ncpus` CPUs.
    pub fn empty(ncpus: usize) -> Self {
        LoadSnapshot {
            nr_running: vec![0; ncpus],
            curr_kind: vec![None; ncpus],
            curr_rt_prio: vec![0; ncpus],
        }
    }

    /// True iff `cpu` is running nothing.
    pub fn is_idle(&self, cpu: CpuId) -> bool {
        self.curr_kind[cpu.index()].is_none()
    }
}

/// A migration proposed by a balance hook; the node validates and applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Task to move.
    pub pid: Pid,
    /// Expected source CPU.
    pub from: CpuId,
    /// Destination CPU.
    pub to: CpuId,
    /// Active balance: the task may be *running*; the migration thread
    /// preempts it and carries it over (Linux's `active_load_balance`).
    /// Passive plans only move queued tasks.
    pub active: bool,
}

impl MigrationPlan {
    /// A passive pull of a queued task.
    pub fn pull(pid: Pid, from: CpuId, to: CpuId) -> Self {
        MigrationPlan {
            pid,
            from,
            to,
            active: false,
        }
    }

    /// An active balance of a possibly-running task.
    pub fn active(pid: Pid, from: CpuId, to: CpuId) -> Self {
        MigrationPlan {
            pid,
            from,
            to,
            active: true,
        }
    }
}

/// A scheduling class: per-CPU runqueues plus policy hooks.
///
/// Invariants the node relies on:
/// * a pid is in at most one class's queues, on at most one CPU;
/// * `pick_next` removes the returned pid from the queue (the node tracks
///   it as the CPU's current task);
/// * `put_prev` re-inserts a still-runnable previous task.
///
/// `Send` because whole [`crate::Node`]s move between host threads in
/// the cluster's parallel co-simulation; class state is plain data.
pub trait SchedClass: Send {
    /// Which kind of class this is.
    fn kind(&self) -> ClassKind;

    /// Allocate per-CPU state.
    fn init(&mut self, ncpus: usize);

    /// Add a runnable task to `cpu`'s queue. `wakeup` distinguishes a
    /// sleeper waking (CFS grants the sleeper bonus) from a requeue.
    fn enqueue(&mut self, cpu: CpuId, task: &mut Task, ctx: &SchedCtx<'_>, wakeup: bool);

    /// Remove a queued task (it blocked, died, migrated or changed class).
    fn dequeue(&mut self, cpu: CpuId, task: &mut Task, ctx: &SchedCtx<'_>);

    /// Choose the next task to run on `cpu`, removing it from the queue.
    fn pick_next(&mut self, cpu: CpuId, tasks: &TaskTable) -> Option<Pid>;

    /// The previous current task of this class leaves the CPU; re-insert
    /// it if still runnable.
    fn put_prev(&mut self, cpu: CpuId, task: &mut Task, ctx: &SchedCtx<'_>);

    /// Account `ran` of productive runtime to the running task.
    fn update_curr(&mut self, cpu: CpuId, task: &mut Task, ran: SimDuration);

    /// Per-tick hook for the running task; returns true if it should be
    /// preempted (timeslice/fairness expiry).
    fn task_tick(&mut self, cpu: CpuId, task: &mut Task, ctx: &SchedCtx<'_>) -> bool;

    /// True when [`task_tick`](Self::task_tick) is a provable no-op for
    /// `task` running *alone* on `cpu` (nothing queued in any class): the
    /// node may then batch such ticks arithmetically instead of
    /// dispatching them. A class may only return true if, with an empty
    /// runqueue on `cpu`, its tick hook never requests preemption and any
    /// state it touches (e.g. a timeslice refresh) is re-derived on the
    /// next enqueue/put_prev. Default: false (ticks always dispatched).
    fn tick_skippable(&self, cpu: CpuId, task: &Task) -> bool {
        let _ = (cpu, task);
        false
    }

    /// Should `woken` (same class) preempt `curr` right now?
    fn wakeup_preempt(&self, cpu: CpuId, curr: &Task, woken: &Task, ctx: &SchedCtx<'_>) -> bool;

    /// Number of tasks queued (excluding any running task).
    fn nr_queued(&self, cpu: CpuId) -> u32;

    /// Queued pids on `cpu` (for balance planning).
    fn queued_pids(&self, cpu: CpuId) -> Vec<Pid>;

    /// Placement of a newly forked task. `tasks` allows policies to
    /// consider blocked tasks' home CPUs (HPL does; CFS does not).
    fn select_cpu_fork(
        &mut self,
        task: &Task,
        parent_cpu: CpuId,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tasks: &TaskTable,
    ) -> CpuId;

    /// Placement of a waking task (default: stay where it last ran).
    fn select_cpu_wakeup(
        &mut self,
        task: &Task,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tasks: &TaskTable,
    ) -> CpuId {
        let _ = (ctx, snap, tasks);
        task.cpu
    }

    /// Periodic (tick-driven) balance at one domain level of `cpu`.
    /// Proposed migrations are appended to `plans` — an out-parameter so
    /// the node can reuse one buffer across every balance call instead of
    /// allocating a fresh `Vec` per hook on the tick hot path. Default:
    /// propose nothing.
    fn periodic_balance(
        &mut self,
        cpu: CpuId,
        level_idx: usize,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tasks: &TaskTable,
        plans: &mut Vec<MigrationPlan>,
    ) {
        let _ = (cpu, level_idx, ctx, snap, tasks, plans);
    }

    /// Balance attempt when `cpu` is about to go idle, appending to
    /// `plans`. Default: propose nothing.
    fn idle_balance(
        &mut self,
        cpu: CpuId,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tasks: &TaskTable,
        plans: &mut Vec<MigrationPlan>,
    ) {
        let _ = (cpu, ctx, snap, tasks, plans);
    }

    /// Push overloaded tasks away after an enqueue (RT push), appending
    /// to `plans`. Default: propose nothing.
    fn push_overload(
        &mut self,
        cpu: CpuId,
        ctx: &SchedCtx<'_>,
        snap: &LoadSnapshot,
        tasks: &TaskTable,
        plans: &mut Vec<MigrationPlan>,
    ) {
        let _ = (cpu, ctx, snap, tasks, plans);
    }

    /// The node's gang controller changed the active gang (`None` =
    /// rotation ended). A class that restricts eligibility by gang
    /// records the new value here; returns true if the change can
    /// affect which task this class would pick (the node then requests
    /// a reschedule on every CPU). Default: ignore gangs.
    fn gang_epoch(&mut self, active: Option<u64>) -> bool {
        let _ = active;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_to_class_mapping() {
        assert_eq!(class_of_policy(Policy::Fifo(1)), ClassKind::RealTime);
        assert_eq!(class_of_policy(Policy::Rr(99)), ClassKind::RealTime);
        assert_eq!(class_of_policy(Policy::Hpc), ClassKind::Hpc);
        assert_eq!(class_of_policy(Policy::Normal { nice: 0 }), ClassKind::Fair);
        assert_eq!(class_of_policy(Policy::Batch { nice: 5 }), ClassKind::Fair);
    }

    #[test]
    fn snapshot_idle_check() {
        let snap = LoadSnapshot {
            nr_running: vec![1, 0],
            curr_kind: vec![Some(ClassKind::Fair), None],
            curr_rt_prio: vec![0, 0],
        };
        assert!(!snap.is_idle(CpuId(0)));
        assert!(snap.is_idle(CpuId(1)));
    }
}
