//! Wait channels and barriers, with spin-then-block waiting.
//!
//! The futex-level substrate user-space synchronisation is built on.
//! A *channel* is a counting token queue: `notify` deposits tokens (waking
//! waiters first), `wait` consumes one or blocks. A *barrier* collects
//! `parties` arrivals and releases everyone at once.
//!
//! Waiters come in two flavours, because the distinction drives the
//! paper's context-switch accounting: a **blocked** waiter is off the
//! runqueue (its arrival and departure each cost a context switch), while
//! a **spinning** waiter busy-waits on its CPU — the MPI library
//! behaviour (MPICH spins before yielding) that explains why the NAS
//! benchmarks' baseline context-switch counts are low even for
//! synchronisation-heavy codes. The kernel (node.rs) performs the actual
//! blocking, spinning and waking; this module is pure bookkeeping.

use crate::task::Pid;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Identifier of a wait channel. Allocation is up to the runtime built on
/// top (the MPI crate derives ids from rank pairs and collective ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChanId(pub u64);

/// Identifier of a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BarrierId(pub u64);

impl fmt::Display for ChanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chan{}", self.0)
    }
}

impl fmt::Display for BarrierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "barrier{}", self.0)
    }
}

/// How a satisfied waiter had been waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waiting {
    /// Off the runqueue; must be woken.
    Blocked,
    /// Busy-waiting on its CPU; its spin must be cancelled.
    Spinning,
}

/// Result of a wait attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// A token was available; the caller proceeds immediately.
    Proceed,
    /// The caller must wait (blocked or spinning, per the call used).
    Wait,
}

#[derive(Debug, Default)]
struct Chan {
    tokens: u64,
    blocked: VecDeque<Pid>,
    spinners: VecDeque<Pid>,
}

#[derive(Debug, Default)]
struct Barrier {
    arrived: u32,
    blocked: Vec<Pid>,
    spinners: Vec<Pid>,
    generation: u64,
}

/// All channel and barrier state of one node.
#[derive(Debug, Default)]
pub struct SyncState {
    chans: HashMap<ChanId, Chan>,
    barriers: HashMap<BarrierId, Barrier>,
}

impl SyncState {
    /// Fresh, empty state.
    pub fn new() -> Self {
        SyncState::default()
    }

    /// Attempt to consume a token, registering `pid` as a **blocked**
    /// waiter on failure.
    pub fn wait(&mut self, chan: ChanId, pid: Pid) -> WaitOutcome {
        let c = self.chans.entry(chan).or_default();
        if c.tokens > 0 {
            c.tokens -= 1;
            WaitOutcome::Proceed
        } else {
            debug_assert!(!c.blocked.contains(&pid), "{pid} double-waits on {chan}");
            c.blocked.push_back(pid);
            WaitOutcome::Wait
        }
    }

    /// Attempt to consume a token, registering `pid` as a **spinning**
    /// waiter on failure.
    pub fn spin_wait(&mut self, chan: ChanId, pid: Pid) -> WaitOutcome {
        let c = self.chans.entry(chan).or_default();
        if c.tokens > 0 {
            c.tokens -= 1;
            WaitOutcome::Proceed
        } else {
            debug_assert!(!c.spinners.contains(&pid));
            c.spinners.push_back(pid);
            WaitOutcome::Wait
        }
    }

    /// A spinner's patience ran out: convert it to a blocked waiter.
    pub fn chan_spin_to_block(&mut self, chan: ChanId, pid: Pid) {
        let c = self.chans.entry(chan).or_default();
        let was_spinning = c.spinners.iter().any(|&p| p == pid);
        debug_assert!(was_spinning, "{pid} was not spinning on {chan}");
        c.spinners.retain(|&p| p != pid);
        c.blocked.push_back(pid);
    }

    /// Deposit `tokens` tokens. Each token satisfies one waiter —
    /// spinners first (they notice immediately), then blocked waiters
    /// (FIFO) — or banks if nobody waits. Returns the satisfied waiters
    /// and how each was waiting.
    pub fn notify(&mut self, chan: ChanId, tokens: u32) -> Vec<(Pid, Waiting)> {
        let c = self.chans.entry(chan).or_default();
        let mut out = Vec::new();
        for _ in 0..tokens {
            if let Some(p) = c.spinners.pop_front() {
                out.push((p, Waiting::Spinning));
            } else if let Some(p) = c.blocked.pop_front() {
                out.push((p, Waiting::Blocked));
            } else {
                c.tokens += 1;
            }
        }
        out
    }

    /// Arrive at a barrier of `parties` participants.
    ///
    /// Returns `None` if the caller must wait (it is registered as
    /// spinning or blocked per `spin`), or `Some(waiters)` — everyone to
    /// release — if this arrival completes the barrier; the caller itself
    /// proceeds. The barrier resets for the next generation.
    pub fn barrier_arrive(
        &mut self,
        barrier: BarrierId,
        parties: u32,
        pid: Pid,
        spin: bool,
    ) -> Option<Vec<(Pid, Waiting)>> {
        assert!(parties > 0, "barrier with zero parties");
        let b = self.barriers.entry(barrier).or_default();
        b.arrived += 1;
        debug_assert!(
            b.arrived <= parties,
            "barrier {barrier} overfilled: {} > {parties}",
            b.arrived
        );
        if b.arrived == parties {
            let mut out: Vec<(Pid, Waiting)> = b
                .spinners
                .drain(..)
                .map(|p| (p, Waiting::Spinning))
                .collect();
            out.extend(b.blocked.drain(..).map(|p| (p, Waiting::Blocked)));
            b.arrived = 0;
            b.generation += 1;
            Some(out)
        } else {
            if spin {
                debug_assert!(!b.spinners.contains(&pid));
                b.spinners.push(pid);
            } else {
                debug_assert!(!b.blocked.contains(&pid));
                b.blocked.push(pid);
            }
            None
        }
    }

    /// A barrier spinner's patience ran out: convert to blocked.
    pub fn barrier_spin_to_block(&mut self, barrier: BarrierId, pid: Pid) {
        let b = self.barriers.entry(barrier).or_default();
        let was_spinning = b.spinners.contains(&pid);
        debug_assert!(was_spinning, "{pid} was not spinning on {barrier}");
        b.spinners.retain(|&p| p != pid);
        b.blocked.push(pid);
    }

    /// Remove a pid from every wait list (task teardown safety net).
    pub fn forget(&mut self, pid: Pid) {
        for c in self.chans.values_mut() {
            c.blocked.retain(|&w| w != pid);
            c.spinners.retain(|&w| w != pid);
        }
        for b in self.barriers.values_mut() {
            let before = b.blocked.len() + b.spinners.len();
            b.blocked.retain(|&w| w != pid);
            b.spinners.retain(|&w| w != pid);
            // A dead participant can never release the barrier; keep the
            // arrival count consistent with the remaining waiters.
            if b.blocked.len() + b.spinners.len() != before {
                b.arrived = b.arrived.saturating_sub(1);
            }
        }
    }

    /// Tokens currently banked on a channel (diagnostics).
    pub fn tokens(&self, chan: ChanId) -> u64 {
        self.chans.get(&chan).map_or(0, |c| c.tokens)
    }

    /// Number of waiters (blocked + spinning) on a channel.
    pub fn chan_waiters(&self, chan: ChanId) -> usize {
        self.chans
            .get(&chan)
            .map_or(0, |c| c.blocked.len() + c.spinners.len())
    }

    /// Completed generations of a barrier (diagnostics / tests).
    pub fn barrier_generation(&self, barrier: BarrierId) -> u64 {
        self.barriers.get(&barrier).map_or(0, |b| b.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_blocks_then_notify_wakes_fifo() {
        let mut s = SyncState::new();
        let ch = ChanId(1);
        assert_eq!(s.wait(ch, Pid(1)), WaitOutcome::Wait);
        assert_eq!(s.wait(ch, Pid(2)), WaitOutcome::Wait);
        assert_eq!(s.chan_waiters(ch), 2);
        assert_eq!(s.notify(ch, 1), vec![(Pid(1), Waiting::Blocked)]);
        assert_eq!(s.notify(ch, 1), vec![(Pid(2), Waiting::Blocked)]);
        assert_eq!(s.chan_waiters(ch), 0);
    }

    #[test]
    fn tokens_bank_when_no_waiters() {
        let mut s = SyncState::new();
        let ch = ChanId(2);
        assert!(s.notify(ch, 3).is_empty());
        assert_eq!(s.tokens(ch), 3);
        assert_eq!(s.wait(ch, Pid(1)), WaitOutcome::Proceed);
        assert_eq!(s.tokens(ch), 2);
    }

    #[test]
    fn spinners_satisfied_before_blocked() {
        let mut s = SyncState::new();
        let ch = ChanId(3);
        s.wait(ch, Pid(1));
        s.spin_wait(ch, Pid(2));
        let got = s.notify(ch, 2);
        assert_eq!(
            got,
            vec![(Pid(2), Waiting::Spinning), (Pid(1), Waiting::Blocked)]
        );
    }

    #[test]
    fn spin_to_block_transitions() {
        let mut s = SyncState::new();
        let ch = ChanId(4);
        assert_eq!(s.spin_wait(ch, Pid(7)), WaitOutcome::Wait);
        s.chan_spin_to_block(ch, Pid(7));
        // Now satisfied as a blocked waiter.
        assert_eq!(s.notify(ch, 1), vec![(Pid(7), Waiting::Blocked)]);
    }

    #[test]
    fn spin_wait_consumes_available_token() {
        let mut s = SyncState::new();
        let ch = ChanId(5);
        s.notify(ch, 1);
        assert_eq!(s.spin_wait(ch, Pid(1)), WaitOutcome::Proceed);
        assert_eq!(s.tokens(ch), 0);
    }

    #[test]
    fn barrier_releases_all_and_resets() {
        let mut s = SyncState::new();
        let b = BarrierId(1);
        assert_eq!(s.barrier_arrive(b, 3, Pid(1), false), None);
        assert_eq!(s.barrier_arrive(b, 3, Pid(2), true), None);
        let woken = s.barrier_arrive(b, 3, Pid(3), false).expect("released");
        assert_eq!(
            woken,
            vec![(Pid(2), Waiting::Spinning), (Pid(1), Waiting::Blocked)]
        );
        assert_eq!(s.barrier_generation(b), 1);
        // Next generation works again.
        assert_eq!(s.barrier_arrive(b, 3, Pid(2), false), None);
        assert_eq!(s.barrier_arrive(b, 3, Pid(3), false), None);
        assert_eq!(s.barrier_arrive(b, 3, Pid(1), false).unwrap().len(), 2);
        assert_eq!(s.barrier_generation(b), 2);
    }

    #[test]
    fn barrier_spin_to_block() {
        let mut s = SyncState::new();
        let b = BarrierId(2);
        s.barrier_arrive(b, 2, Pid(1), true);
        s.barrier_spin_to_block(b, Pid(1));
        let woken = s.barrier_arrive(b, 2, Pid(2), false).unwrap();
        assert_eq!(woken, vec![(Pid(1), Waiting::Blocked)]);
    }

    #[test]
    fn single_party_barrier_never_waits() {
        let mut s = SyncState::new();
        let b = BarrierId(9);
        for _ in 0..5 {
            assert_eq!(s.barrier_arrive(b, 1, Pid(0), true), Some(vec![]));
        }
        assert_eq!(s.barrier_generation(b), 5);
    }

    #[test]
    fn forget_removes_waiters() {
        let mut s = SyncState::new();
        let ch = ChanId(6);
        let b = BarrierId(6);
        s.wait(ch, Pid(5));
        s.barrier_arrive(b, 3, Pid(5), true);
        s.forget(Pid(5));
        assert_eq!(s.chan_waiters(ch), 0);
        // Barrier arrival count rolled back: two remaining parties
        // complete it.
        assert_eq!(s.barrier_arrive(b, 2, Pid(1), false), None);
        assert!(s.barrier_arrive(b, 2, Pid(2), false).is_some());
    }

    #[test]
    #[should_panic]
    fn zero_party_barrier_panics() {
        let mut s = SyncState::new();
        s.barrier_arrive(BarrierId(0), 0, Pid(0), false);
    }
}
